"""Synchronization-free-region (SFR) tracking and semantic oracles.

An SFR is the code a thread executes between two synchronization
operations (Section 2.2).  CLEAN's headline guarantee is that SFRs appear
*isolated* (data a region touches never changes under it due to a
concurrent write) and *write-atomic* (either all or none of a region's
writes are visible to a concurrent reader).

:class:`SfrTracker` assigns every dynamic region an id and records which
region performed every shared access.  Two oracle monitors are built on
it:

* :class:`IsolationOracle` flags a read that observes a value written by
  a region that is still running concurrently — an SFR isolation
  violation (only possible in executions CLEAN would have stopped).
* :class:`WriteAtomicityOracle` flags a reader that has observed *some*
  but not *all* of the writes a concurrent region made to the locations
  it read — the "half-half" outcome of Figure 1b.

The oracles are intentionally independent of the detector: property
tests run racy programs with the oracles but *without* CLEAN to show the
violations exist, then with CLEAN to show every violating execution is
stopped first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.events import AccessEvent
from .scheduler import ExecutionMonitor

__all__ = [
    "IsolationOracle",
    "SfrTracker",
    "SemanticViolation",
    "WriteAtomicityOracle",
]

#: A dynamic region is identified by (tid, per-thread region ordinal).
RegionId = Tuple[int, int]


@dataclass(frozen=True)
class SemanticViolation:
    """One observed violation of SFR isolation or write-atomicity."""

    kind: str
    reader_tid: int
    address: int
    writer_region: RegionId
    detail: str = ""


class SfrTracker(ExecutionMonitor):
    """Assigns region ids: a thread's region index bumps at every sync op.

    Also keeps a logical clock (one tick per observed event) and each
    region's ``[start, end)`` lifetime interval, so oracles can ask
    whether two regions temporally overlapped.  Temporal overlap in the
    cooperative execution implies the regions cannot be ordered by
    happens-before (a region only synchronizes at its boundary), so it is
    a sound — though not complete — concurrency witness.
    """

    _OPEN_END = float("inf")

    def __init__(self) -> None:
        self._region_index: Dict[int, int] = {}
        self._open: Set[RegionId] = set()
        self._intervals: Dict[RegionId, List[float]] = {}
        self.now = 0
        self.regions_started = 0

    def tick(self) -> int:
        """Advance and return the logical clock."""
        self.now += 1
        return self.now

    def current_region(self, tid: int) -> RegionId:
        """The region ``tid`` is currently executing."""
        return (tid, self._region_index.get(tid, 0))

    def is_open(self, region: RegionId) -> bool:
        """Whether ``region`` is still executing (not yet past a sync op)."""
        return region in self._open

    def overlapped(self, a: RegionId, b: RegionId) -> bool:
        """Whether regions ``a`` and ``b``'s lifetimes intersected."""
        ia = self._intervals.get(a)
        ib = self._intervals.get(b)
        if ia is None or ib is None:
            return False
        return ia[0] < ib[1] and ib[0] < ia[1]

    def _open_region(self, region: RegionId) -> None:
        self._open.add(region)
        self._intervals[region] = [self.tick(), self._OPEN_END]
        self.regions_started += 1

    def _close_region(self, region: RegionId) -> None:
        self._open.discard(region)
        if region in self._intervals:
            self._intervals[region][1] = self.tick()

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self._region_index[tid] = 0
        self._open_region((tid, 0))

    def on_thread_exit(self, tid: int) -> None:
        self._close_region(self.current_region(tid))

    def on_sync_commit(self, tid: int, op: object) -> None:
        self._close_region(self.current_region(tid))
        self._region_index[tid] = self._region_index.get(tid, 0) + 1
        self._open_region(self.current_region(tid))


@dataclass
class _WriteStamp:
    region: RegionId
    value: int


class IsolationOracle(ExecutionMonitor):
    """Flags reads that observe writes of a still-running concurrent SFR."""

    def __init__(self, tracker: SfrTracker) -> None:
        self.tracker = tracker
        self.violations: List[SemanticViolation] = []
        self._last_writer: Dict[int, _WriteStamp] = {}

    def after_access(self, event: AccessEvent) -> None:
        if event.private:
            return
        tid = event.tid
        address = event.address
        size = event.size
        if event.is_write:
            value = event.value
            region = self.tracker.current_region(tid)
            for i in range(size):
                self._last_writer[address + i] = _WriteStamp(
                    region, (value >> (8 * i)) & 0xFF
                )
            return
        for i in range(size):
            stamp = self._last_writer.get(address + i)
            if stamp is None:
                continue
            writer_tid, _ = stamp.region
            if writer_tid == tid:
                continue
            if self.tracker.is_open(stamp.region):
                self.violations.append(
                    SemanticViolation(
                        kind="isolation",
                        reader_tid=tid,
                        address=address + i,
                        writer_region=stamp.region,
                        detail="read observed a write of a still-running SFR",
                    )
                )


class WriteAtomicityOracle(ExecutionMonitor):
    """Flags 'half-half' reads: a torn mix of two concurrent regions' writes.

    A violation is a multi-byte read whose footprint mixes bytes written
    by a foreign region ``R`` with bytes that ``R`` also wrote but that
    are now owned by a region whose lifetime *overlapped* ``R``'s — i.e.
    the reader observed part of ``R``'s writes and part of a concurrent
    overwrite (Figure 1b).  Requiring temporal overlap keeps properly
    synchronized partial updates (writer finished and later another
    region updated half) from being misreported.
    """

    def __init__(self, tracker: SfrTracker) -> None:
        self.tracker = tracker
        self.violations: List[SemanticViolation] = []
        self._writer_of: Dict[int, RegionId] = {}
        self._write_sets: Dict[RegionId, Set[int]] = {}

    def after_access(self, event: AccessEvent) -> None:
        if event.is_write:
            self._after_write(event)
        else:
            self._after_read(event)

    def _after_write(self, event: AccessEvent) -> None:
        if event.private:
            return
        tid = event.tid
        address = event.address
        self.tracker.tick()
        region = self.tracker.current_region(tid)
        members = self._write_sets.setdefault(region, set())
        for i in range(event.size):
            self._writer_of[address + i] = region
            members.add(address + i)

    def _after_read(self, event: AccessEvent) -> None:
        tid = event.tid
        address = event.address
        size = event.size
        if event.private or size < 2:
            return
        self.tracker.tick()
        addresses = set(range(address, address + size))
        foreign = {
            r
            for a in addresses
            if (r := self._writer_of.get(a)) is not None and r[0] != tid
        }
        for region in foreign:
            wrote = self._write_sets.get(region, set())
            covered = {a for a in addresses if self._writer_of.get(a) == region}
            missing = (wrote & addresses) - covered
            torn = {
                a
                for a in missing
                if (owner := self._writer_of.get(a)) is not None
                and self.tracker.overlapped(owner, region)
            }
            if torn:
                self.violations.append(
                    SemanticViolation(
                        kind="write-atomicity",
                        reader_tid=tid,
                        address=address,
                        writer_region=region,
                        detail=(
                            f"read mixes bytes {sorted(covered)} from region "
                            f"{region} with concurrently overwritten bytes "
                            f"{sorted(torn)}"
                        ),
                    )
                )
