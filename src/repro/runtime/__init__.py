"""Cooperative multithreaded runtime: the substrate CLEAN instruments.

Programs are generator threads yielding operations; the scheduler
interleaves them one operation at a time and reports every event to a
monitor stack (race detectors, Kendo gates, trace recorders, semantic
oracles).  See :mod:`repro.runtime.program` for the entry point.
"""

from .memory import SharedMemory
from .ops import (
    Acquire,
    AtomicRMW,
    BarrierWait,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Join,
    Op,
    Output,
    Read,
    Release,
    SemPost,
    SemWait,
    Spawn,
    Write,
)
from .explore import ExplorationStats, explore, explore_results
from .program import Program
from .recovery import (
    Quarantined,
    RecoveryError,
    RecoveryEvent,
    RecoveryPolicy,
    RecoveryReport,
)
from .replay import RecordingPolicy, ReplayDivergence, ReplayPolicy
from .regions import (
    IsolationOracle,
    SemanticViolation,
    SfrTracker,
    WriteAtomicityOracle,
)
from .serializability import ConflictEdge, RegionSerializabilityOracle
from .scheduler import (
    ExecutionMonitor,
    ExecutionResult,
    RandomPolicy,
    RoundRobinPolicy,
    Scheduler,
    SchedulingPolicy,
    ScriptedPolicy,
    SyncCommit,
    ThreadStatus,
)
from .sync import Barrier, Condition, Lock, Semaphore
from .trace import (
    READ,
    SYNC,
    WRITE,
    StreamingTrace,
    Trace,
    TraceEvent,
    TraceRecorder,
    open_trace,
    verify_trace,
    verify_trace_bytes,
)

__all__ = [
    "SharedMemory",
    "Op",
    "Read",
    "Write",
    "AtomicRMW",
    "Acquire",
    "Release",
    "BarrierWait",
    "CondWait",
    "CondSignal",
    "CondBroadcast",
    "SemWait",
    "SemPost",
    "Spawn",
    "Join",
    "Compute",
    "Output",
    "Program",
    "explore",
    "explore_results",
    "ExplorationStats",
    "ExecutionMonitor",
    "ExecutionResult",
    "Scheduler",
    "SchedulingPolicy",
    "RoundRobinPolicy",
    "RandomPolicy",
    "ScriptedPolicy",
    "RecordingPolicy",
    "ReplayPolicy",
    "ReplayDivergence",
    "Quarantined",
    "RecoveryError",
    "RecoveryEvent",
    "RecoveryPolicy",
    "RecoveryReport",
    "SyncCommit",
    "ThreadStatus",
    "Lock",
    "Barrier",
    "Condition",
    "Semaphore",
    "SfrTracker",
    "IsolationOracle",
    "WriteAtomicityOracle",
    "SemanticViolation",
    "RegionSerializabilityOracle",
    "ConflictEdge",
    "StreamingTrace",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "open_trace",
    "verify_trace",
    "verify_trace_bytes",
    "READ",
    "WRITE",
    "SYNC",
]
