"""Race-exception recovery: survive a race instead of dying on it.

CLEAN's guarantee (paper Section 3) is that SFRs are isolated and
write-atomic in *every* execution, racy or not, so the memory state at a
race exception is well-defined: it is exactly the state at the faulting
SFR's entry, plus the committed work of every other thread.  This module
turns that guarantee into a recovery mechanism.

The scheduler, when built with a :class:`RecoveryPolicy`, *buffers* each
SFR's writes per thread and publishes them only at the SFR's closing
synchronization operation.  That makes the paper's write-atomicity
literal — no other thread can observe a store from an open SFR — and it
makes discarding a faulting SFR exact: drop the buffer and the shared
state is as if the SFR never started.

On a WAW/RAW exception the :class:`RecoveryManager` then applies the
policy:

* ``abort`` — the classic CLEAN behaviour: buffering is on (so the final
  state is still clean), but the exception terminates the run.
* ``quarantine`` — discard the faulting SFR, force-release the faulting
  thread's locks (publishing its committed work, which is real), and
  retire the thread with a :class:`Quarantined` sentinel result so joins
  on it still succeed; the rest of the program runs to completion.
* ``rollback-retry`` — discard the faulting SFR, roll the thread back to
  its SFR entry by replaying its deterministic prefix, absorb the prior
  writer's epoch into the thread's vector clock (recovery *serializes*
  the two conflicting accesses, so the deterministic re-execution cannot
  re-fire the same race), optionally perturb the thread's Kendo counter,
  and retry; after ``max_retries`` distinct races the thread degrades to
  quarantine.

Thread functions are generators, which cannot rewind — rollback instead
*replays*: every value the scheduler ever sent into a generator is
logged, and a rollback recreates the generator from its original
function and feeds it the logged prefix up to the SFR entry, discarding
the re-yielded operations (no side effects re-execute; reads re-receive
their recorded values, spawns their recorded child tids).  This is sound
because thread functions are deterministic functions of their inbox
sequence — the property the determinism tests already rely on.

The whole story is summarized per run in a :class:`RecoveryReport`,
rendered by :mod:`repro.diagnostics` and counted under the
``clean.recovery.*`` telemetry family.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from ..core.exceptions import CleanError, DeadlockError, RaceException
from .scheduler import ThreadStatus

__all__ = [
    "Quarantined",
    "RecoveryError",
    "RecoveryEvent",
    "RecoveryManager",
    "RecoveryPolicy",
    "RecoveryReport",
]

#: Shared immutable empty overlay for threads with no buffered writes.
_EMPTY_OVERLAY: Mapping[int, int] = {}


class RecoveryError(CleanError):
    """Recovery itself failed (e.g. a thread replayed nondeterministically)."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How the scheduler responds to a race exception.

    ``mode`` is one of ``"abort"``, ``"quarantine"`` or
    ``"rollback-retry"``.  ``max_retries`` bounds rollbacks per thread
    before it degrades to quarantine; ``perturb`` is the deterministic
    Kendo-counter penalty added on each retry (a pure function of the
    retry ordinal, so recovered runs stay deterministic).
    """

    mode: str = "rollback-retry"
    max_retries: int = 4
    perturb: int = 1

    MODES = ("abort", "quarantine", "rollback-retry")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise ValueError(
                f"unknown recovery mode {self.mode!r}; expected one of {self.MODES}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.perturb < 0:
            raise ValueError("perturb must be >= 0")

    @classmethod
    def coerce(cls, value: Any) -> Optional["RecoveryPolicy"]:
        """``None`` | mode string | policy instance -> policy or None."""
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(mode=value)
        raise TypeError(f"cannot interpret {value!r} as a recovery policy")


@dataclass(frozen=True)
class Quarantined:
    """Sentinel thread result: the thread was parked by recovery.

    Joining a quarantined thread succeeds and receives this object, so
    parents never deadlock on a retired child.
    """

    tid: int
    kind: str
    address: int

    def __repr__(self) -> str:
        return f"Quarantined(tid={self.tid}, {self.kind}@{self.address:#x})"


@dataclass(frozen=True)
class RecoveryEvent:
    """One race exception and what recovery did about it."""

    step: int
    tid: int
    kind: str
    address: int
    region: int
    action: str  # "retried" | "quarantined" | "aborted"
    retry: int  # retry ordinal for this thread (0 on first race)


@dataclass
class RecoveryReport:
    """Structured summary of every recovery action in one execution."""

    policy: str
    events: List[RecoveryEvent] = field(default_factory=list)
    rollbacks: int = 0
    quarantined: List[int] = field(default_factory=list)
    deadlocked: bool = False

    @property
    def races(self) -> int:
        """Total race exceptions recovery saw (including aborts)."""
        return len(self.events)

    @property
    def clean(self) -> bool:
        """Whether the run needed no recovery action at all."""
        return not self.events and not self.deadlocked

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready summary (the artifact the chaos CLI uploads)."""
        return {
            "policy": self.policy,
            "races": self.races,
            "rollbacks": self.rollbacks,
            "quarantined": list(self.quarantined),
            "deadlocked": self.deadlocked,
            "events": [
                {
                    "step": e.step,
                    "tid": e.tid,
                    "kind": e.kind,
                    "address": e.address,
                    "region": e.region,
                    "action": e.action,
                    "retry": e.retry,
                }
                for e in self.events
            ],
        }


@dataclass
class _SfrSnapshot:
    """Replay point: the faulting thread's state at its SFR entry."""

    log_len: int
    inbox: Any
    counter: int
    region: int
    output_len: int
    alloc_len: int


class RecoveryManager:
    """Owns the per-thread SFR write buffers and the recovery actions.

    Created by the scheduler; everything here runs inside a scheduler
    step, so no concurrency concerns apply.
    """

    def __init__(self, scheduler: Any, policy: RecoveryPolicy) -> None:
        self.scheduler = scheduler
        self.policy = policy
        self.report = RecoveryReport(policy=policy.mode)
        #: tid -> {address: byte} writes of the thread's open SFR.
        self.buffers: Dict[int, Dict[int, int]] = {}
        #: tid -> every value ever sent into the thread's generator.
        self.inbox_logs: Dict[int, List[Any]] = {}
        #: tid -> replay point of the thread's open SFR.
        self.entries: Dict[int, _SfrSnapshot] = {}
        self._last_region: Dict[int, int] = {}
        self.retries: Dict[int, int] = {}
        self.held_locks: Dict[int, Set[Any]] = {}
        self._replaying = policy.mode == "rollback-retry"
        #: tid -> base addresses its ctx.alloc calls returned, in order.
        self.alloc_logs: Dict[int, List[int]] = {}
        self.current_tid: Optional[int] = None
        self._replay_allocs: Optional[List[int]] = None

    # -- write buffering (the hot-path side) --------------------------------

    def overlay(self, tid: int) -> Mapping[int, int]:
        """The read overlay for ``tid`` (its own open-SFR writes)."""
        return self.buffers.get(tid) or _EMPTY_OVERLAY

    def buffer_store(self, tid: int, address: int, size: int, value: int) -> None:
        """Buffer a ``size``-byte store instead of publishing it."""
        if value < 0:
            value &= (1 << (8 * size)) - 1
        memory = self.scheduler.memory
        memory.stores += 1  # per-operation accounting parity with store_int
        buf = self.buffers.get(tid)
        if buf is None:
            buf = self.buffers[tid] = {}
        for i in range(size):
            buf[address + i] = (value >> (8 * i)) & 0xFF

    def commit(self, tid: int) -> None:
        """Publish ``tid``'s buffered SFR writes (its SFR is closing)."""
        buf = self.buffers.get(tid)
        if buf:
            self.scheduler.memory.apply_patch(buf)
            buf.clear()

    def note_resume(self, record: Any) -> None:
        """Called before each generator resume: log the inbox value and,
        at the first resume of a new SFR, snapshot the replay point."""
        if not self._replaying:
            return
        tid = record.tid
        self.current_tid = tid
        log = self.inbox_logs.get(tid)
        if log is None:
            log = self.inbox_logs[tid] = []
        if self._last_region.get(tid) != record.region:
            self._last_region[tid] = record.region
            self.entries[tid] = _SfrSnapshot(
                log_len=len(log),
                inbox=record.inbox,
                counter=record.det_counter,
                region=record.region,
                output_len=len(record.output),
                alloc_len=len(self.alloc_logs.get(tid, ())),
            )
        log.append(record.inbox)

    def finish(self, tid: int) -> None:
        """Thread exit: publish its tail SFR and drop its replay state."""
        self.commit(tid)
        self.buffers.pop(tid, None)
        self.inbox_logs.pop(tid, None)
        self.entries.pop(tid, None)
        self._last_region.pop(tid, None)
        self.held_locks.pop(tid, None)
        self.alloc_logs.pop(tid, None)

    def alloc(self, memory: Any, size: int, align: int) -> int:
        """Allocation front-end keeping replay exact.

        During normal execution, allocate and log the base address under
        the running thread; during a rollback replay, hand back the
        logged addresses without touching the (global) bump allocator —
        the replayed prefix must observe exactly the addresses the
        original execution did.
        """
        if self._replay_allocs is not None:
            if not self._replay_allocs:
                raise RecoveryError(
                    "replay performed more allocations than the original "
                    "execution: thread function is nondeterministic"
                )
            return self._replay_allocs.pop(0)
        base = memory.alloc(size, align)
        if self._replaying and self.current_tid is not None:
            self.alloc_logs.setdefault(self.current_tid, []).append(base)
        return base

    # -- lock tracking (for quarantine force-release) ------------------------

    def note_acquire(self, tid: int, lock: Any) -> None:
        held = self.held_locks.get(tid)
        if held is None:
            held = self.held_locks[tid] = set()
        held.add(lock)

    def note_release(self, tid: int, lock: Any) -> None:
        held = self.held_locks.get(tid)
        if held is not None:
            held.discard(lock)

    # -- the recovery actions ------------------------------------------------

    def handle(self, exc: RaceException) -> bool:
        """React to a race exception; ``True`` means the run continues."""
        sched = self.scheduler
        tid = exc.accessing_tid
        record = sched._threads.get(tid)
        retry = self.retries.get(tid, 0)
        action = "aborted"
        recovered = False
        if record is not None and self.policy.mode != "abort":
            if (
                self.policy.mode == "rollback-retry"
                and retry < self.policy.max_retries
                and record.fn is not None
            ):
                self._rollback(record, exc)
                action = "retried"
            else:
                self._quarantine(record, exc)
                action = "quarantined"
            recovered = True
        self.report.events.append(
            RecoveryEvent(
                step=sched._steps,
                tid=tid,
                kind=exc.kind,
                address=exc.address,
                region=record.region if record is not None else -1,
                action=action,
                retry=retry,
            )
        )
        return recovered

    def absorb_deadlock(self, exc: DeadlockError) -> bool:
        """A post-quarantine deadlock ends the run gracefully.

        Quarantining a thread that later threads would have met at a
        barrier leaves them parked forever; that is the documented
        degradation, not a crash.  Deadlocks with no quarantine behind
        them are real program bugs and still raise.
        """
        if not self.quarantined_tids:
            return False
        self.report.deadlocked = True
        return True

    @property
    def quarantined_tids(self) -> Tuple[int, ...]:
        return tuple(self.report.quarantined)

    def _discard(self, record: Any) -> None:
        """Drop the open SFR's buffered writes and scrub detector state."""
        tid = record.tid
        buf = self.buffers.pop(tid, None)
        if buf:
            addresses = list(buf)
            for detector in self._detectors():
                detector.rollback_writes(tid, addresses)
        for hook in self.scheduler._c_rollback:
            hook(tid)

    def _detectors(self) -> List[Any]:
        out = []
        for monitor in self.scheduler.monitors:
            detector = getattr(monitor, "detector", None)
            if detector is not None and hasattr(detector, "rollback_writes"):
                out.append(detector)
        return out

    def _rollback(self, record: Any, exc: RaceException) -> None:
        """Roll ``record`` back to its SFR entry and order it after the
        prior writer (the serialization that makes the retry succeed)."""
        sched = self.scheduler
        tid = record.tid
        self._discard(record)
        for detector in self._detectors():
            if hasattr(detector, "absorb_epoch"):
                detector.absorb_epoch(tid, exc.prior_writer_tid, exc.prior_writer_clock)
        snap = self.entries.get(tid)
        log = self.inbox_logs.get(tid)
        if snap is None or log is None:
            raise RecoveryError(f"no replay point for thread {tid}")
        allocs = self.alloc_logs.get(tid, [])
        gen = record.fn(sched._ctx, *record.fn_args)
        self._replay_allocs = list(allocs[: snap.alloc_len])
        try:
            for value in log[: snap.log_len]:
                gen.send(value)
        except StopIteration:
            raise RecoveryError(
                f"thread {tid} finished during replay: its function is not "
                "a deterministic function of its inbox sequence"
            ) from None
        finally:
            self._replay_allocs = None
        del allocs[snap.alloc_len :]
        try:
            record.gen.close()
        except Exception:
            pass
        self.retries[tid] = retry = self.retries.get(tid, 0) + 1
        record.gen = gen
        record.inbox = snap.inbox
        record.pending = None
        record.status = ThreadStatus.RUNNABLE
        record.blocked_reason = ""
        record.det_counter = snap.counter + self.policy.perturb * retry
        record.region = snap.region
        del record.output[snap.output_len :]
        del log[snap.log_len :]
        self.report.rollbacks += 1

    def _quarantine(self, record: Any, exc: RaceException) -> None:
        """Retire the faulting thread; the rest of the program continues."""
        sched = self.scheduler
        tid = record.tid
        self._discard(record)
        # Committed work is real: publish happens-before through every
        # lock the thread still holds, then release so waiters proceed.
        held = self.held_locks.get(tid, set())
        for lock in sorted(held, key=lambda l: getattr(l, "name", "")):
            for hook in sched._c_release:
                hook(tid, lock)
            lock.holder = None
        held.clear()
        sentinel = Quarantined(tid=tid, kind=exc.kind, address=exc.address)
        sched._finish_thread(record, sentinel)
        self.report.quarantined.append(tid)

    # -- telemetry -----------------------------------------------------------

    def publish(self, registry: Any) -> None:
        """Accumulate ``clean.recovery.*`` counters into ``registry``."""
        report = self.report
        if report.races:
            registry.inc("clean.recovery.races", report.races)
        if report.rollbacks:
            registry.inc("clean.recovery.rollbacks", report.rollbacks)
        if report.quarantined:
            registry.inc("clean.recovery.quarantined", len(report.quarantined))
        if report.deadlocked:
            registry.inc("clean.recovery.deadlocks")

    def publish_ambient(self) -> None:
        from ..obs.context import current_registry

        registry = current_registry()
        if registry is not None:
            self.publish(registry)
