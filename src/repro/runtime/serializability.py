"""Region-serializability checking (paper Section 7 positioning).

The paper situates CLEAN among race-exception systems: some guarantee
*region serializability* (RS) — the execution is equivalent to one where
each synchronization-free region runs in isolation, one at a time — and
notes that **RS is a stronger property than SFR isolation plus
write-atomicity**.  This module makes that claim checkable.

:class:`RegionSerializabilityOracle` builds the classical conflict graph
over dynamic regions: whenever two accesses of different regions touch
the same byte and at least one writes, an edge runs from the region of
the earlier access to the region of the later one.  The execution is
region-serializable iff the graph is acyclic (conflict-serializability,
exactly as in database theory).

The demonstrations live in ``tests/test_serializability.py``:

* executions of race-free programs are always region-serializable (their
  conflicts follow happens-before, which is acyclic);
* there are WAR-only executions that CLEAN rightly allows to complete —
  with SFR isolation and write-atomicity fully intact — that are *not*
  region-serializable: the strict gap between the two guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from .regions import RegionId, SfrTracker
from .scheduler import ExecutionMonitor

__all__ = ["ConflictEdge", "RegionSerializabilityOracle"]


@dataclass(frozen=True)
class ConflictEdge:
    """One conflict-graph edge with its witnessing address."""

    earlier: RegionId
    later: RegionId
    address: int


@dataclass
class _LastAccess:
    readers: Dict[RegionId, None] = field(default_factory=dict)
    writer: Optional[RegionId] = None


class RegionSerializabilityOracle(ExecutionMonitor):
    """Conflict graph over SFRs; cycle <=> not region-serializable."""

    def __init__(self, tracker: SfrTracker) -> None:
        self.tracker = tracker
        self.edges: Set[Tuple[RegionId, RegionId]] = set()
        self.edge_witnesses: List[ConflictEdge] = []
        self._last: Dict[int, _LastAccess] = {}

    # -- building the graph ---------------------------------------------------

    def _note_conflicts(
        self, region: RegionId, address: int, size: int, is_write: bool
    ) -> None:
        for a in range(address, address + size):
            last = self._last.setdefault(a, _LastAccess())
            if is_write:
                for reader in last.readers:
                    self._add_edge(reader, region, a)
                if last.writer is not None:
                    self._add_edge(last.writer, region, a)
                last.writer = region
                last.readers.clear()
            else:
                if last.writer is not None:
                    self._add_edge(last.writer, region, a)
                last.readers[region] = None

    def _add_edge(self, earlier: RegionId, later: RegionId, address: int) -> None:
        if earlier == later:
            return
        if (earlier, later) not in self.edges:
            self.edges.add((earlier, later))
            self.edge_witnesses.append(ConflictEdge(earlier, later, address))

    def after_read(self, tid, address, size, value, private) -> None:
        if not private:
            self._note_conflicts(
                self.tracker.current_region(tid), address, size, False
            )

    def before_write(self, tid, address, size, value, private) -> None:
        if not private:
            self._note_conflicts(
                self.tracker.current_region(tid), address, size, True
            )

    # -- the verdict -------------------------------------------------------------

    def find_cycle(self) -> Optional[List[RegionId]]:
        """A conflict cycle if one exists (else None): iterative DFS."""
        graph: Dict[RegionId, List[RegionId]] = {}
        for earlier, later in self.edges:
            graph.setdefault(earlier, []).append(later)
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[RegionId, int] = {}
        parent: Dict[RegionId, Optional[RegionId]] = {}
        for root in graph:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[RegionId, int]] = [(root, 0)]
            color[root] = GREY
            parent[root] = None
            while stack:
                node, index = stack[-1]
                children = graph.get(node, [])
                if index < len(children):
                    stack[-1] = (node, index + 1)
                    child = children[index]
                    state = color.get(child, WHITE)
                    if state == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [child, node]
                        walk = parent.get(node)
                        while walk is not None and walk != child:
                            cycle.append(walk)
                            walk = parent.get(walk)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[child] = GREY
                        parent[child] = node
                        stack.append((child, 0))
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    @property
    def serializable(self) -> bool:
        """Whether the observed execution is region-serializable."""
        return self.find_cycle() is None

    def witnesses_for(self, cycle: List[RegionId]) -> List[ConflictEdge]:
        """The conflict edges along a cycle (for diagnostics)."""
        pairs = {
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        }
        return [e for e in self.edge_witnesses if (e.earlier, e.later) in pairs]
