"""Cooperative interleaving scheduler: the runtime's execution engine.

Threads are generators yielding :mod:`~repro.runtime.ops` operations; the
scheduler completes one operation per step, choosing which thread steps
next through a pluggable :class:`SchedulingPolicy`.  Every completed
operation is visible to a stack of :class:`ExecutionMonitor` objects —
this is the moral equivalent of compiler instrumentation in the paper:
the race detector, the Kendo gate, the trace recorder and the SFR oracle
are all monitors.

Monitor dispatch is *fused*: at construction the scheduler compiles, for
every hook, the chain of monitors that actually override it, so a hook
nobody overrides costs nothing per event (the pre-refactor dispatch
called every monitor's no-op base hook on every access).  Memory
operations additionally build one :class:`~repro.core.events.AccessEvent`
per operation — carrying tid, address, size, direction, privacy, the
thread's SFR ordinal and deterministic clock — and hand that single
object to every event-aware monitor via :meth:`ExecutionMonitor.before_access`
/ :meth:`ExecutionMonitor.after_access`; the positional per-field hooks
(``before_read`` and friends) remain supported through thin adapters.
``Scheduler(fused=False)`` restores the pre-refactor call-every-monitor
dispatch, kept as the reference implementation for the equivalence
property tests and the ``benchmarks/bench_hotpath.py`` baseline.

Blocking semantics (locks, barriers, condition variables, semaphores,
join) are implemented here: an operation that cannot complete *parks* its
thread, and the thread becomes schedulable again once the operation is
feasible.  Synchronization operations are additionally *gated*: a monitor
may veto them via :meth:`ExecutionMonitor.may_sync` until it is the
thread's deterministic turn (Kendo, Section 2.4/3.3).  When every thread
is stalled and at least one is merely gate-blocked, the scheduler runs
the Kendo *pump*: it advances the deterministic counter of the
minimum-turn thread whose operation is infeasible, exactly like Kendo's
spin-with-increment, until some thread can proceed.  Because pumping only
happens when nothing else can run and each bump is a pure function of the
counter state, the committed synchronization order is independent of the
scheduling policy — the property the determinism tests verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.events import AccessEvent
from ..core.exceptions import DeadlockError, RaceException
from .memory import SharedMemory
from .ops import (
    Acquire,
    AtomicRMW,
    BarrierWait,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Join,
    Op,
    Output,
    Read,
    Release,
    SemPost,
    SemWait,
    Spawn,
    Write,
)
from .sync import Barrier, Condition, Lock, Semaphore

__all__ = [
    "ExecutionMonitor",
    "ExecutionResult",
    "RandomPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SchedulingPolicy",
    "ScriptedPolicy",
    "SyncCommit",
    "ThreadStatus",
]


class ThreadStatus(Enum):
    """Lifecycle state of a runtime thread."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class _ThreadRecord:
    tid: int
    gen: Any
    status: ThreadStatus = ThreadStatus.RUNNABLE
    inbox: Any = None
    pending: Optional[Op] = None
    blocked_reason: str = ""
    det_counter: int = 0
    region: int = 0
    output: List[Any] = field(default_factory=list)
    result: Any = None
    parent: Optional[int] = None
    reacquire_after_cond: Optional[Tuple[Condition, Lock]] = None
    # The generator's origin, kept so recovery can recreate and replay it.
    fn: Optional[Callable[..., Any]] = None
    fn_args: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class SyncCommit:
    """One committed synchronization operation (the deterministic log)."""

    index: int
    tid: int
    kind: str
    target: str
    counter: int


class ExecutionMonitor:
    """Base monitor: every hook is a no-op.  Subclass what you need.

    Hooks that observe memory run in the order required by Section 4.3:
    ``before_write`` fires before the store, ``after_read`` fires right
    after the load.  Any hook may raise
    :class:`~repro.core.exceptions.RaceException` to stop the execution.

    Memory observation comes in two equivalent styles; override one:

    * the *event* hooks :meth:`before_access` / :meth:`after_access`,
      which receive the single :class:`~repro.core.events.AccessEvent`
      the scheduler builds per operation (preferred on hot paths — no
      per-monitor re-derivation of fields, and extra context like the
      SFR ordinal rides along);
    * the per-field hooks (:meth:`before_read`, :meth:`after_read`,
      :meth:`before_write`, :meth:`after_write`), adapted automatically.

    A monitor overriding both styles gets only the event hooks called
    (the event form is the source of truth).

    The scheduler only calls hooks a subclass actually overrides, so a
    new hook costs nothing until somebody uses it.
    """

    def attach(self, scheduler: "Scheduler") -> None:
        """Called once when the scheduler adopts this monitor."""

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        """A thread (root or spawned) began execution."""

    def on_thread_exit(self, tid: int) -> None:
        """A thread's generator finished."""

    def on_join(self, parent: int, child: int) -> None:
        """``parent`` completed a join on finished thread ``child``."""

    def before_access(self, event: AccessEvent) -> None:
        """About to perform ``event`` (race check point for writes).

        For reads ``event.value`` is still ``None``; for writes it is
        the value about to be stored.  Do not retain ``event``.
        """

    def after_access(self, event: AccessEvent) -> None:
        """``event`` completed (race check point for reads).

        ``event.value`` carries the loaded/stored value.  Do not retain
        ``event``.
        """

    def before_read(self, tid: int, address: int, size: int, private: bool) -> None:
        """About to load ``size`` bytes at ``address``."""

    def after_read(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """Loaded ``value`` from ``address`` (race check point for reads)."""

    def before_write(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """About to store ``value`` (race check point for writes)."""

    def after_write(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """Store completed."""

    def on_acquire(self, tid: int, lock: Lock) -> None:
        """``tid`` acquired ``lock`` (happens-after its last releaser)."""

    def on_release(self, tid: int, lock: Lock) -> None:
        """``tid`` released ``lock``."""

    def on_barrier_arrive(self, tid: int, barrier: Barrier, generation: int) -> None:
        """``tid`` arrived at ``barrier`` in episode ``generation``."""

    def on_barrier_depart(self, tid: int, barrier: Barrier, generation: int) -> None:
        """``tid`` left ``barrier`` after episode ``generation`` tripped."""

    def on_cond_signal(self, tid: int, cond: Condition) -> None:
        """``tid`` signalled (or broadcast) ``cond``."""

    def on_cond_wake(self, tid: int, cond: Condition) -> None:
        """``tid`` woke from a wait on ``cond`` (after reacquiring its lock)."""

    def on_sem_post(self, tid: int, sem: Semaphore) -> None:
        """``tid`` posted ``sem``."""

    def on_sem_wait(self, tid: int, sem: Semaphore) -> None:
        """``tid`` completed a wait on ``sem``."""

    def on_spawn(self, parent: int, child: int) -> None:
        """``parent`` spawned ``child`` (parent-happens-before-child)."""

    def on_compute(self, tid: int, amount: int) -> None:
        """``tid`` executed ``amount`` non-memory instructions."""

    def may_sync(self, tid: int, op: Op) -> bool:
        """Gate: may ``tid`` commit synchronization operation ``op`` now?"""
        return True

    def on_sync_commit(self, tid: int, op: Op) -> None:
        """A synchronization operation committed (rollover hook point)."""

    def on_access_block(self, tid: int, events: Sequence[AccessEvent]) -> None:
        """A run of ``tid``'s accesses, delivered as one in-order block.

        The batch lane: streaming replay and the offline analysis engine
        hand whole synchronization-free runs here instead of one event
        at a time.  Semantically equivalent to calling
        :meth:`before_access` / :meth:`after_access` for every event in
        order — the default does exactly that, so every monitor is
        batch-correct for free; batch-aware monitors override it.
        """
        before = self.before_access
        after = self.after_access
        for event in events:
            before(event)
            after(event)

    def on_rollback(self, tid: int) -> None:
        """Recovery discarded ``tid``'s open SFR (its buffered writes
        never became visible; any per-thread caches keyed on its open
        epoch must be invalidated)."""

    def on_finish(self, result: "ExecutionResult") -> None:
        """The whole execution finished (normally or with a race)."""


class SchedulingPolicy:
    """Chooses which schedulable thread performs the next step."""

    def pick(self, candidates: Sequence[int], step: int) -> int:
        """Return one tid from ``candidates`` (non-empty, sorted)."""
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through threads in tid order."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, candidates: Sequence[int], step: int) -> int:
        for tid in candidates:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = candidates[0]
        return candidates[0]


class RandomPolicy(SchedulingPolicy):
    """Uniformly random choice from a seeded generator.

    Different seeds explore different interleavings — the tool the
    property tests use to show CLEAN's guarantees hold on *every*
    schedule, not just a lucky one.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, candidates: Sequence[int], step: int) -> int:
        return candidates[self._rng.randrange(len(candidates))]


class ScriptedPolicy(SchedulingPolicy):
    """Follow an explicit tid script; fall back to the lowest candidate.

    Lets tests construct an exact interleaving (e.g. "the write lands
    between the read and its check") without fighting randomness.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self._pos = 0

    def pick(self, candidates: Sequence[int], step: int) -> int:
        while self._pos < len(self._script):
            wanted = self._script[self._pos]
            self._pos += 1
            if wanted in candidates:
                return wanted
        return candidates[0]


@dataclass
class ExecutionResult:
    """Everything observable about one finished execution."""

    memory: SharedMemory
    outputs: Dict[int, List[Any]]
    thread_results: Dict[int, Any]
    det_counters: Dict[int, int]
    sync_log: List[SyncCommit]
    steps: int
    shared_reads: int
    shared_writes: int
    race: Optional[RaceException] = None
    #: :class:`~repro.runtime.recovery.RecoveryReport` when the scheduler
    #: ran with a recovery policy, else ``None``.
    recovery: Optional[Any] = None

    @property
    def completed(self) -> bool:
        """Whether the execution ran to completion without a race."""
        return self.race is None

    def fingerprint(self) -> Tuple:
        """A hashable digest of the observable outcome.

        Two executions of a race-free program under deterministic
        synchronization must produce equal fingerprints — this is the
        determinism oracle of Section 6.2.2 (program output, final
        deterministic counters, shared access counts, memory state).
        """
        return (
            tuple(sorted(self.memory.snapshot().items())),
            tuple((t, tuple(o)) for t, o in sorted(self.outputs.items())),
            tuple(sorted(self.det_counters.items())),
            self.shared_reads,
            self.shared_writes,
            tuple((c.tid, c.kind, c.target) for c in self.sync_log),
        )


#: Hooks dispatched through compiled chains (everything but attach,
#: memory hooks and on_finish, which have dedicated treatment).
_CHAINED_HOOKS = (
    "on_thread_start",
    "on_thread_exit",
    "on_join",
    "on_acquire",
    "on_release",
    "on_barrier_arrive",
    "on_barrier_depart",
    "on_cond_signal",
    "on_cond_wake",
    "on_sem_post",
    "on_sem_wait",
    "on_spawn",
    "on_compute",
    "may_sync",
    "on_sync_commit",
    "on_rollback",
)


def _overrides(monitor: ExecutionMonitor, name: str) -> bool:
    """Whether ``monitor``'s class (or an ancestor below the base)
    overrides hook ``name``."""
    return getattr(type(monitor), name) is not getattr(ExecutionMonitor, name)


class Scheduler:
    """Interleaves generator threads one operation at a time.

    ``fused=True`` (the default) compiles the monitor dispatch at
    construction: each hook calls only the monitors overriding it, and
    memory operations flow as single :class:`~repro.core.events.AccessEvent`
    objects.  ``fused=False`` is the pre-refactor reference dispatch
    (every monitor's hook called on every event), kept for equivalence
    tests and benchmarking.
    """

    def __init__(
        self,
        memory: Optional[SharedMemory] = None,
        monitors: Optional[Sequence[ExecutionMonitor]] = None,
        policy: Optional[SchedulingPolicy] = None,
        max_threads: int = 64,
        max_steps: int = 50_000_000,
        counter_cost: Optional[Callable[[Op], int]] = None,
        fused: bool = True,
        recovery: Optional[Any] = None,
    ) -> None:
        self.memory = memory if memory is not None else SharedMemory()
        self.monitors: List[ExecutionMonitor] = list(monitors or [])
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.max_threads = max_threads
        self.max_steps = max_steps
        self.counter_cost = counter_cost if counter_cost is not None else _default_cost
        self.fused = fused
        self.recovery = None
        if recovery is not None:
            from .recovery import RecoveryManager, RecoveryPolicy

            policy_obj = RecoveryPolicy.coerce(recovery)
            if policy_obj is not None:
                if not fused:
                    raise ValueError(
                        "recovery requires the fused dispatch (fused=True)"
                    )
                self.recovery = RecoveryManager(self, policy_obj)
        self._threads: Dict[int, _ThreadRecord] = {}
        # Records of every thread that ever ran; tid reuse keeps only the
        # latest occupant of a tid, which is what the result reports.
        self._records_ever: Dict[int, _ThreadRecord] = {}
        self._free_tids: List[int] = list(range(max_threads - 1, -1, -1))
        self._finished_unjoined: Dict[int, Any] = {}
        self._sync_log: List[SyncCommit] = []
        self._steps = 0
        self._shared_reads = 0
        self._shared_writes = 0
        self._ctx = _Context(self)
        for monitor in self.monitors:
            monitor.attach(self)
        self._compile_dispatch()

    # -- dispatch compilation --------------------------------------------------

    def add_monitor(self, monitor: ExecutionMonitor) -> None:
        """Adopt ``monitor`` mid-setup and recompile the dispatch tables."""
        self.monitors.append(monitor)
        monitor.attach(self)
        self._compile_dispatch()

    def _compile_dispatch(self) -> None:
        """Build per-hook call chains from the current monitor stack.

        Fused mode keeps, per hook, only the monitors overriding it.
        Unfused mode keeps every monitor (the pre-refactor semantics:
        the base class's no-op hook is still a call).  Either way the
        chains are tuples of bound methods — iteration is allocation-
        free on the hot path.
        """
        monitors = self.monitors

        def chain(name: str) -> Tuple[Callable, ...]:
            if self.fused:
                return tuple(
                    getattr(m, name) for m in monitors if _overrides(m, name)
                )
            return tuple(getattr(m, name) for m in monitors)

        self._chains: Dict[str, Tuple[Callable, ...]] = {
            name: chain(name) for name in _CHAINED_HOOKS
        }
        c = self._chains
        self._c_thread_start = c["on_thread_start"]
        self._c_thread_exit = c["on_thread_exit"]
        self._c_join = c["on_join"]
        self._c_acquire = c["on_acquire"]
        self._c_release = c["on_release"]
        self._c_barrier_arrive = c["on_barrier_arrive"]
        self._c_barrier_depart = c["on_barrier_depart"]
        self._c_cond_signal = c["on_cond_signal"]
        self._c_cond_wake = c["on_cond_wake"]
        self._c_sem_post = c["on_sem_post"]
        self._c_sem_wait = c["on_sem_wait"]
        self._c_spawn = c["on_spawn"]
        self._c_compute = c["on_compute"]
        self._c_may_sync = c["may_sync"]
        self._c_sync_commit = c["on_sync_commit"]
        self._c_rollback = c["on_rollback"]

        # Event-hook chains: monitors consuming AccessEvents directly.
        self._ev_before = tuple(
            m.before_access for m in monitors if _overrides(m, "before_access")
        )
        self._ev_after = tuple(
            m.after_access for m in monitors if _overrides(m, "after_access")
        )

        # Fused memory chains: one callable-of-event per interested
        # monitor per dispatch point, in stack order.  Event-style
        # monitors contribute their bound hook; per-field monitors are
        # adapted by a closure that unpacks the event.
        def memory_chain(point: str) -> Tuple[Callable, ...]:
            event_hook = "before_access" if point.startswith("before") else "after_access"
            out: List[Callable] = []
            for m in monitors:
                if _overrides(m, event_hook):
                    out.append(getattr(m, event_hook))
                elif _overrides(m, point):
                    f = getattr(m, point)
                    if point in ("before_read",):
                        out.append(
                            lambda ev, f=f: f(ev.tid, ev.address, ev.size, ev.private)
                        )
                    else:
                        out.append(
                            lambda ev, f=f: f(
                                ev.tid, ev.address, ev.size, ev.value, ev.private
                            )
                        )
            return tuple(out)

        self._c_read_before = memory_chain("before_read")
        self._c_read_after = memory_chain("after_read")
        self._c_write_before = memory_chain("before_write")
        self._c_write_after = memory_chain("after_write")

        # The batch lane: monitors consuming whole access runs.  Event-
        # style monitors ride along through the base class's default
        # (which loops their per-event hooks), so block dispatch is
        # semantically the per-event dispatch.
        self._c_access_block = tuple(
            m.on_access_block
            for m in monitors
            if _overrides(m, "on_access_block")
            or _overrides(m, "before_access")
            or _overrides(m, "after_access")
        )

        handlers = dict(self._HANDLERS)
        if self.recovery is not None:
            handlers[Read] = Scheduler._do_read_buffered
            handlers[Write] = Scheduler._do_write_buffered
            handlers[AtomicRMW] = Scheduler._do_rmw_buffered
        if not self.fused:
            handlers[Read] = Scheduler._do_read_legacy
            handlers[Write] = Scheduler._do_write_legacy
            handlers[AtomicRMW] = Scheduler._do_rmw_legacy
            # The reference mode also restores the pre-refactor support
            # paths (per-thread sort + call-per-candidate feasibility,
            # isinstance-chain op classification), so benchmarks compare
            # against the hot path as it actually was, end to end.
            self._schedulable = self._schedulable_legacy
            self._feasible = self._feasible_legacy
        self._handlers = handlers

    def dispatch_access_block(
        self, tid: int, events: Sequence[AccessEvent]
    ) -> None:
        """Deliver one thread's in-order access run to every interested
        monitor through the compiled batch lane (replay drivers only —
        live execution dispatches per event)."""
        for fn in self._c_access_block:
            fn(tid, events)

    # -- public API -----------------------------------------------------------

    def start(self, fn: Callable[..., Any], *args: Any) -> int:
        """Create the root thread running ``fn(ctx, *args)``."""
        if self._threads:
            raise RuntimeError("root thread already started")
        return self._create_thread(fn, args, parent=None)

    def run(self, raise_on_race: bool = False) -> ExecutionResult:
        """Drive the execution to completion; returns the result.

        A :class:`RaceException` from a monitor stops the execution; it
        is recorded on the result (and re-raised if ``raise_on_race``).
        Under a recovery policy the exception is instead handed to the
        :class:`~repro.runtime.recovery.RecoveryManager`, which may roll
        the faulting thread back or quarantine it and let the run
        continue; only an ``abort``-mode policy (or a recovery failure)
        still stops the execution.
        """
        race: Optional[RaceException] = None
        recovery = self.recovery
        try:
            if self.fused:
                if recovery is not None:
                    while self._threads:
                        try:
                            self._step()
                        except RaceException as exc:
                            if not recovery.handle(exc):
                                raise
                else:
                    while self._threads:
                        self._step()
            else:
                while self._live_tids():
                    self._step()
        except RaceException as exc:
            race = exc
        except DeadlockError as exc:
            if recovery is None or not recovery.absorb_deadlock(exc):
                raise
        result = ExecutionResult(
            memory=self.memory,
            outputs={t: r.output for t, r in self._all_records().items()},
            thread_results={t: r.result for t, r in self._all_records().items()},
            det_counters={t: r.det_counter for t, r in self._all_records().items()},
            sync_log=self._sync_log,
            steps=self._steps,
            shared_reads=self._shared_reads,
            shared_writes=self._shared_writes,
            race=race,
            recovery=recovery.report if recovery is not None else None,
        )
        for monitor in self.monitors:
            monitor.on_finish(result)
        if recovery is not None:
            recovery.publish_ambient()
        if race is not None and raise_on_race:
            raise race
        return result

    def det_counter(self, tid: int) -> int:
        """Current deterministic counter of live thread ``tid``."""
        return self._threads[tid].det_counter

    def live_counters(self) -> Dict[int, int]:
        """Deterministic counters of all live threads."""
        return {t: r.det_counter for t, r in self._threads.items()}

    def region_of(self, tid: int) -> int:
        """Current SFR ordinal of live thread ``tid`` (bumps per sync)."""
        return self._threads[tid].region

    # -- scheduling loop -------------------------------------------------------

    def _live_tids(self) -> List[int]:
        return sorted(self._threads)

    def _all_records(self) -> Dict[int, _ThreadRecord]:
        return dict(self._records_ever)

    def _step(self) -> None:
        if self._steps >= self.max_steps:
            raise RuntimeError(f"exceeded step budget of {self.max_steps}")
        candidates = self._schedulable()
        if not candidates:
            self._pump()
            candidates = self._schedulable()
            if not candidates:
                raise DeadlockError(
                    {t: r.blocked_reason for t, r in self._threads.items()}
                )
        tid = self.policy.pick(candidates, self._steps)
        self._steps += 1
        record = self._threads[tid]
        if record.pending is not None:
            self._complete(record, record.pending)
        else:
            self._advance_generator(record)

    def _schedulable(self) -> List[int]:
        # Runs once per step: inline the feasibility/gate checks for
        # parked operations rather than paying a call per thread.
        ready = []
        runnable = ThreadStatus.RUNNABLE
        for tid, record in self._threads.items():
            if record.status is runnable:
                ready.append(tid)
            else:
                op = record.pending
                if (
                    op is not None
                    and self._feasible(record, op)
                    and (not op.is_sync or self._gate_open(tid, op))
                ):
                    ready.append(tid)
        ready.sort()
        return ready

    def _schedulable_legacy(self) -> List[int]:
        ready = []
        for tid in sorted(self._threads):
            record = self._threads[tid]
            if record.status is ThreadStatus.RUNNABLE:
                ready.append(tid)
            elif record.pending is not None and self._can_complete(record):
                ready.append(tid)
        return ready

    def _can_complete(self, record: _ThreadRecord) -> bool:
        op = record.pending
        assert op is not None
        if not self._feasible(record, op):
            return False
        if op.is_sync and not self._gate_open(record.tid, op):
            return False
        return True

    def _gate_open(self, tid: int, op: Op) -> bool:
        for gate in self._c_may_sync:
            if not gate(tid, op):
                return False
        return True

    def _pump(self) -> None:
        """Kendo pump: resolve a global stall by spin-with-increment.

        Only runs when every live thread is blocked.  In Kendo, a thread
        holding the deterministic turn whose operation cannot complete
        (lock held, barrier not full, ...) increments its own counter by
        one and cedes the turn; during a global stall these +1 bumps
        repeat until the first thread with a *feasible* operation becomes
        the minimum.  Because nothing else can run meanwhile, the limit
        of that dynamics has a closed form, applied here directly: every
        infeasible thread ahead of the first feasible thread ``F`` in
        turn order climbs to ``F``'s counter (plus one if its tid would
        still win the tie-break).  The result is a pure function of the
        stall state, so the committed sync order stays schedule-
        independent.
        """
        feasible: List[Tuple[int, int]] = []  # (counter, tid)
        for tid, record in self._threads.items():
            op = record.pending
            if op is not None and self._feasible(record, op):
                feasible.append((record.det_counter, tid))
        if not feasible:
            return  # true deadlock; _step raises
        threshold, winner_tid = min(feasible)
        for tid, record in self._threads.items():
            if tid == winner_tid:
                continue
            op = record.pending
            if op is None or self._feasible(record, op):
                continue
            if (record.det_counter, tid) < (threshold, winner_tid):
                record.det_counter = threshold if tid > winner_tid else threshold + 1

    def _feasible(self, record: _ThreadRecord, op: Op) -> bool:
        """Whether ``op`` can complete now, ignoring the sync gate.

        Dispatches on the op's exact type through a table; op types
        absent from the table (memory ops, compute, barrier arrival —
        which always "completes" into an internal sleep) are always
        feasible.
        """
        checker = self._FEASIBILITY.get(type(op))
        return True if checker is None else checker(self, op)

    def _feasible_legacy(self, record: _ThreadRecord, op: Op) -> bool:
        if isinstance(op, Acquire):
            return not op.lock.held
        if isinstance(op, _Reacquire):
            return not op.lock.held
        if isinstance(op, BarrierWait):
            return True
        if isinstance(op, _BarrierSleep):
            return op.barrier.generation > op.generation
        if isinstance(op, _CondSleep):
            return op.woken
        if isinstance(op, SemWait):
            return op.sem.value > 0
        if isinstance(op, Join):
            return op.tid in self._finished_unjoined
        return True

    # -- generator driving -----------------------------------------------------

    def _advance_generator(self, record: _ThreadRecord) -> None:
        if self.recovery is not None:
            self.recovery.note_resume(record)
        try:
            op = record.gen.send(record.inbox)
        except StopIteration as stop:
            self._finish_thread(record, stop.value)
            return
        record.inbox = None
        if not isinstance(op, Op):
            raise TypeError(
                f"thread {record.tid} yielded {op!r}; expected an Op instance"
            )
        if self._can_complete_fresh(record, op):
            self._complete(record, op)
        else:
            self._park(record, op)

    def _can_complete_fresh(self, record: _ThreadRecord, op: Op) -> bool:
        if not self._feasible(record, op):
            return False
        if op.is_sync and not self._gate_open(record.tid, op):
            return False
        return True

    def _park(self, record: _ThreadRecord, op: Op) -> None:
        record.pending = op
        record.status = ThreadStatus.BLOCKED
        record.blocked_reason = _describe_block(op)

    def _unpark(self, record: _ThreadRecord, inbox: Any = None) -> None:
        record.pending = None
        record.status = ThreadStatus.RUNNABLE
        record.blocked_reason = ""
        record.inbox = inbox

    # -- operation completion ----------------------------------------------------

    def _complete(self, record: _ThreadRecord, op: Op) -> None:
        record.pending = None
        record.status = ThreadStatus.RUNNABLE
        record.blocked_reason = ""
        handler = self._handlers[type(op)]
        handler(self, record, op)

    def _charge(self, record: _ThreadRecord, op: Op) -> None:
        record.det_counter += self.counter_cost(op)

    def _commit_sync(self, record: _ThreadRecord, op: Op, target: str) -> None:
        if self.recovery is not None:
            # The SFR is closing: its buffered writes become visible now,
            # which is exactly the paper's write-atomicity.
            self.recovery.commit(record.tid)
        self._charge(record, op)
        record.region += 1
        self._sync_log.append(
            SyncCommit(
                index=len(self._sync_log),
                tid=record.tid,
                kind=type(op).__name__,
                target=target,
                counter=record.det_counter,
            )
        )
        for hook in self._c_sync_commit:
            hook(record.tid, op)

    # -- memory operations (the fused hot path) --------------------------------

    def _do_read(self, record: _ThreadRecord, op: Read) -> None:
        before = self._c_read_before
        after = self._c_read_after
        if before or after:
            event = AccessEvent(
                record.tid, op.address, op.size, False, op.private,
                None, record.region, record.det_counter,
            )
            for fn in before:
                fn(event)
            value = self.memory.load_int(op.address, op.size)
            event.value = value
            for fn in after:
                fn(event)
        else:
            value = self.memory.load_int(op.address, op.size)
        if not op.private:
            self._shared_reads += 1
        self._charge(record, op)
        record.inbox = value

    def _do_write(self, record: _ThreadRecord, op: Write) -> None:
        before = self._c_write_before
        after = self._c_write_after
        if before or after:
            event = AccessEvent(
                record.tid, op.address, op.size, True, op.private,
                op.value, record.region, record.det_counter,
            )
            for fn in before:
                fn(event)
            self.memory.store_int(op.address, op.size, op.value)
            for fn in after:
                fn(event)
        else:
            self.memory.store_int(op.address, op.size, op.value)
        if not op.private:
            self._shared_writes += 1
        self._charge(record, op)

    def _do_rmw(self, record: _ThreadRecord, op: AtomicRMW) -> None:
        tid = record.tid
        read_event = AccessEvent(
            tid, op.address, op.size, False, False,
            None, record.region, record.det_counter,
        )
        for fn in self._c_read_before:
            fn(read_event)
        old = self.memory.load_int(op.address, op.size)
        read_event.value = old
        for fn in self._c_read_after:
            fn(read_event)
        new = op.fn(old)
        write_event = AccessEvent(
            tid, op.address, op.size, True, False,
            new, record.region, record.det_counter,
        )
        for fn in self._c_write_before:
            fn(write_event)
        self.memory.store_int(op.address, op.size, new)
        for fn in self._c_write_after:
            fn(write_event)
        self._shared_reads += 1
        self._shared_writes += 1
        self._charge(record, op)
        record.inbox = old

    # -- memory operations (SFR write-buffered variants, recovery mode) ---------
    #
    # Same monitor dispatch as the fused handlers, but stores land in the
    # thread's per-SFR buffer (published at the next sync commit) and
    # loads overlay the thread's own buffer — read-your-writes inside the
    # SFR, invisible to every other thread.  Race checks are unchanged:
    # they run against the same addresses at the same points, so the
    # detection verdict is identical to the unbuffered path.

    def _do_read_buffered(self, record: _ThreadRecord, op: Read) -> None:
        overlay = self.recovery.overlay(record.tid)
        before = self._c_read_before
        after = self._c_read_after
        if before or after:
            event = AccessEvent(
                record.tid, op.address, op.size, False, op.private,
                None, record.region, record.det_counter,
            )
            for fn in before:
                fn(event)
            value = self.memory.load_int_overlay(op.address, op.size, overlay)
            event.value = value
            for fn in after:
                fn(event)
        else:
            value = self.memory.load_int_overlay(op.address, op.size, overlay)
        if not op.private:
            self._shared_reads += 1
        self._charge(record, op)
        record.inbox = value

    def _do_write_buffered(self, record: _ThreadRecord, op: Write) -> None:
        before = self._c_write_before
        after = self._c_write_after
        if before or after:
            event = AccessEvent(
                record.tid, op.address, op.size, True, op.private,
                op.value, record.region, record.det_counter,
            )
            for fn in before:
                fn(event)
            self.recovery.buffer_store(record.tid, op.address, op.size, op.value)
            for fn in after:
                fn(event)
        else:
            self.recovery.buffer_store(record.tid, op.address, op.size, op.value)
        if not op.private:
            self._shared_writes += 1
        self._charge(record, op)

    def _do_rmw_buffered(self, record: _ThreadRecord, op: AtomicRMW) -> None:
        tid = record.tid
        overlay = self.recovery.overlay(tid)
        read_event = AccessEvent(
            tid, op.address, op.size, False, False,
            None, record.region, record.det_counter,
        )
        for fn in self._c_read_before:
            fn(read_event)
        old = self.memory.load_int_overlay(op.address, op.size, overlay)
        read_event.value = old
        for fn in self._c_read_after:
            fn(read_event)
        new = op.fn(old)
        write_event = AccessEvent(
            tid, op.address, op.size, True, False,
            new, record.region, record.det_counter,
        )
        for fn in self._c_write_before:
            fn(write_event)
        self.recovery.buffer_store(tid, op.address, op.size, new)
        for fn in self._c_write_after:
            fn(write_event)
        self._shared_reads += 1
        self._shared_writes += 1
        self._charge(record, op)
        record.inbox = old

    # -- memory operations (pre-refactor reference dispatch) --------------------

    def _dispatch_event_legacy(
        self, chains: Tuple[Callable, ...], event: AccessEvent
    ) -> None:
        for fn in chains:
            fn(event)

    def _do_read_legacy(self, record: _ThreadRecord, op: Read) -> None:
        tid = record.tid
        event = None
        if self._ev_before or self._ev_after:
            event = AccessEvent(
                tid, op.address, op.size, False, op.private,
                None, record.region, record.det_counter,
            )
        for monitor in self.monitors:
            monitor.before_read(tid, op.address, op.size, op.private)
        if event is not None:
            self._dispatch_event_legacy(self._ev_before, event)
        value = self.memory.load_int(op.address, op.size)
        if event is not None:
            event.value = value
        for monitor in self.monitors:
            monitor.after_read(tid, op.address, op.size, value, op.private)
        if event is not None:
            self._dispatch_event_legacy(self._ev_after, event)
        if not op.private:
            self._shared_reads += 1
        self._charge(record, op)
        record.inbox = value

    def _do_write_legacy(self, record: _ThreadRecord, op: Write) -> None:
        tid = record.tid
        event = None
        if self._ev_before or self._ev_after:
            event = AccessEvent(
                tid, op.address, op.size, True, op.private,
                op.value, record.region, record.det_counter,
            )
        for monitor in self.monitors:
            monitor.before_write(tid, op.address, op.size, op.value, op.private)
        if event is not None:
            self._dispatch_event_legacy(self._ev_before, event)
        self.memory.store_int(op.address, op.size, op.value)
        for monitor in self.monitors:
            monitor.after_write(tid, op.address, op.size, op.value, op.private)
        if event is not None:
            self._dispatch_event_legacy(self._ev_after, event)
        if not op.private:
            self._shared_writes += 1
        self._charge(record, op)

    def _do_rmw_legacy(self, record: _ThreadRecord, op: AtomicRMW) -> None:
        tid = record.tid
        use_events = bool(self._ev_before or self._ev_after)
        read_event = None
        if use_events:
            read_event = AccessEvent(
                tid, op.address, op.size, False, False,
                None, record.region, record.det_counter,
            )
        for monitor in self.monitors:
            monitor.before_read(tid, op.address, op.size, False)
        if read_event is not None:
            self._dispatch_event_legacy(self._ev_before, read_event)
        old = self.memory.load_int(op.address, op.size)
        if read_event is not None:
            read_event.value = old
        for monitor in self.monitors:
            monitor.after_read(tid, op.address, op.size, old, False)
        if read_event is not None:
            self._dispatch_event_legacy(self._ev_after, read_event)
        new = op.fn(old)
        write_event = None
        if use_events:
            write_event = AccessEvent(
                tid, op.address, op.size, True, False,
                new, record.region, record.det_counter,
            )
        for monitor in self.monitors:
            monitor.before_write(tid, op.address, op.size, new, False)
        if write_event is not None:
            self._dispatch_event_legacy(self._ev_before, write_event)
        self.memory.store_int(op.address, op.size, new)
        for monitor in self.monitors:
            monitor.after_write(tid, op.address, op.size, new, False)
        if write_event is not None:
            self._dispatch_event_legacy(self._ev_after, write_event)
        self._shared_reads += 1
        self._shared_writes += 1
        self._charge(record, op)
        record.inbox = old

    # -- synchronization operations ---------------------------------------------

    def _do_acquire(self, record: _ThreadRecord, op: Acquire) -> None:
        assert not op.lock.held
        op.lock.holder = record.tid
        if self.recovery is not None:
            self.recovery.note_acquire(record.tid, op.lock)
        for hook in self._c_acquire:
            hook(record.tid, op.lock)
        self._commit_sync(record, op, op.lock.name)

    def _do_release(self, record: _ThreadRecord, op: Release) -> None:
        if op.lock.holder != record.tid:
            raise RuntimeError(
                f"thread {record.tid} released {op.lock.name} held by "
                f"{op.lock.holder}"
            )
        if self.recovery is not None:
            self.recovery.note_release(record.tid, op.lock)
        for hook in self._c_release:
            hook(record.tid, op.lock)
        op.lock.holder = None
        self._commit_sync(record, op, op.lock.name)

    def _do_barrier(self, record: _ThreadRecord, op: BarrierWait) -> None:
        barrier = op.barrier
        generation = barrier.generation
        barrier.waiting.append(record.tid)
        for hook in self._c_barrier_arrive:
            hook(record.tid, barrier, generation)
        self._commit_sync(record, op, barrier.name)
        if len(barrier.waiting) >= barrier.parties:
            barrier.generation += 1
            departing = list(barrier.waiting)
            barrier.waiting.clear()
            for tid in departing:
                departer = self._threads[tid]
                for hook in self._c_barrier_depart:
                    hook(tid, barrier, generation)
                if tid != record.tid:
                    self._unpark(departer)
        else:
            self._park(record, _BarrierSleep(barrier, generation))

    def _do_barrier_sleep(self, record: _ThreadRecord, op: "_BarrierSleep") -> None:
        # Departure hooks already ran when the barrier tripped; waking the
        # thread is all that is left.
        record.inbox = None

    def _do_cond_wait(self, record: _ThreadRecord, op: CondWait) -> None:
        if op.lock.holder != record.tid:
            raise RuntimeError(
                f"thread {record.tid} waited on {op.cond.name} without "
                f"holding {op.lock.name}"
            )
        if self.recovery is not None:
            self.recovery.note_release(record.tid, op.lock)
        for hook in self._c_release:
            hook(record.tid, op.lock)
        op.lock.holder = None
        self._commit_sync(record, op, op.cond.name)
        sleep = _CondSleep(op.cond, op.lock)
        op.cond.waiting.append(record.tid)
        self._park(record, sleep)

    def _do_cond_sleep(self, record: _ThreadRecord, op: "_CondSleep") -> None:
        # Woken: now reacquire the lock before returning from the wait.
        self._park(record, _Reacquire(op.lock, op.cond))

    def _do_reacquire(self, record: _ThreadRecord, op: "_Reacquire") -> None:
        assert not op.lock.held
        op.lock.holder = record.tid
        if self.recovery is not None:
            self.recovery.note_acquire(record.tid, op.lock)
        for hook in self._c_acquire:
            hook(record.tid, op.lock)
        for hook in self._c_cond_wake:
            hook(record.tid, op.cond)
        self._commit_sync(record, op, op.lock.name)

    def _do_cond_signal(self, record: _ThreadRecord, op: CondSignal) -> None:
        for hook in self._c_cond_signal:
            hook(record.tid, op.cond)
        if op.cond.waiting:
            tid = op.cond.waiting.pop(0)
            sleeper = self._threads[tid]
            assert isinstance(sleeper.pending, _CondSleep)
            sleeper.pending.woken = True
        self._commit_sync(record, op, op.cond.name)

    def _do_cond_broadcast(self, record: _ThreadRecord, op: CondBroadcast) -> None:
        for hook in self._c_cond_signal:
            hook(record.tid, op.cond)
        for tid in op.cond.waiting:
            sleeper = self._threads[tid]
            assert isinstance(sleeper.pending, _CondSleep)
            sleeper.pending.woken = True
        op.cond.waiting.clear()
        self._commit_sync(record, op, op.cond.name)

    def _do_sem_wait(self, record: _ThreadRecord, op: SemWait) -> None:
        assert op.sem.value > 0
        op.sem.value -= 1
        for hook in self._c_sem_wait:
            hook(record.tid, op.sem)
        self._commit_sync(record, op, op.sem.name)

    def _do_sem_post(self, record: _ThreadRecord, op: SemPost) -> None:
        op.sem.value += 1
        for hook in self._c_sem_post:
            hook(record.tid, op.sem)
        self._commit_sync(record, op, op.sem.name)

    def _do_spawn(self, record: _ThreadRecord, op: Spawn) -> None:
        child = self._create_thread(op.fn, op.args, parent=record.tid)
        self._commit_sync(record, op, f"spawn:{child}")
        record.inbox = child

    def _do_join(self, record: _ThreadRecord, op: Join) -> None:
        assert op.tid in self._finished_unjoined
        result = self._finished_unjoined.pop(op.tid)
        for hook in self._c_join:
            hook(record.tid, op.tid)
        self._free_tids.append(op.tid)
        self._commit_sync(record, op, f"join:{op.tid}")
        record.inbox = result

    def _do_compute(self, record: _ThreadRecord, op: Compute) -> None:
        for hook in self._c_compute:
            hook(record.tid, op.amount)
        self._charge(record, op)

    def _do_output(self, record: _ThreadRecord, op: Output) -> None:
        record.output.append(op.value)
        self._charge(record, op)

    # -- thread lifecycle ----------------------------------------------------------

    def _create_thread(
        self, fn: Callable[..., Any], args: Tuple[Any, ...], parent: Optional[int]
    ) -> int:
        if not self._free_tids:
            raise RuntimeError(f"more than {self.max_threads} live threads")
        tid = self._free_tids.pop()
        gen = fn(self._ctx, *args)
        if not hasattr(gen, "send"):
            raise TypeError(f"thread function {fn!r} must be a generator function")
        record = _ThreadRecord(tid=tid, gen=gen, parent=parent, fn=fn, fn_args=args)
        if parent is not None:
            record.det_counter = self._threads[parent].det_counter
        self._threads[tid] = record
        self._records_ever[tid] = record
        for hook in self._c_thread_start:
            hook(tid, parent)
        if parent is not None:
            for hook in self._c_spawn:
                hook(parent, tid)
        return tid

    def _finish_thread(self, record: _ThreadRecord, result: Any) -> None:
        if self.recovery is not None:
            self.recovery.finish(record.tid)
        record.result = result
        record.status = ThreadStatus.DONE
        for hook in self._c_thread_exit:
            hook(record.tid)
        del self._threads[record.tid]
        self._finished_unjoined[record.tid] = result

    _HANDLERS: Dict[type, Callable] = {}
    _FEASIBILITY: Dict[type, Callable] = {}


class _Context:
    """Handle passed as the first argument to every thread function."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    @property
    def memory(self) -> SharedMemory:
        """The shared memory of the running program."""
        return self._scheduler.memory

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate shared memory (deterministic bump allocator)."""
        recovery = self._scheduler.recovery
        if recovery is not None:
            return recovery.alloc(self._scheduler.memory, size, align)
        return self._scheduler.memory.alloc(size, align)


class _InternalOp:
    """Base of scheduler-private continuation ops (never user-yielded)."""

    cost = 0
    is_sync = False


class _BarrierSleep(_InternalOp):
    """Internal: parked inside a barrier, waiting for it to trip."""

    def __init__(self, barrier: Barrier, generation: int) -> None:
        self.barrier = barrier
        self.generation = generation


class _CondSleep(_InternalOp):
    """Internal: parked on a condition variable until signalled."""

    def __init__(self, cond: Condition, lock: Lock) -> None:
        self.cond = cond
        self.lock = lock
        self.woken = False


class _Reacquire(_InternalOp):
    """Internal: reacquiring the lock after a condition wait."""

    is_sync = True

    def __init__(self, lock: Lock, cond: Condition) -> None:
        self.lock = lock
        self.cond = cond


def _describe_block(op: Op) -> str:
    if isinstance(op, (Acquire, _Reacquire)):
        return f"acquiring {op.lock.name}"
    if isinstance(op, _BarrierSleep):
        return f"inside {op.barrier.name}"
    if isinstance(op, BarrierWait):
        return f"arriving at {op.barrier.name}"
    if isinstance(op, _CondSleep):
        return f"waiting on {op.cond.name}"
    if isinstance(op, SemWait):
        return f"waiting on {op.sem.name}"
    if isinstance(op, Join):
        return f"joining thread {op.tid}"
    return f"gated {type(op).__name__}"


def _default_cost(op: Op) -> int:
    return op.cost


Scheduler._FEASIBILITY = {
    Acquire: lambda self, op: not op.lock.held,
    _Reacquire: lambda self, op: not op.lock.held,
    _BarrierSleep: lambda self, op: op.barrier.generation > op.generation,
    _CondSleep: lambda self, op: op.woken,
    SemWait: lambda self, op: op.sem.value > 0,
    Join: lambda self, op: op.tid in self._finished_unjoined,
}

Scheduler._HANDLERS = {
    Read: Scheduler._do_read,
    Write: Scheduler._do_write,
    AtomicRMW: Scheduler._do_rmw,
    Acquire: Scheduler._do_acquire,
    Release: Scheduler._do_release,
    BarrierWait: Scheduler._do_barrier,
    _BarrierSleep: Scheduler._do_barrier_sleep,
    CondWait: Scheduler._do_cond_wait,
    _CondSleep: Scheduler._do_cond_sleep,
    _Reacquire: Scheduler._do_reacquire,
    CondSignal: Scheduler._do_cond_signal,
    CondBroadcast: Scheduler._do_cond_broadcast,
    SemWait: Scheduler._do_sem_wait,
    SemPost: Scheduler._do_sem_post,
    Spawn: Scheduler._do_spawn,
    Join: Scheduler._do_join,
    Compute: Scheduler._do_compute,
    Output: Scheduler._do_output,
}
