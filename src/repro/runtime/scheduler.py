"""Cooperative interleaving scheduler: the runtime's execution engine.

Threads are generators yielding :mod:`~repro.runtime.ops` operations; the
scheduler completes one operation per step, choosing which thread steps
next through a pluggable :class:`SchedulingPolicy`.  Every completed
operation is visible to a stack of :class:`ExecutionMonitor` objects —
this is the moral equivalent of compiler instrumentation in the paper:
the race detector, the Kendo gate, the trace recorder and the SFR oracle
are all monitors.

Blocking semantics (locks, barriers, condition variables, semaphores,
join) are implemented here: an operation that cannot complete *parks* its
thread, and the thread becomes schedulable again once the operation is
feasible.  Synchronization operations are additionally *gated*: a monitor
may veto them via :meth:`ExecutionMonitor.may_sync` until it is the
thread's deterministic turn (Kendo, Section 2.4/3.3).  When every thread
is stalled and at least one is merely gate-blocked, the scheduler runs
the Kendo *pump*: it advances the deterministic counter of the
minimum-turn thread whose operation is infeasible, exactly like Kendo's
spin-with-increment, until some thread can proceed.  Because pumping only
happens when nothing else can run and each bump is a pure function of the
counter state, the committed synchronization order is independent of the
scheduling policy — the property the determinism tests verify.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import DeadlockError, RaceException
from .memory import SharedMemory
from .ops import (
    Acquire,
    AtomicRMW,
    BarrierWait,
    Compute,
    CondBroadcast,
    CondSignal,
    CondWait,
    Join,
    Op,
    Output,
    Read,
    Release,
    SemPost,
    SemWait,
    Spawn,
    Write,
)
from .sync import Barrier, Condition, Lock, Semaphore

__all__ = [
    "ExecutionMonitor",
    "ExecutionResult",
    "RandomPolicy",
    "RoundRobinPolicy",
    "Scheduler",
    "SchedulingPolicy",
    "ScriptedPolicy",
    "SyncCommit",
    "ThreadStatus",
]


class ThreadStatus(Enum):
    """Lifecycle state of a runtime thread."""

    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class _ThreadRecord:
    tid: int
    gen: Any
    status: ThreadStatus = ThreadStatus.RUNNABLE
    inbox: Any = None
    pending: Optional[Op] = None
    blocked_reason: str = ""
    det_counter: int = 0
    output: List[Any] = field(default_factory=list)
    result: Any = None
    parent: Optional[int] = None
    reacquire_after_cond: Optional[Tuple[Condition, Lock]] = None


@dataclass(frozen=True)
class SyncCommit:
    """One committed synchronization operation (the deterministic log)."""

    index: int
    tid: int
    kind: str
    target: str
    counter: int


class ExecutionMonitor:
    """Base monitor: every hook is a no-op.  Subclass what you need.

    Hooks that observe memory run in the order required by Section 4.3:
    ``before_write`` fires before the store, ``after_read`` fires right
    after the load.  Any hook may raise
    :class:`~repro.core.exceptions.RaceException` to stop the execution.
    """

    def attach(self, scheduler: "Scheduler") -> None:
        """Called once when the scheduler adopts this monitor."""

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        """A thread (root or spawned) began execution."""

    def on_thread_exit(self, tid: int) -> None:
        """A thread's generator finished."""

    def on_join(self, parent: int, child: int) -> None:
        """``parent`` completed a join on finished thread ``child``."""

    def before_read(self, tid: int, address: int, size: int, private: bool) -> None:
        """About to load ``size`` bytes at ``address``."""

    def after_read(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """Loaded ``value`` from ``address`` (race check point for reads)."""

    def before_write(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """About to store ``value`` (race check point for writes)."""

    def after_write(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        """Store completed."""

    def on_acquire(self, tid: int, lock: Lock) -> None:
        """``tid`` acquired ``lock`` (happens-after its last releaser)."""

    def on_release(self, tid: int, lock: Lock) -> None:
        """``tid`` released ``lock``."""

    def on_barrier_arrive(self, tid: int, barrier: Barrier, generation: int) -> None:
        """``tid`` arrived at ``barrier`` in episode ``generation``."""

    def on_barrier_depart(self, tid: int, barrier: Barrier, generation: int) -> None:
        """``tid`` left ``barrier`` after episode ``generation`` tripped."""

    def on_cond_signal(self, tid: int, cond: Condition) -> None:
        """``tid`` signalled (or broadcast) ``cond``."""

    def on_cond_wake(self, tid: int, cond: Condition) -> None:
        """``tid`` woke from a wait on ``cond`` (after reacquiring its lock)."""

    def on_sem_post(self, tid: int, sem: Semaphore) -> None:
        """``tid`` posted ``sem``."""

    def on_sem_wait(self, tid: int, sem: Semaphore) -> None:
        """``tid`` completed a wait on ``sem``."""

    def on_spawn(self, parent: int, child: int) -> None:
        """``parent`` spawned ``child`` (parent-happens-before-child)."""

    def on_compute(self, tid: int, amount: int) -> None:
        """``tid`` executed ``amount`` non-memory instructions."""

    def may_sync(self, tid: int, op: Op) -> bool:
        """Gate: may ``tid`` commit synchronization operation ``op`` now?"""
        return True

    def on_sync_commit(self, tid: int, op: Op) -> None:
        """A synchronization operation committed (rollover hook point)."""

    def on_finish(self, result: "ExecutionResult") -> None:
        """The whole execution finished (normally or with a race)."""


class SchedulingPolicy:
    """Chooses which schedulable thread performs the next step."""

    def pick(self, candidates: Sequence[int], step: int) -> int:
        """Return one tid from ``candidates`` (non-empty, sorted)."""
        raise NotImplementedError


class RoundRobinPolicy(SchedulingPolicy):
    """Rotate through threads in tid order."""

    def __init__(self) -> None:
        self._last = -1

    def pick(self, candidates: Sequence[int], step: int) -> int:
        for tid in candidates:
            if tid > self._last:
                self._last = tid
                return tid
        self._last = candidates[0]
        return candidates[0]


class RandomPolicy(SchedulingPolicy):
    """Uniformly random choice from a seeded generator.

    Different seeds explore different interleavings — the tool the
    property tests use to show CLEAN's guarantees hold on *every*
    schedule, not just a lucky one.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def pick(self, candidates: Sequence[int], step: int) -> int:
        return candidates[self._rng.randrange(len(candidates))]


class ScriptedPolicy(SchedulingPolicy):
    """Follow an explicit tid script; fall back to the lowest candidate.

    Lets tests construct an exact interleaving (e.g. "the write lands
    between the read and its check") without fighting randomness.
    """

    def __init__(self, script: Sequence[int]) -> None:
        self._script = list(script)
        self._pos = 0

    def pick(self, candidates: Sequence[int], step: int) -> int:
        while self._pos < len(self._script):
            wanted = self._script[self._pos]
            self._pos += 1
            if wanted in candidates:
                return wanted
        return candidates[0]


@dataclass
class ExecutionResult:
    """Everything observable about one finished execution."""

    memory: SharedMemory
    outputs: Dict[int, List[Any]]
    thread_results: Dict[int, Any]
    det_counters: Dict[int, int]
    sync_log: List[SyncCommit]
    steps: int
    shared_reads: int
    shared_writes: int
    race: Optional[RaceException] = None

    @property
    def completed(self) -> bool:
        """Whether the execution ran to completion without a race."""
        return self.race is None

    def fingerprint(self) -> Tuple:
        """A hashable digest of the observable outcome.

        Two executions of a race-free program under deterministic
        synchronization must produce equal fingerprints — this is the
        determinism oracle of Section 6.2.2 (program output, final
        deterministic counters, shared access counts, memory state).
        """
        return (
            tuple(sorted(self.memory.snapshot().items())),
            tuple((t, tuple(o)) for t, o in sorted(self.outputs.items())),
            tuple(sorted(self.det_counters.items())),
            self.shared_reads,
            self.shared_writes,
            tuple((c.tid, c.kind, c.target) for c in self.sync_log),
        )


class Scheduler:
    """Interleaves generator threads one operation at a time."""

    def __init__(
        self,
        memory: Optional[SharedMemory] = None,
        monitors: Optional[Sequence[ExecutionMonitor]] = None,
        policy: Optional[SchedulingPolicy] = None,
        max_threads: int = 64,
        max_steps: int = 50_000_000,
        counter_cost: Optional[Callable[[Op], int]] = None,
    ) -> None:
        self.memory = memory if memory is not None else SharedMemory()
        self.monitors: List[ExecutionMonitor] = list(monitors or [])
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.max_threads = max_threads
        self.max_steps = max_steps
        self.counter_cost = counter_cost if counter_cost is not None else _default_cost
        self._threads: Dict[int, _ThreadRecord] = {}
        # Records of every thread that ever ran; tid reuse keeps only the
        # latest occupant of a tid, which is what the result reports.
        self._records_ever: Dict[int, _ThreadRecord] = {}
        self._free_tids: List[int] = list(range(max_threads - 1, -1, -1))
        self._finished_unjoined: Dict[int, Any] = {}
        self._sync_log: List[SyncCommit] = []
        self._steps = 0
        self._shared_reads = 0
        self._shared_writes = 0
        self._ctx = _Context(self)
        for monitor in self.monitors:
            monitor.attach(self)

    # -- public API -----------------------------------------------------------

    def start(self, fn: Callable[..., Any], *args: Any) -> int:
        """Create the root thread running ``fn(ctx, *args)``."""
        if self._threads:
            raise RuntimeError("root thread already started")
        return self._create_thread(fn, args, parent=None)

    def run(self, raise_on_race: bool = False) -> ExecutionResult:
        """Drive the execution to completion; returns the result.

        A :class:`RaceException` from a monitor stops the execution; it
        is recorded on the result (and re-raised if ``raise_on_race``).
        """
        race: Optional[RaceException] = None
        try:
            while self._live_tids():
                self._step()
        except RaceException as exc:
            race = exc
        result = ExecutionResult(
            memory=self.memory,
            outputs={t: r.output for t, r in self._all_records().items()},
            thread_results={t: r.result for t, r in self._all_records().items()},
            det_counters={t: r.det_counter for t, r in self._all_records().items()},
            sync_log=self._sync_log,
            steps=self._steps,
            shared_reads=self._shared_reads,
            shared_writes=self._shared_writes,
            race=race,
        )
        for monitor in self.monitors:
            monitor.on_finish(result)
        if race is not None and raise_on_race:
            raise race
        return result

    def det_counter(self, tid: int) -> int:
        """Current deterministic counter of live thread ``tid``."""
        return self._threads[tid].det_counter

    def live_counters(self) -> Dict[int, int]:
        """Deterministic counters of all live threads."""
        return {t: r.det_counter for t, r in self._threads.items()}

    # -- scheduling loop -------------------------------------------------------

    def _live_tids(self) -> List[int]:
        return sorted(self._threads)

    def _all_records(self) -> Dict[int, _ThreadRecord]:
        return dict(self._records_ever)

    def _step(self) -> None:
        if self._steps >= self.max_steps:
            raise RuntimeError(f"exceeded step budget of {self.max_steps}")
        candidates = self._schedulable()
        if not candidates:
            self._pump()
            candidates = self._schedulable()
            if not candidates:
                raise DeadlockError(
                    {t: r.blocked_reason for t, r in self._threads.items()}
                )
        tid = self.policy.pick(candidates, self._steps)
        self._steps += 1
        record = self._threads[tid]
        if record.pending is not None:
            self._complete(record, record.pending)
        else:
            self._advance_generator(record)

    def _schedulable(self) -> List[int]:
        ready = []
        for tid in sorted(self._threads):
            record = self._threads[tid]
            if record.status is ThreadStatus.RUNNABLE:
                ready.append(tid)
            elif record.pending is not None and self._can_complete(record):
                ready.append(tid)
        return ready

    def _can_complete(self, record: _ThreadRecord) -> bool:
        op = record.pending
        assert op is not None
        if not self._feasible(record, op):
            return False
        if op.is_sync and not self._gate_open(record.tid, op):
            return False
        return True

    def _gate_open(self, tid: int, op: Op) -> bool:
        return all(m.may_sync(tid, op) for m in self.monitors)

    def _pump(self) -> None:
        """Kendo pump: resolve a global stall by spin-with-increment.

        Only runs when every live thread is blocked.  In Kendo, a thread
        holding the deterministic turn whose operation cannot complete
        (lock held, barrier not full, ...) increments its own counter by
        one and cedes the turn; during a global stall these +1 bumps
        repeat until the first thread with a *feasible* operation becomes
        the minimum.  Because nothing else can run meanwhile, the limit
        of that dynamics has a closed form, applied here directly: every
        infeasible thread ahead of the first feasible thread ``F`` in
        turn order climbs to ``F``'s counter (plus one if its tid would
        still win the tie-break).  The result is a pure function of the
        stall state, so the committed sync order stays schedule-
        independent.
        """
        feasible: List[Tuple[int, int]] = []  # (counter, tid)
        for tid, record in self._threads.items():
            op = record.pending
            if op is not None and self._feasible(record, op):
                feasible.append((record.det_counter, tid))
        if not feasible:
            return  # true deadlock; _step raises
        threshold, winner_tid = min(feasible)
        for tid, record in self._threads.items():
            if tid == winner_tid:
                continue
            op = record.pending
            if op is None or self._feasible(record, op):
                continue
            if (record.det_counter, tid) < (threshold, winner_tid):
                record.det_counter = threshold if tid > winner_tid else threshold + 1

    def _feasible(self, record: _ThreadRecord, op: Op) -> bool:
        """Whether ``op`` can complete now, ignoring the sync gate."""
        if isinstance(op, Acquire):
            return not op.lock.held
        if isinstance(op, _Reacquire):
            return not op.lock.held
        if isinstance(op, BarrierWait):
            # Arrival itself always "completes"; the thread then waits in
            # the barrier's internal list until the barrier trips.
            return True
        if isinstance(op, _BarrierSleep):
            return op.barrier.generation > op.generation
        if isinstance(op, _CondSleep):
            return op.woken
        if isinstance(op, SemWait):
            return op.sem.value > 0
        if isinstance(op, Join):
            return op.tid in self._finished_unjoined
        return True

    # -- generator driving -----------------------------------------------------

    def _advance_generator(self, record: _ThreadRecord) -> None:
        try:
            op = record.gen.send(record.inbox)
        except StopIteration as stop:
            self._finish_thread(record, stop.value)
            return
        record.inbox = None
        if not isinstance(op, Op):
            raise TypeError(
                f"thread {record.tid} yielded {op!r}; expected an Op instance"
            )
        if self._can_complete_fresh(record, op):
            self._complete(record, op)
        else:
            self._park(record, op)

    def _can_complete_fresh(self, record: _ThreadRecord, op: Op) -> bool:
        if not self._feasible(record, op):
            return False
        if op.is_sync and not self._gate_open(record.tid, op):
            return False
        return True

    def _park(self, record: _ThreadRecord, op: Op) -> None:
        record.pending = op
        record.status = ThreadStatus.BLOCKED
        record.blocked_reason = _describe_block(op)

    def _unpark(self, record: _ThreadRecord, inbox: Any = None) -> None:
        record.pending = None
        record.status = ThreadStatus.RUNNABLE
        record.blocked_reason = ""
        record.inbox = inbox

    # -- operation completion ----------------------------------------------------

    def _complete(self, record: _ThreadRecord, op: Op) -> None:
        record.pending = None
        record.status = ThreadStatus.RUNNABLE
        record.blocked_reason = ""
        handler = self._HANDLERS[type(op)]
        handler(self, record, op)

    def _charge(self, record: _ThreadRecord, op: Op) -> None:
        record.det_counter += self.counter_cost(op)

    def _commit_sync(self, record: _ThreadRecord, op: Op, target: str) -> None:
        self._charge(record, op)
        self._sync_log.append(
            SyncCommit(
                index=len(self._sync_log),
                tid=record.tid,
                kind=type(op).__name__,
                target=target,
                counter=record.det_counter,
            )
        )
        for monitor in self.monitors:
            monitor.on_sync_commit(record.tid, op)

    def _do_read(self, record: _ThreadRecord, op: Read) -> None:
        for monitor in self.monitors:
            monitor.before_read(record.tid, op.address, op.size, op.private)
        value = self.memory.load_int(op.address, op.size)
        for monitor in self.monitors:
            monitor.after_read(record.tid, op.address, op.size, value, op.private)
        if not op.private:
            self._shared_reads += 1
        self._charge(record, op)
        record.inbox = value

    def _do_write(self, record: _ThreadRecord, op: Write) -> None:
        for monitor in self.monitors:
            monitor.before_write(record.tid, op.address, op.size, op.value, op.private)
        self.memory.store_int(op.address, op.size, op.value)
        for monitor in self.monitors:
            monitor.after_write(record.tid, op.address, op.size, op.value, op.private)
        if not op.private:
            self._shared_writes += 1
        self._charge(record, op)

    def _do_rmw(self, record: _ThreadRecord, op: AtomicRMW) -> None:
        for monitor in self.monitors:
            monitor.before_read(record.tid, op.address, op.size, False)
        old = self.memory.load_int(op.address, op.size)
        for monitor in self.monitors:
            monitor.after_read(record.tid, op.address, op.size, old, False)
        new = op.fn(old)
        for monitor in self.monitors:
            monitor.before_write(record.tid, op.address, op.size, new, False)
        self.memory.store_int(op.address, op.size, new)
        for monitor in self.monitors:
            monitor.after_write(record.tid, op.address, op.size, new, False)
        self._shared_reads += 1
        self._shared_writes += 1
        self._charge(record, op)
        record.inbox = old

    def _do_acquire(self, record: _ThreadRecord, op: Acquire) -> None:
        assert not op.lock.held
        op.lock.holder = record.tid
        for monitor in self.monitors:
            monitor.on_acquire(record.tid, op.lock)
        self._commit_sync(record, op, op.lock.name)

    def _do_release(self, record: _ThreadRecord, op: Release) -> None:
        if op.lock.holder != record.tid:
            raise RuntimeError(
                f"thread {record.tid} released {op.lock.name} held by "
                f"{op.lock.holder}"
            )
        for monitor in self.monitors:
            monitor.on_release(record.tid, op.lock)
        op.lock.holder = None
        self._commit_sync(record, op, op.lock.name)

    def _do_barrier(self, record: _ThreadRecord, op: BarrierWait) -> None:
        barrier = op.barrier
        generation = barrier.generation
        barrier.waiting.append(record.tid)
        for monitor in self.monitors:
            monitor.on_barrier_arrive(record.tid, barrier, generation)
        self._commit_sync(record, op, barrier.name)
        if len(barrier.waiting) >= barrier.parties:
            barrier.generation += 1
            departing = list(barrier.waiting)
            barrier.waiting.clear()
            for tid in departing:
                departer = self._threads[tid]
                for monitor in self.monitors:
                    monitor.on_barrier_depart(tid, barrier, generation)
                if tid != record.tid:
                    self._unpark(departer)
        else:
            self._park(record, _BarrierSleep(barrier, generation))

    def _do_barrier_sleep(self, record: _ThreadRecord, op: "_BarrierSleep") -> None:
        # Departure hooks already ran when the barrier tripped; waking the
        # thread is all that is left.
        record.inbox = None

    def _do_cond_wait(self, record: _ThreadRecord, op: CondWait) -> None:
        if op.lock.holder != record.tid:
            raise RuntimeError(
                f"thread {record.tid} waited on {op.cond.name} without "
                f"holding {op.lock.name}"
            )
        for monitor in self.monitors:
            monitor.on_release(record.tid, op.lock)
        op.lock.holder = None
        self._commit_sync(record, op, op.cond.name)
        sleep = _CondSleep(op.cond, op.lock)
        op.cond.waiting.append(record.tid)
        self._park(record, sleep)

    def _do_cond_sleep(self, record: _ThreadRecord, op: "_CondSleep") -> None:
        # Woken: now reacquire the lock before returning from the wait.
        self._park(record, _Reacquire(op.lock, op.cond))

    def _do_reacquire(self, record: _ThreadRecord, op: "_Reacquire") -> None:
        assert not op.lock.held
        op.lock.holder = record.tid
        for monitor in self.monitors:
            monitor.on_acquire(record.tid, op.lock)
            monitor.on_cond_wake(record.tid, op.cond)
        self._commit_sync(record, op, op.lock.name)

    def _do_cond_signal(self, record: _ThreadRecord, op: CondSignal) -> None:
        for monitor in self.monitors:
            monitor.on_cond_signal(record.tid, op.cond)
        if op.cond.waiting:
            tid = op.cond.waiting.pop(0)
            sleeper = self._threads[tid]
            assert isinstance(sleeper.pending, _CondSleep)
            sleeper.pending.woken = True
        self._commit_sync(record, op, op.cond.name)

    def _do_cond_broadcast(self, record: _ThreadRecord, op: CondBroadcast) -> None:
        for monitor in self.monitors:
            monitor.on_cond_signal(record.tid, op.cond)
        for tid in op.cond.waiting:
            sleeper = self._threads[tid]
            assert isinstance(sleeper.pending, _CondSleep)
            sleeper.pending.woken = True
        op.cond.waiting.clear()
        self._commit_sync(record, op, op.cond.name)

    def _do_sem_wait(self, record: _ThreadRecord, op: SemWait) -> None:
        assert op.sem.value > 0
        op.sem.value -= 1
        for monitor in self.monitors:
            monitor.on_sem_wait(record.tid, op.sem)
        self._commit_sync(record, op, op.sem.name)

    def _do_sem_post(self, record: _ThreadRecord, op: SemPost) -> None:
        op.sem.value += 1
        for monitor in self.monitors:
            monitor.on_sem_post(record.tid, op.sem)
        self._commit_sync(record, op, op.sem.name)

    def _do_spawn(self, record: _ThreadRecord, op: Spawn) -> None:
        child = self._create_thread(op.fn, op.args, parent=record.tid)
        self._commit_sync(record, op, f"spawn:{child}")
        record.inbox = child

    def _do_join(self, record: _ThreadRecord, op: Join) -> None:
        assert op.tid in self._finished_unjoined
        result = self._finished_unjoined.pop(op.tid)
        for monitor in self.monitors:
            monitor.on_join(record.tid, op.tid)
        self._free_tids.append(op.tid)
        self._commit_sync(record, op, f"join:{op.tid}")
        record.inbox = result

    def _do_compute(self, record: _ThreadRecord, op: Compute) -> None:
        for monitor in self.monitors:
            monitor.on_compute(record.tid, op.amount)
        self._charge(record, op)

    def _do_output(self, record: _ThreadRecord, op: Output) -> None:
        record.output.append(op.value)
        self._charge(record, op)

    # -- thread lifecycle ----------------------------------------------------------

    def _create_thread(
        self, fn: Callable[..., Any], args: Tuple[Any, ...], parent: Optional[int]
    ) -> int:
        if not self._free_tids:
            raise RuntimeError(f"more than {self.max_threads} live threads")
        tid = self._free_tids.pop()
        gen = fn(self._ctx, *args)
        if not hasattr(gen, "send"):
            raise TypeError(f"thread function {fn!r} must be a generator function")
        record = _ThreadRecord(tid=tid, gen=gen, parent=parent)
        if parent is not None:
            record.det_counter = self._threads[parent].det_counter
        self._threads[tid] = record
        self._records_ever[tid] = record
        for monitor in self.monitors:
            monitor.on_thread_start(tid, parent)
        if parent is not None:
            for monitor in self.monitors:
                monitor.on_spawn(parent, tid)
        return tid

    def _finish_thread(self, record: _ThreadRecord, result: Any) -> None:
        record.result = result
        record.status = ThreadStatus.DONE
        for monitor in self.monitors:
            monitor.on_thread_exit(record.tid)
        del self._threads[record.tid]
        self._finished_unjoined[record.tid] = result

    _HANDLERS: Dict[type, Callable] = {}


class _Context:
    """Handle passed as the first argument to every thread function."""

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    @property
    def memory(self) -> SharedMemory:
        """The shared memory of the running program."""
        return self._scheduler.memory

    def alloc(self, size: int, align: int = 8) -> int:
        """Allocate shared memory (deterministic bump allocator)."""
        return self._scheduler.memory.alloc(size, align)


class _InternalOp:
    """Base of scheduler-private continuation ops (never user-yielded)."""

    cost = 0
    is_sync = False


class _BarrierSleep(_InternalOp):
    """Internal: parked inside a barrier, waiting for it to trip."""

    def __init__(self, barrier: Barrier, generation: int) -> None:
        self.barrier = barrier
        self.generation = generation


class _CondSleep(_InternalOp):
    """Internal: parked on a condition variable until signalled."""

    def __init__(self, cond: Condition, lock: Lock) -> None:
        self.cond = cond
        self.lock = lock
        self.woken = False


class _Reacquire(_InternalOp):
    """Internal: reacquiring the lock after a condition wait."""

    is_sync = True

    def __init__(self, lock: Lock, cond: Condition) -> None:
        self.lock = lock
        self.cond = cond


def _describe_block(op: Op) -> str:
    if isinstance(op, (Acquire, _Reacquire)):
        return f"acquiring {op.lock.name}"
    if isinstance(op, _BarrierSleep):
        return f"inside {op.barrier.name}"
    if isinstance(op, BarrierWait):
        return f"arriving at {op.barrier.name}"
    if isinstance(op, _CondSleep):
        return f"waiting on {op.cond.name}"
    if isinstance(op, SemWait):
        return f"waiting on {op.sem.name}"
    if isinstance(op, Join):
        return f"joining thread {op.tid}"
    return f"gated {type(op).__name__}"


def _default_cost(op: Op) -> int:
    return op.cost


Scheduler._HANDLERS = {
    Read: Scheduler._do_read,
    Write: Scheduler._do_write,
    AtomicRMW: Scheduler._do_rmw,
    Acquire: Scheduler._do_acquire,
    Release: Scheduler._do_release,
    BarrierWait: Scheduler._do_barrier,
    _BarrierSleep: Scheduler._do_barrier_sleep,
    CondWait: Scheduler._do_cond_wait,
    _CondSleep: Scheduler._do_cond_sleep,
    _Reacquire: Scheduler._do_reacquire,
    CondSignal: Scheduler._do_cond_signal,
    CondBroadcast: Scheduler._do_cond_broadcast,
    SemWait: Scheduler._do_sem_wait,
    SemPost: Scheduler._do_sem_post,
    Spawn: Scheduler._do_spawn,
    Join: Scheduler._do_join,
    Compute: Scheduler._do_compute,
    Output: Scheduler._do_output,
}
