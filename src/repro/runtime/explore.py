"""Systematic schedule exploration: every interleaving of a small program.

The property tests sample schedules with seeded randomness; for *small*
programs we can do better and enumerate **all** of them, CHESS-style.
Because programs in this runtime are replayable (generator threads with
no hidden state beyond what the scheduler feeds them), a schedule is
fully described by the sequence of scheduling choices taken at each
step.  The explorer drives a depth-first search over those choice
points, re-executing the program from scratch along each branch.

This is what lets the test suite prove, for bounded programs, the
paper's Section-3.4 iff-claim on *every* reachable interleaving rather
than a sample: CLEAN raises exactly on the schedules where a precise
detector observes a WAW or RAW race.

Use :func:`explore` for a callback per schedule, or
:func:`explore_results` to collect every schedule's outcome.  The number
of interleavings grows factorially — ``max_schedules`` caps the search
(the cap is reported so truncation is never silent).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from .program import Program
from .scheduler import ExecutionMonitor, ExecutionResult, SchedulingPolicy

__all__ = ["ExplorationStats", "explore", "explore_results"]


class _ReplayPolicy(SchedulingPolicy):
    """Follow a recorded prefix of choices, then always pick the first
    candidate, recording every choice point with its alternatives."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self._prefix = list(prefix)
        self._step = 0
        #: (chosen index, number of candidates) per decision point.
        self.decisions: List[Tuple[int, int]] = []

    def pick(self, candidates: Sequence[int], step: int) -> int:
        index = self._prefix[self._step] if self._step < len(self._prefix) else 0
        self._step += 1
        self.decisions.append((index, len(candidates)))
        return candidates[index]


@dataclass
class ExplorationStats:
    """What the search covered."""

    schedules: int = 0
    truncated: bool = False
    race_schedules: int = 0
    completed_schedules: int = 0


def explore(
    make_program: Callable[[], Program],
    monitors_factory: Optional[Callable[[], List[ExecutionMonitor]]] = None,
    max_schedules: int = 10_000,
    max_threads: int = 16,
) -> Iterator[Tuple[ExecutionResult, List[ExecutionMonitor]]]:
    """Yield ``(result, monitors)`` for every distinct schedule.

    ``make_program`` must build a *fresh* program each call (shared
    mutable state across runs would corrupt the replay);
    ``monitors_factory`` likewise builds a fresh monitor stack per run.
    The iteration order is depth-first over scheduling decisions.
    """
    # Each stack entry is a prefix of choice indices still to be explored.
    pending: List[List[int]] = [[]]
    produced = 0
    while pending:
        prefix = pending.pop()
        if produced >= max_schedules:
            return
        policy = _ReplayPolicy(prefix)
        monitors = monitors_factory() if monitors_factory else []
        result = make_program().run(
            policy=policy, monitors=monitors, max_threads=max_threads
        )
        produced += 1
        # Schedule the unexplored siblings of every decision at or past
        # the prefix, deepest-first so DFS order is stable.
        for depth in range(len(policy.decisions) - 1, len(prefix) - 1, -1):
            chosen, n_candidates = policy.decisions[depth]
            for alternative in range(chosen + 1, n_candidates):
                pending.append(
                    [c for c, _ in policy.decisions[:depth]] + [alternative]
                )
        yield result, monitors


def explore_results(
    make_program: Callable[[], Program],
    monitors_factory: Optional[Callable[[], List[ExecutionMonitor]]] = None,
    max_schedules: int = 10_000,
    max_threads: int = 16,
) -> Tuple[List[Tuple[ExecutionResult, List[ExecutionMonitor]]], ExplorationStats]:
    """Run :func:`explore` to exhaustion (or the cap); collect outcomes."""
    outcomes = list(
        explore(make_program, monitors_factory, max_schedules, max_threads)
    )
    stats = ExplorationStats(
        schedules=len(outcomes),
        truncated=len(outcomes) >= max_schedules,
        race_schedules=sum(1 for r, _ in outcomes if r.race is not None),
    )
    stats.completed_schedules = stats.schedules - stats.race_schedules
    return outcomes, stats
