"""Access traces: the interface between the runtime and the hardware sim.

The paper's hardware evaluation is driven by a Pin-based simulator that
observes every memory access of the running benchmark (Section 6.3.1).
Our equivalent: a :class:`TraceRecorder` monitor captures each thread's
stream of memory and synchronization events while a workload runs on the
cooperative runtime; the resulting :class:`Trace` is then replayed by the
trace-driven multicore simulator in :mod:`repro.hardware`.

Events deliberately carry the same information Pin provides the paper's
simulator: address, size, read/write, a stack/private flag ("potentially
shared" is approximated as non-stack, Section 6.3.1), and an instruction
weight for the non-memory work between accesses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from .scheduler import ExecutionMonitor

__all__ = ["TraceEvent", "Trace", "TraceRecorder", "READ", "WRITE", "SYNC"]

READ = "R"
WRITE = "W"
SYNC = "S"


@dataclass(frozen=True)
class TraceEvent:
    """One event of one thread's trace.

    ``kind`` is :data:`READ`, :data:`WRITE` or :data:`SYNC`.  ``gap``
    counts the non-memory instructions executed since the thread's
    previous event (the simulator charges them one cycle each).
    """

    kind: str
    address: int = 0
    size: int = 0
    private: bool = False
    gap: int = 0
    sync_name: str = ""


@dataclass
class Trace:
    """Per-thread event streams of one execution."""

    per_thread: Dict[int, List[TraceEvent]] = field(default_factory=dict)

    def thread_ids(self) -> List[int]:
        """Sorted tids present in the trace."""
        return sorted(self.per_thread)

    def events(self, tid: int) -> List[TraceEvent]:
        """The event list of thread ``tid``."""
        return self.per_thread.get(tid, [])

    def __iter__(self) -> Iterator[TraceEvent]:
        for tid in self.thread_ids():
            yield from self.per_thread[tid]

    @property
    def total_events(self) -> int:
        """Total number of events across all threads."""
        return sum(len(v) for v in self.per_thread.values())

    @property
    def total_accesses(self) -> int:
        """Total number of memory (non-sync) events."""
        return sum(
            1
            for events in self.per_thread.values()
            for e in events
            if e.kind != SYNC
        )

    def shared_accesses(self) -> int:
        """Memory events not marked private."""
        return sum(
            1
            for events in self.per_thread.values()
            for e in events
            if e.kind != SYNC and not e.private
        )

    # -- persistence ---------------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON-lines: one line per thread.

        The format is stable and self-describing, so traces recorded
        once (an expensive workload run) can be replayed through many
        simulator configurations, or shared between machines.
        """
        with open(path, "w") as fh:
            for tid in self.thread_ids():
                events = [
                    [e.kind, e.address, e.size, int(e.private), e.gap, e.sync_name]
                    for e in self.per_thread[tid]
                ]
                fh.write(json.dumps({"tid": tid, "events": events}) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a trace written by :meth:`save`."""
        per_thread: Dict[int, List[TraceEvent]] = {}
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                per_thread[int(record["tid"])] = [
                    TraceEvent(
                        kind=kind,
                        address=address,
                        size=size,
                        private=bool(private),
                        gap=gap,
                        sync_name=sync_name,
                    )
                    for kind, address, size, private, gap, sync_name in record[
                        "events"
                    ]
                ]
        return cls(per_thread=per_thread)


class TraceRecorder(ExecutionMonitor):
    """Monitor that builds a :class:`Trace` while a program runs."""

    def __init__(self) -> None:
        self.trace = Trace()
        self._gap: Dict[int, int] = {}

    def _emit(self, tid: int, event: TraceEvent) -> None:
        self.trace.per_thread.setdefault(tid, []).append(event)

    def _take_gap(self, tid: int) -> int:
        gap = self._gap.get(tid, 0)
        self._gap[tid] = 0
        return gap

    def on_compute(self, tid: int, amount: int) -> None:
        """Accumulate non-memory instruction work for ``tid``."""
        self._gap[tid] = self._gap.get(tid, 0) + amount

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self.trace.per_thread.setdefault(tid, [])
        self._gap[tid] = 0

    def after_read(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        self._emit(
            tid,
            TraceEvent(READ, address, size, private, gap=self._take_gap(tid)),
        )

    def after_write(
        self, tid: int, address: int, size: int, value: int, private: bool
    ) -> None:
        self._emit(
            tid,
            TraceEvent(WRITE, address, size, private, gap=self._take_gap(tid)),
        )

    def on_sync_commit(self, tid: int, op: object) -> None:
        self._emit(
            tid,
            TraceEvent(
                SYNC,
                gap=self._take_gap(tid),
                sync_name=type(op).__name__,
            ),
        )
