"""Access traces: the interface between the runtime and the hardware sim.

The paper's hardware evaluation is driven by a Pin-based simulator that
observes every memory access of the running benchmark (Section 6.3.1).
Our equivalent: a :class:`TraceRecorder` monitor captures each thread's
stream of memory and synchronization events while a workload runs on the
cooperative runtime; the resulting :class:`Trace` is then replayed by the
trace-driven multicore simulator in :mod:`repro.hardware`.

Events deliberately carry the same information Pin provides the paper's
simulator: address, size, read/write, a stack/private flag ("potentially
shared" is approximated as non-stack, Section 6.3.1), and an instruction
weight for the non-memory work between accesses.

Persistence
-----------

The native on-disk format is *chunked binary*: a magic header followed by
per-thread chunks of struct-packed records, each chunk optionally
zlib-compressed and carrying its own sync-name table.  Binary traces can
be replayed without materializing the full event lists — see
:class:`StreamingTrace` and :func:`open_trace` — so a long recorded
workload streams through the simulator chunk by chunk.

The original JSON-lines format remains supported: :meth:`Trace.save`
writes it when the path ends in ``.jsonl`` (or ``format="jsonl"`` is
forced), and :meth:`Trace.load` auto-detects the format from the magic
bytes, so old traces keep loading unchanged.
"""

from __future__ import annotations

import io
import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Dict, Iterable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..core.events import AccessEvent
from .scheduler import ExecutionMonitor

__all__ = [
    "TraceEvent",
    "TraceChunk",
    "Trace",
    "TraceRecorder",
    "StreamingTrace",
    "open_trace",
    "chunked_events",
    "verify_trace",
    "verify_trace_bytes",
    "write_frame",
    "read_frames",
    "READ",
    "WRITE",
    "SYNC",
    "TRACE_MAGIC",
]

READ = "R"
WRITE = "W"
SYNC = "S"

#: Magic bytes opening every binary trace file, followed by one format
#: version byte.  Files not starting with these bytes are treated as the
#: legacy JSON-lines format.
TRACE_MAGIC = b"CLNTRACE"
_TRACE_VERSION = 1

#: Chunk header: tid, flags, event count, payload size uncompressed /
#: as stored.  ``flags`` bit 0 marks a zlib-compressed payload; bit 1
#: marks a CRC32 of the stored bytes appended inside the stored region
#: (``stored_len`` includes the 4 checksum bytes, so readers unaware of
#: the flag still skip the chunk correctly and old files — which never
#: set the bit — keep loading unchanged).
_CHUNK_HEADER = struct.Struct("<HBIII")
#: One packed record: kind/private byte, address, size, gap, sync-name
#: index into the chunk's name table (0xFFFF = none).
_RECORD = struct.Struct("<BQIIH")
_NAME_LEN = struct.Struct("<H")
_CRC = struct.Struct("<I")

_KIND_CODE = {READ: 0, WRITE: 1, SYNC: 2}
_CODE_KIND = {0: READ, 1: WRITE, 2: SYNC}
_PRIVATE_BIT = 0x80
_NO_NAME = 0xFFFF
_FLAG_ZLIB = 0x01
_FLAG_CRC32 = 0x02

#: Events per binary chunk: large enough to amortize headers and
#: compression, small enough that streaming replay stays lightweight.
DEFAULT_CHUNK_EVENTS = 4096

#: Numpy view of the packed record stream: one field per :data:`_RECORD`
#: column, no padding (``itemsize == _RECORD.size``), so a whole chunk
#: decodes to column arrays in a single ``frombuffer`` call — the entry
#: point of the batch replay path.
_RECORD_DTYPE = np.dtype(
    [
        ("code", "u1"),
        ("address", "<u8"),
        ("size", "<u4"),
        ("gap", "<u4"),
        ("name", "<u2"),
    ]
)
assert _RECORD_DTYPE.itemsize == _RECORD.size


@dataclass(frozen=True)
class TraceEvent:
    """One event of one thread's trace.

    ``kind`` is :data:`READ`, :data:`WRITE` or :data:`SYNC`.  ``gap``
    counts the non-memory instructions executed since the thread's
    previous event (the simulator charges them one cycle each).
    """

    kind: str
    address: int = 0
    size: int = 0
    private: bool = False
    gap: int = 0
    sync_name: str = ""


@dataclass
class TraceChunk:
    """One run of a thread's events, decoded to column arrays.

    The currency of the batch replay path: a binary chunk's packed
    records become five numpy columns in one ``frombuffer`` call (no
    per-event Python objects), and the offline analysis engine slices
    synchronization-free runs straight out of them for
    ``check_block``.  ``names`` is the chunk's sync-name table;
    ``name_idx`` holds :data:`_NO_NAME` for non-sync events.
    """

    tid: int
    codes: "np.ndarray"
    addresses: "np.ndarray"
    sizes: "np.ndarray"
    gaps: "np.ndarray"
    name_idx: "np.ndarray"
    names: List[str]

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def kinds(self) -> "np.ndarray":
        """Kind codes (0=read, 1=write, 2=sync) with the private bit off."""
        return self.codes & ~np.uint8(_PRIVATE_BIT)

    @property
    def private(self) -> "np.ndarray":
        """Boolean private flag per event."""
        return (self.codes & np.uint8(_PRIVATE_BIT)) != 0

    def sync_name_at(self, i: int) -> str:
        """The sync name of event ``i`` ("" for memory events)."""
        idx = int(self.name_idx[i])
        return "" if idx == _NO_NAME else self.names[idx]

    def events(self) -> List[TraceEvent]:
        """Materialize the chunk as :class:`TraceEvent` objects."""
        kinds = self.kinds
        private = self.private
        names = self.names
        return [
            TraceEvent(
                kind=_CODE_KIND[int(kinds[i])],
                address=int(self.addresses[i]),
                size=int(self.sizes[i]),
                private=bool(private[i]),
                gap=int(self.gaps[i]),
                sync_name=(
                    "" if self.name_idx[i] == _NO_NAME
                    else names[int(self.name_idx[i])]
                ),
            )
            for i in range(len(self.codes))
        ]

    @classmethod
    def from_events(cls, tid: int, events: List[TraceEvent]) -> "TraceChunk":
        """Column-ize an in-memory event list (the recorder's output)."""
        n = len(events)
        names: List[str] = []
        name_pos: Dict[str, int] = {}
        name_idx = np.full(n, _NO_NAME, dtype=np.uint16)
        codes = np.zeros(n, dtype=np.uint8)
        addresses = np.zeros(n, dtype=np.uint64)
        sizes = np.zeros(n, dtype=np.uint32)
        gaps = np.zeros(n, dtype=np.uint32)
        for i, e in enumerate(events):
            codes[i] = _KIND_CODE[e.kind] | (_PRIVATE_BIT if e.private else 0)
            addresses[i] = e.address
            sizes[i] = e.size
            gaps[i] = e.gap
            if e.sync_name:
                idx = name_pos.get(e.sync_name)
                if idx is None:
                    idx = len(names)
                    name_pos[e.sync_name] = idx
                    names.append(e.sync_name)
                name_idx[i] = idx
        return cls(tid, codes, addresses, sizes, gaps, name_idx, names)


# -- binary chunk encode/decode ---------------------------------------------


def _corrupt(path: object, index: int, offset: int, detail: str) -> ValueError:
    """The uniform error for any damaged binary trace data."""
    return ValueError(
        f"truncated/corrupt trace: {path}: chunk {index} at offset "
        f"{offset}: {detail}"
    )


def _note_salvaged(count: int) -> None:
    """Count skipped chunks in the ambient telemetry registry."""
    if not count:
        return
    from ..obs.context import current_registry

    registry = current_registry()
    if registry is not None:
        registry.inc("trace.salvaged_chunks", count)


def _encode_chunk(
    tid: int, events: List[TraceEvent], compress: bool, crc: bool = True
) -> bytes:
    names: List[str] = []
    name_idx: Dict[str, int] = {}
    records = bytearray()
    for e in events:
        if e.sync_name:
            idx = name_idx.get(e.sync_name)
            if idx is None:
                idx = len(names)
                name_idx[e.sync_name] = idx
                names.append(e.sync_name)
        else:
            idx = _NO_NAME
        code = _KIND_CODE[e.kind] | (_PRIVATE_BIT if e.private else 0)
        records += _RECORD.pack(code, e.address, e.size, e.gap, idx)
    table = bytearray(_NAME_LEN.pack(len(names)))
    for name in names:
        raw = name.encode("utf-8")
        table += _NAME_LEN.pack(len(raw)) + raw
    payload = bytes(table) + bytes(records)
    flags = 0
    stored = payload
    if compress:
        flags |= _FLAG_ZLIB
        stored = zlib.compress(payload)
    if crc:
        flags |= _FLAG_CRC32
        stored = stored + _CRC.pack(zlib.crc32(stored) & 0xFFFFFFFF)
    header = _CHUNK_HEADER.pack(tid, flags, len(events), len(payload), len(stored))
    return header + stored


def _decode_payload(payload: bytes, n_events: int) -> List[TraceEvent]:
    (n_names,) = _NAME_LEN.unpack_from(payload, 0)
    offset = _NAME_LEN.size
    names: List[str] = []
    for _ in range(n_names):
        (length,) = _NAME_LEN.unpack_from(payload, offset)
        offset += _NAME_LEN.size
        names.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    events: List[TraceEvent] = []
    for code, address, size, gap, idx in _RECORD.iter_unpack(payload[offset:]):
        events.append(
            TraceEvent(
                kind=_CODE_KIND[code & ~_PRIVATE_BIT],
                address=address,
                size=size,
                private=bool(code & _PRIVATE_BIT),
                gap=gap,
                sync_name="" if idx == _NO_NAME else names[idx],
            )
        )
    if len(events) != n_events:
        raise ValueError(
            f"corrupt trace chunk: header says {n_events} events, "
            f"payload decodes to {len(events)}"
        )
    return events


def _read_chunk_raw(
    fh: BinaryIO, path: object, index: int
) -> Optional[Tuple[int, int, int, int, bytes, int]]:
    """Read one chunk's header and stored bytes, without decoding.

    Returns ``(tid, flags, n_events, raw_len, stored, offset)`` or
    ``None`` at a clean end of file.  Any short read raises the wrapped
    ``truncated/corrupt trace`` :class:`ValueError` — a failure here
    means the rest of the file cannot be walked.
    """
    offset = fh.tell()
    header = fh.read(_CHUNK_HEADER.size)
    if not header:
        return None
    if len(header) != _CHUNK_HEADER.size:
        raise _corrupt(
            path, index, offset,
            f"truncated chunk header ({len(header)}/{_CHUNK_HEADER.size} bytes)",
        )
    tid, flags, n_events, raw_len, stored_len = _CHUNK_HEADER.unpack(header)
    stored = fh.read(stored_len)
    if len(stored) != stored_len:
        raise _corrupt(
            path, index, offset,
            f"truncated chunk payload ({len(stored)}/{stored_len} bytes)",
        )
    return tid, flags, n_events, raw_len, stored, offset


def _verify_stored(
    stored: bytes,
    flags: int,
    raw_len: int,
    path: object,
    index: int,
    offset: int,
) -> bytes:
    """Checksum-verify and decompress one chunk's stored bytes."""
    if flags & _FLAG_CRC32:
        if len(stored) < _CRC.size:
            raise _corrupt(path, index, offset, "chunk too short for its checksum")
        (expected,) = _CRC.unpack_from(stored, len(stored) - _CRC.size)
        stored = stored[: -_CRC.size]
        actual = zlib.crc32(stored) & 0xFFFFFFFF
        if actual != expected:
            raise _corrupt(
                path, index, offset,
                f"CRC mismatch (stored {expected:#010x}, computed {actual:#010x})",
            )
    try:
        payload = zlib.decompress(stored) if flags & _FLAG_ZLIB else stored
    except zlib.error as exc:
        raise _corrupt(path, index, offset, f"decompression failed: {exc}") from None
    if len(payload) != raw_len:
        raise _corrupt(
            path, index, offset,
            f"payload length mismatch ({len(payload)} != {raw_len})",
        )
    return payload


def _decode_stored(
    stored: bytes,
    flags: int,
    n_events: int,
    raw_len: int,
    path: object,
    index: int,
    offset: int,
) -> List[TraceEvent]:
    """Verify, decompress and decode one chunk's stored bytes.

    Every failure mode — checksum mismatch, zlib damage, record-level
    garbage — surfaces as the wrapped ``truncated/corrupt trace``
    :class:`ValueError` with file, chunk and offset context.  A failure
    here damages only this chunk; the file remains walkable.
    """
    payload = _verify_stored(stored, flags, raw_len, path, index, offset)
    try:
        return _decode_payload(payload, n_events)
    except (ValueError, struct.error, IndexError, UnicodeDecodeError) as exc:
        raise _corrupt(path, index, offset, str(exc)) from None


def _payload_to_chunk(tid: int, payload: bytes, n_events: int) -> TraceChunk:
    """Decode a verified payload straight to column arrays.

    The batch-path twin of :func:`_decode_payload`: the name table is
    walked in Python (it is tiny), then every packed record lands in
    numpy columns via one ``frombuffer`` — no per-event objects.
    """
    (n_names,) = _NAME_LEN.unpack_from(payload, 0)
    offset = _NAME_LEN.size
    names: List[str] = []
    for _ in range(n_names):
        (length,) = _NAME_LEN.unpack_from(payload, offset)
        offset += _NAME_LEN.size
        names.append(payload[offset : offset + length].decode("utf-8"))
        offset += length
    records = payload[offset:]
    if len(records) != n_events * _RECORD.size:
        raise ValueError(
            f"corrupt trace chunk: header says {n_events} events, "
            f"payload holds {len(records) // _RECORD.size}"
        )
    arr = np.frombuffer(records, dtype=_RECORD_DTYPE, count=n_events)
    codes = arr["code"].copy()
    kinds = codes & ~np.uint8(_PRIVATE_BIT)
    if n_events and int(kinds.max()) > max(_CODE_KIND):
        raise ValueError(f"unknown event kind code {int(kinds.max())}")
    name_idx = arr["name"].copy()
    named = name_idx[name_idx != _NO_NAME]
    if named.size and int(named.max()) >= len(names):
        raise ValueError(f"sync-name index {int(named.max())} out of range")
    return TraceChunk(
        tid=tid,
        codes=codes,
        addresses=arr["address"].copy(),
        sizes=arr["size"].copy(),
        gaps=arr["gap"].copy(),
        name_idx=name_idx,
        names=names,
    )


def _decode_stored_chunk(
    stored: bytes,
    flags: int,
    n_events: int,
    raw_len: int,
    path: object,
    index: int,
    offset: int,
    tid: int,
) -> TraceChunk:
    """Column-array twin of :func:`_decode_stored` (same error surface)."""
    payload = _verify_stored(stored, flags, raw_len, path, index, offset)
    try:
        return _payload_to_chunk(tid, payload, n_events)
    except (ValueError, struct.error, IndexError, UnicodeDecodeError) as exc:
        raise _corrupt(path, index, offset, str(exc)) from None


def _is_binary_trace(path: Union[str, Path]) -> bool:
    with open(path, "rb") as fh:
        return fh.read(len(TRACE_MAGIC)) == TRACE_MAGIC


@dataclass
class Trace:
    """Per-thread event streams of one execution, held in memory.

    ``salvaged_chunks`` counts binary chunks that were skipped because
    their payload was damaged — nonzero only after a salvage-mode
    :meth:`load` of a partially corrupted file.
    """

    per_thread: Dict[int, List[TraceEvent]] = field(default_factory=dict)
    salvaged_chunks: int = 0

    def thread_ids(self) -> List[int]:
        """Sorted tids present in the trace."""
        return sorted(self.per_thread)

    def events(self, tid: int) -> List[TraceEvent]:
        """The event list of thread ``tid``."""
        return self.per_thread.get(tid, [])

    def iter_events(self, tid: int) -> Iterator[TraceEvent]:
        """Iterate thread ``tid``'s events (the simulator's protocol)."""
        return iter(self.per_thread.get(tid, ()))

    def iter_chunks(
        self, tid: int, chunk_events: int = DEFAULT_CHUNK_EVENTS
    ) -> Iterator[TraceChunk]:
        """Yield thread ``tid``'s events as column-array chunks.

        In-memory traces have no native chunk structure, so slices of
        ``chunk_events`` events are column-ized on the fly — same
        protocol as :meth:`StreamingTrace.iter_chunks`.
        """
        events = self.per_thread.get(tid, [])
        for start in range(0, len(events), chunk_events):
            yield TraceChunk.from_events(tid, events[start : start + chunk_events])

    def __iter__(self) -> Iterator[TraceEvent]:
        for tid in self.thread_ids():
            yield from self.per_thread[tid]

    @property
    def total_events(self) -> int:
        """Total number of events across all threads."""
        return sum(len(v) for v in self.per_thread.values())

    @property
    def total_accesses(self) -> int:
        """Total number of memory (non-sync) events."""
        return sum(
            1
            for events in self.per_thread.values()
            for e in events
            if e.kind != SYNC
        )

    def shared_accesses(self) -> int:
        """Memory events not marked private."""
        return sum(
            1
            for events in self.per_thread.values()
            for e in events
            if e.kind != SYNC and not e.private
        )

    # -- persistence ---------------------------------------------------------

    def save(
        self,
        path: Union[str, Path],
        format: Optional[str] = None,
        compress: bool = True,
        chunk_events: int = DEFAULT_CHUNK_EVENTS,
        crc: bool = True,
    ) -> None:
        """Write the trace to ``path``.

        ``format`` is ``"binary"`` (chunked struct records, the native
        format), ``"jsonl"`` (the legacy self-describing text format) or
        ``None`` to pick by extension: ``.jsonl`` paths get JSON-lines,
        everything else the binary format.  ``compress`` zlib-compresses
        each binary chunk; ``chunk_events`` bounds events per chunk;
        ``crc`` stamps each binary chunk with a CRC32 of its stored
        bytes so loaders can detect bit damage.
        """
        if format is None:
            format = "jsonl" if str(path).endswith(".jsonl") else "binary"
        if format == "jsonl":
            self._save_jsonl(path)
        elif format == "binary":
            self._save_binary(
                path, compress=compress, chunk_events=chunk_events, crc=crc
            )
        else:
            raise ValueError(f"unknown trace format {format!r}")

    def _save_jsonl(self, path: Union[str, Path]) -> None:
        with open(path, "w") as fh:
            for tid in self.thread_ids():
                events = [
                    [e.kind, e.address, e.size, int(e.private), e.gap, e.sync_name]
                    for e in self.per_thread[tid]
                ]
                fh.write(json.dumps({"tid": tid, "events": events}) + "\n")

    def _save_binary(
        self,
        path: Union[str, Path],
        compress: bool,
        chunk_events: int,
        crc: bool = True,
    ) -> None:
        if chunk_events < 1:
            raise ValueError("chunk_events must be positive")
        with open(path, "wb") as fh:
            fh.write(TRACE_MAGIC + bytes([_TRACE_VERSION]))
            for tid in self.thread_ids():
                events = self.per_thread[tid]
                if not events:
                    # An empty chunk keeps the thread visible to readers.
                    fh.write(_encode_chunk(tid, [], compress, crc=crc))
                for start in range(0, len(events), chunk_events):
                    fh.write(
                        _encode_chunk(
                            tid,
                            events[start : start + chunk_events],
                            compress,
                            crc=crc,
                        )
                    )

    @classmethod
    def load(cls, path: Union[str, Path], salvage: bool = False) -> "Trace":
        """Read a trace written by :meth:`save` (either format).

        The format is detected from the file's magic bytes, not its
        name, so renamed files load fine.  With ``salvage=True``, binary
        chunks whose payload is damaged (bad CRC, zlib damage, garbled
        records) are skipped instead of raising; the skipped count lands
        in :attr:`salvaged_chunks` and the ``trace.salvaged_chunks``
        telemetry counter.  Damage to the chunk *structure* itself — a
        truncated header or short stored region — still raises, because
        the rest of the file cannot be walked past it.
        """
        if _is_binary_trace(path):
            return cls._load_binary(path, salvage=salvage)
        return cls._load_jsonl(path)

    @classmethod
    def _load_binary(
        cls, path: Union[str, Path], salvage: bool = False
    ) -> "Trace":
        per_thread: Dict[int, List[TraceEvent]] = {}
        salvaged = 0
        with open(path, "rb") as fh:
            _check_magic(fh, path)
            index = 0
            while True:
                chunk = _read_chunk_raw(fh, path, index)
                if chunk is None:
                    break
                tid, flags, n_events, raw_len, stored, offset = chunk
                try:
                    events = _decode_stored(
                        stored, flags, n_events, raw_len, path, index, offset
                    )
                except ValueError:
                    if not salvage:
                        raise
                    salvaged += 1
                else:
                    per_thread.setdefault(tid, []).extend(events)
                index += 1
        _note_salvaged(salvaged)
        return cls(per_thread=per_thread, salvaged_chunks=salvaged)

    @classmethod
    def _load_jsonl(cls, path: Union[str, Path]) -> "Trace":
        per_thread: Dict[int, List[TraceEvent]] = {}
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                per_thread[int(record["tid"])] = [
                    TraceEvent(
                        kind=kind,
                        address=address,
                        size=size,
                        private=bool(private),
                        gap=gap,
                        sync_name=sync_name,
                    )
                    for kind, address, size, private, gap, sync_name in record[
                        "events"
                    ]
                ]
        return cls(per_thread=per_thread)


def _check_magic(fh: BinaryIO, path: Union[str, Path]) -> None:
    head = fh.read(len(TRACE_MAGIC) + 1)
    if len(head) != len(TRACE_MAGIC) + 1:
        raise ValueError(
            f"truncated/corrupt trace: {path}: file shorter than its header"
        )
    if head[: len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise ValueError(f"{path} is not a binary trace")
    version = head[-1]
    if version != _TRACE_VERSION:
        raise ValueError(
            f"unsupported trace version {version} (expected {_TRACE_VERSION})"
        )


class StreamingTrace:
    """A binary trace replayed chunk by chunk, never fully in memory.

    Implements the protocol the simulator consumes — :meth:`thread_ids`
    and re-iterable :meth:`iter_events` — by indexing chunk *offsets* at
    open time (one header-hopping scan, no payloads read) and decoding
    one chunk at a time during iteration.  Each :meth:`iter_events` call
    opens its own file handle, so the simulator can interleave many
    threads' iterators, and the warmup pass can simply iterate again.

    With ``salvage=True`` every chunk's payload is *validated* during
    the open-time scan (damaged ones are dropped from the index and
    counted in :attr:`salvaged_chunks`) so that later iteration can
    never blow up mid-simulation.  Salvage pays the full decode cost up
    front; the default mode keeps the cheap header-hopping scan and
    raises lazily from :meth:`iter_events` if a chunk turns out damaged.
    """

    def __init__(self, path: Union[str, Path], salvage: bool = False) -> None:
        self._path = Path(path)
        self.salvaged_chunks = 0
        #: tid -> [(chunk index, payload offset, flags, n_events, raw_len,
        #: stored_len)]
        self._index: Dict[int, List[Tuple[int, int, int, int, int, int]]] = {}
        file_size = self._path.stat().st_size
        with open(self._path, "rb") as fh:
            _check_magic(fh, path)
            index = 0
            while True:
                if salvage:
                    chunk = _read_chunk_raw(fh, path, index)
                    if chunk is None:
                        break
                    tid, flags, n_events, raw_len, stored, offset = chunk
                    payload_offset = offset + _CHUNK_HEADER.size
                    stored_len = len(stored)
                    try:
                        _decode_stored(
                            stored, flags, n_events, raw_len, path, index, offset
                        )
                    except ValueError:
                        self.salvaged_chunks += 1
                        index += 1
                        continue
                else:
                    offset = fh.tell()
                    header = fh.read(_CHUNK_HEADER.size)
                    if not header:
                        break
                    if len(header) != _CHUNK_HEADER.size:
                        raise _corrupt(
                            path, index, offset,
                            f"truncated chunk header "
                            f"({len(header)}/{_CHUNK_HEADER.size} bytes)",
                        )
                    tid, flags, n_events, raw_len, stored_len = (
                        _CHUNK_HEADER.unpack(header)
                    )
                    payload_offset = fh.tell()
                    if payload_offset + stored_len > file_size:
                        raise _corrupt(
                            path, index, offset,
                            f"truncated chunk payload "
                            f"({file_size - payload_offset}/{stored_len} bytes)",
                        )
                    fh.seek(stored_len, 1)
                self._index.setdefault(tid, []).append(
                    (index, payload_offset, flags, n_events, raw_len, stored_len)
                )
                index += 1
        _note_salvaged(self.salvaged_chunks)

    def thread_ids(self) -> List[int]:
        """Sorted tids present in the trace."""
        return sorted(self._index)

    def iter_events(self, tid: int) -> Iterator[TraceEvent]:
        """Lazily yield thread ``tid``'s events, one chunk in memory at
        a time.  Fresh iterator per call — safe to replay repeatedly."""
        chunks = self._index.get(tid, [])
        if not chunks:
            return
        with open(self._path, "rb") as fh:
            for index, offset, flags, n_events, raw_len, stored_len in chunks:
                fh.seek(offset)
                stored = fh.read(stored_len)
                if len(stored) != stored_len:
                    raise _corrupt(
                        self._path, index, offset - _CHUNK_HEADER.size,
                        f"truncated chunk payload "
                        f"({len(stored)}/{stored_len} bytes)",
                    )
                for event in _decode_stored(
                    stored, flags, n_events, raw_len,
                    self._path, index, offset - _CHUNK_HEADER.size,
                ):
                    yield event

    def iter_chunks(self, tid: int) -> Iterator[TraceChunk]:
        """Yield thread ``tid``'s stored chunks as column arrays.

        The batch replay fast path: each chunk's packed records decode
        straight into numpy columns (one ``frombuffer``), skipping
        per-event :class:`TraceEvent` construction entirely.  Fresh
        file handle per call, like :meth:`iter_events`.
        """
        chunks = self._index.get(tid, [])
        if not chunks:
            return
        with open(self._path, "rb") as fh:
            for index, offset, flags, n_events, raw_len, stored_len in chunks:
                fh.seek(offset)
                stored = fh.read(stored_len)
                if len(stored) != stored_len:
                    raise _corrupt(
                        self._path, index, offset - _CHUNK_HEADER.size,
                        f"truncated chunk payload "
                        f"({len(stored)}/{stored_len} bytes)",
                    )
                yield _decode_stored_chunk(
                    stored, flags, n_events, raw_len,
                    self._path, index, offset - _CHUNK_HEADER.size, tid,
                )

    def events(self, tid: int) -> List[TraceEvent]:
        """Materialize thread ``tid``'s events (compatibility helper)."""
        return list(self.iter_events(tid))

    def __iter__(self) -> Iterator[TraceEvent]:
        for tid in self.thread_ids():
            yield from self.iter_events(tid)

    @property
    def total_events(self) -> int:
        """Total event count, known from chunk headers alone."""
        return sum(
            n for chunks in self._index.values() for _, _, _, n, _, _ in chunks
        )


def open_trace(
    path: Union[str, Path], salvage: bool = False
) -> Union[Trace, StreamingTrace]:
    """Open a trace file for replay with minimal memory.

    Binary traces come back as a :class:`StreamingTrace`; legacy
    JSON-lines traces (which have no chunk structure to stream) are
    loaded in memory.  Both satisfy the simulator's protocol.
    ``salvage=True`` validates and drops damaged binary chunks at open
    time instead of raising (see :class:`StreamingTrace`).
    """
    if _is_binary_trace(path):
        return StreamingTrace(path, salvage=salvage)
    return Trace._load_jsonl(path)


def _verify_walk(fh: BinaryIO, path: object) -> int:
    _check_magic(fh, path)
    events = 0
    index = 0
    while True:
        chunk = _read_chunk_raw(fh, path, index)
        if chunk is None:
            return events
        tid, flags, n_events, raw_len, stored, offset = chunk
        _decode_stored_chunk(
            stored, flags, n_events, raw_len, path, index, offset, tid
        )
        events += n_events
        index += 1


def verify_trace(path: Union[str, Path]) -> int:
    """Validate a binary trace end to end; returns its event count.

    Walks every chunk through the CRC check, decompression and the
    columnar record decode — exactly what replay would hit — and raises
    the usual ``truncated/corrupt trace`` :class:`ValueError` on the
    first damaged chunk.  The ingestion admission check of the
    ``repro serve`` daemon: cheap enough to run on every upload, strict
    enough that an accepted trace cannot later blow up a worker.
    """
    with open(path, "rb") as fh:
        return _verify_walk(fh, path)


def verify_trace_bytes(data: bytes, name: str = "<upload>") -> int:
    """:func:`verify_trace` for a trace still in memory (e.g. an HTTP
    request body, validated before it is spooled to disk)."""
    return _verify_walk(io.BytesIO(data), name)


# -- generic CRC-framed record streams ----------------------------------------
#
# The same per-record checksum discipline the binary trace chunks use,
# packaged for append-only logs: each record is a little-endian
# ``(length, crc32(payload))`` header followed by the payload bytes.  A
# writer that dies mid-append leaves a *torn tail* — a partial header,
# a short payload, or a payload whose CRC no longer matches — and the
# salvage read mode recognizes exactly that and cuts the stream at the
# last intact record instead of raising.  The ``repro serve``
# write-ahead submission journal is built on these frames.

_FRAME_HEADER = struct.Struct("<II")


def write_frame(fh: BinaryIO, payload: bytes) -> int:
    """Append one CRC-framed record to ``fh``; returns bytes written."""
    fh.write(
        _FRAME_HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF)
    )
    fh.write(payload)
    return _FRAME_HEADER.size + len(payload)


def read_frames(
    data: bytes, name: str = "<frames>", salvage: bool = False
) -> Tuple[List[bytes], int]:
    """Decode a CRC-framed record stream; returns ``(payloads, good_bytes)``.

    ``good_bytes`` is the offset just past the last intact record — the
    length a salvaging writer should truncate the file to.  With
    ``salvage=False`` any damage (torn header, short payload, CRC
    mismatch) raises ``ValueError``; with ``salvage=True`` the stream is
    cut at the damage point and whatever decoded cleanly before it is
    returned.  A record is either returned intact or not at all — a
    torn tail can lose the final record, never invent one.
    """
    payloads: List[bytes] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _FRAME_HEADER.size > total:
            if salvage:
                break
            raise ValueError(
                f"truncated/corrupt frame stream: {name}: torn header at "
                f"offset {offset} ({total - offset}/{_FRAME_HEADER.size} bytes)"
            )
        length, expected = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        end = start + length
        if end > total:
            if salvage:
                break
            raise ValueError(
                f"truncated/corrupt frame stream: {name}: torn payload at "
                f"offset {offset} ({total - start}/{length} bytes)"
            )
        payload = data[start:end]
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != expected:
            if salvage:
                break
            raise ValueError(
                f"truncated/corrupt frame stream: {name}: CRC mismatch at "
                f"offset {offset} (stored {expected:#010x}, "
                f"computed {actual:#010x})"
            )
        payloads.append(payload)
        offset = end
    return payloads, offset


def chunked_events(
    trace: object, tid: int, chunk_events: int = DEFAULT_CHUNK_EVENTS
) -> Iterator[List[TraceEvent]]:
    """Yield thread ``tid``'s events one chunk-sized list at a time.

    The simulator's refill protocol: instead of pulling events one
    ``next()`` at a time, it buffers a whole chunk's list and walks it
    by index.  In-memory :class:`Trace` objects hand out list slices
    (zero copy decode); :class:`StreamingTrace` decodes each stored
    chunk once; anything else satisfying ``iter_events`` is batched
    through a fallback.
    """
    if isinstance(trace, Trace):
        events = trace.per_thread.get(tid, [])
        for start in range(0, len(events), chunk_events):
            yield events[start : start + chunk_events]
        return
    if isinstance(trace, StreamingTrace):
        for chunk in trace.iter_chunks(tid):
            yield chunk.events()
        return
    batch: List[TraceEvent] = []
    for event in trace.iter_events(tid):
        batch.append(event)
        if len(batch) >= chunk_events:
            yield batch
            batch = []
    if batch:
        yield batch


class TraceRecorder(ExecutionMonitor):
    """Monitor that builds a :class:`Trace` while a program runs.

    Sync events are recorded *replayably*: each carries a descriptor
    naming the operation and its target (``"Acquire:L"``,
    ``"BarrierWait:B@3"``, ``"Spawn:2"``, ...) in ``sync_name``, and the
    global synchronization commit order — the scheduler's deterministic
    sync sequence — in the otherwise-unused ``address`` field (1-based;
    0 marks traces from older recorders).  Offline analysis rebuilds the
    exact happens-before relation from these without re-running the
    program.
    """

    def __init__(self) -> None:
        self.trace = Trace()
        self._gap: Dict[int, int] = {}
        self._sync_seq = 0
        #: Last child tid spawned per parent, captured by :meth:`on_spawn`
        #: so the Spawn commit right after it can name the child.
        self._spawned: Dict[int, int] = {}

    def _emit(self, tid: int, event: TraceEvent) -> None:
        self.trace.per_thread.setdefault(tid, []).append(event)

    def _take_gap(self, tid: int) -> int:
        gap = self._gap.get(tid, 0)
        self._gap[tid] = 0
        return gap

    def on_compute(self, tid: int, amount: int) -> None:
        """Accumulate non-memory instruction work for ``tid``."""
        self._gap[tid] = self._gap.get(tid, 0) + amount

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self.trace.per_thread.setdefault(tid, [])
        self._gap[tid] = 0

    def after_access(self, event: AccessEvent) -> None:
        tid = event.tid
        self._emit(
            tid,
            TraceEvent(
                WRITE if event.is_write else READ,
                event.address,
                event.size,
                event.private,
                gap=self._take_gap(tid),
            ),
        )

    def on_spawn(self, parent: int, child: int) -> None:
        self._spawned[parent] = child

    def _sync_descriptor(self, tid: int, op: object) -> str:
        """``"Kind:target"`` descriptor for a committed sync operation.

        Targets are the stable sync-object names the detector itself
        keys vector clocks by, so replay applies happens-before edges to
        exactly the objects the live run used.  The barrier generation
        is read *at commit*, before the trip increments it, so every
        arriver of one episode records the same ``B@gen`` key.
        """
        kind = type(op).__name__
        lock = getattr(op, "lock", None)
        cond = getattr(op, "cond", None)
        if kind == "_Reacquire":
            # Waking from a cond wait: reacquire the lock, ordered after
            # the signaller.  Replay must acquire both L and C.
            return f"CondWake:{lock.name}:{cond.name}"
        if kind == "CondWait":
            return f"CondWait:{cond.name}:{lock.name}"
        if lock is not None:
            return f"{kind}:{lock.name}"
        if cond is not None:
            return f"{kind}:{cond.name}"
        barrier = getattr(op, "barrier", None)
        if barrier is not None:
            return f"{kind}:{barrier.name}@{barrier.generation}"
        sem = getattr(op, "sem", None)
        if sem is not None:
            return f"{kind}:{sem.name}"
        if kind == "Spawn":
            return f"Spawn:{self._spawned.get(tid, -1)}"
        if kind == "Join":
            return f"Join:{getattr(op, 'tid', -1)}"
        return kind

    def on_sync_commit(self, tid: int, op: object) -> None:
        self._sync_seq += 1
        self._emit(
            tid,
            TraceEvent(
                SYNC,
                address=self._sync_seq,
                gap=self._take_gap(tid),
                sync_name=self._sync_descriptor(tid, op),
            ),
        )
