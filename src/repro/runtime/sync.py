"""Synchronization objects for the cooperative runtime.

These are thin identity-carrying objects; their blocking semantics are
implemented by the scheduler, which owns all waiting/waking.  Each object
has a stable ``name`` (used in error messages and as the vector-clock key
inside detectors) and deterministic state so that executions are
reproducible.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

__all__ = ["Lock", "Barrier", "Condition", "Semaphore"]

_ids = itertools.count()


class Lock:
    """A mutual-exclusion lock (Pthread mutex equivalent)."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else f"lock{next(_ids)}"
        #: tid of the current holder, or None.
        self.holder: Optional[int] = None

    @property
    def held(self) -> bool:
        """Whether some thread currently holds the lock."""
        return self.holder is not None

    def __repr__(self) -> str:
        return f"Lock({self.name!r}, holder={self.holder})"


class Barrier:
    """An N-party barrier (Pthread barrier equivalent).

    ``generation`` increments every time the barrier trips, so the
    detector can key each barrier episode's vector clock separately.
    """

    def __init__(self, parties: int, name: Optional[str] = None) -> None:
        if parties < 1:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        self.name = name if name is not None else f"barrier{next(_ids)}"
        self.generation = 0
        #: tids currently waiting (arrival order, deterministic under Kendo).
        self.waiting: List[int] = []

    def __repr__(self) -> str:
        return (
            f"Barrier({self.name!r}, parties={self.parties}, "
            f"waiting={len(self.waiting)}, gen={self.generation})"
        )


class Condition:
    """A condition variable used with an external :class:`Lock`."""

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name if name is not None else f"cond{next(_ids)}"
        #: tids blocked in CondWait, in arrival order.
        self.waiting: List[int] = []
        #: number of pending wakeups not yet consumed.
        self.signals = 0

    def __repr__(self) -> str:
        return f"Condition({self.name!r}, waiting={len(self.waiting)})"


class Semaphore:
    """A counting semaphore, built by workloads from a lock + condition.

    Provided for completeness of the Pthread-style API surface; the
    scheduler treats it natively (acquire decrements, release increments)
    so pipeline workloads can express bounded queues directly.
    """

    def __init__(self, value: int = 0, name: Optional[str] = None) -> None:
        if value < 0:
            raise ValueError("semaphore value must be non-negative")
        self.name = name if name is not None else f"sem{next(_ids)}"
        self.value = value

    def __repr__(self) -> str:
        return f"Semaphore({self.name!r}, value={self.value})"
