"""The operation vocabulary of the cooperative runtime.

Threads are written as Python generator functions that *yield* operations
to the scheduler; the scheduler completes each operation and sends its
result back into the generator:

    def worker(ctx, base):
        v = yield Read(base, 4)            # returns the loaded value
        yield Write(base, 4, v + 1)
        yield Acquire(lock)
        ...
        yield Release(lock)

Every yield point is an atomic step of the interleaved execution, exactly
like one instrumented instruction in the paper's compiler-instrumented
binaries.  Each operation carries a ``cost`` — its contribution to the
thread's deterministic (Kendo) counter and, for the timing models, its
nominal instruction count.

``private=True`` on memory operations marks stack-like accesses that a
compiler would *not* instrument (the paper's conservative estimate treats
all non-stack accesses as shared, Section 4.1); monitors such as the race
detector skip them, and the hardware simulator classifies them as
``private`` in the Figure-10 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

__all__ = [
    "Op",
    "Read",
    "Write",
    "AtomicRMW",
    "Acquire",
    "Release",
    "BarrierWait",
    "CondWait",
    "CondSignal",
    "CondBroadcast",
    "SemWait",
    "SemPost",
    "Spawn",
    "Join",
    "Compute",
    "Output",
]


@dataclass(frozen=True)
class Op:
    """Base class of every yieldable operation."""

    @property
    def cost(self) -> int:
        """Deterministic-counter / instruction-count contribution."""
        return 1

    @property
    def is_sync(self) -> bool:
        """Whether this operation is a synchronization point (Kendo-gated)."""
        return False


@dataclass(frozen=True)
class Read(Op):
    """Load ``size`` bytes at ``address``; yields back the integer value."""

    address: int
    size: int = 1
    private: bool = False
    weight: int = 1

    @property
    def cost(self) -> int:
        return self.weight


@dataclass(frozen=True)
class Write(Op):
    """Store ``value`` (little-endian) into ``size`` bytes at ``address``."""

    address: int
    size: int = 1
    value: int = 0
    private: bool = False
    weight: int = 1

    @property
    def cost(self) -> int:
        return self.weight


@dataclass(frozen=True)
class AtomicRMW(Op):
    """Atomic read-modify-write: ``new = fn(old)``; yields back ``old``.

    Atomic instructions are *not* synchronization under CLEAN's model —
    lock-free code built on them still races (the paper's canneal), so
    monitors see this as a read followed by a write with no
    happens-before edges.
    """

    address: int
    size: int
    fn: Callable[[int], int]

    @property
    def cost(self) -> int:
        return 2


@dataclass(frozen=True)
class Acquire(Op):
    """Acquire a :class:`~repro.runtime.sync.Lock` (blocking)."""

    lock: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class Release(Op):
    """Release a held :class:`~repro.runtime.sync.Lock`."""

    lock: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class BarrierWait(Op):
    """Wait at a :class:`~repro.runtime.sync.Barrier` until all parties arrive."""

    barrier: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class CondWait(Op):
    """Wait on a condition variable, releasing ``lock`` while waiting."""

    cond: Any
    lock: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class CondSignal(Op):
    """Wake one waiter of a condition variable."""

    cond: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class CondBroadcast(Op):
    """Wake every waiter of a condition variable."""

    cond: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class SemWait(Op):
    """Decrement a semaphore, blocking while its value is zero."""

    sem: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class SemPost(Op):
    """Increment a semaphore, waking one blocked waiter if any."""

    sem: Any

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class Spawn(Op):
    """Start a new thread running ``fn(ctx, *args)``; yields back its tid."""

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = field(default_factory=tuple)

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class Join(Op):
    """Block until thread ``tid`` finishes; yields back its return value."""

    tid: int

    @property
    def is_sync(self) -> bool:
        return True


@dataclass(frozen=True)
class Compute(Op):
    """Local computation worth ``amount`` instructions (no memory traffic)."""

    amount: int = 1

    @property
    def cost(self) -> int:
        return self.amount


@dataclass(frozen=True)
class Output(Op):
    """Append ``value`` to the thread's output stream (determinism oracle)."""

    value: Any = None
