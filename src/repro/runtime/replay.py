"""Schedule recording and exact replay.

The paper's Section 3.1.2 sketches a debugging workflow: when a CLEAN
execution stops with a race exception, re-run the program with a
*precise* detector alongside to enumerate every race systematically.
For that to be useful the re-run must reproduce the interleaving that
raced — which is exactly what recording the scheduler's choices enables.

:class:`RecordingPolicy` wraps any policy and logs the index it picked
among the schedulable candidates at every step; :class:`ReplayPolicy`
replays such a log bit-for-bit.  Because the runtime is deterministic
given the choice sequence, a replayed run reproduces the original
execution exactly — same interleaving, same race, same everything — no
matter which monitors are attached (monitors observe, they never
schedule).

    recording = RecordingPolicy(RandomPolicy(1234))
    first = program.run(policy=recording, monitors=[CleanMonitor(...)])
    if first.race is not None:
        replay = ReplayPolicy(recording.log)
        oracle = FastTrackDetector(record_only=True, ...)
        program2.run(policy=replay, monitors=[CleanMonitor(detector=oracle)])
        print(oracle.race_kinds())   # ALL races of that interleaving

Logs are JSON-serializable (a list of small integers), so a failing
schedule can be stored next to a bug report.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from .scheduler import RoundRobinPolicy, SchedulingPolicy

__all__ = ["RecordingPolicy", "ReplayPolicy"]


class RecordingPolicy(SchedulingPolicy):
    """Delegates to ``inner`` while logging every choice it makes."""

    def __init__(self, inner: Optional[SchedulingPolicy] = None) -> None:
        self.inner = inner if inner is not None else RoundRobinPolicy()
        #: the replayable log: chosen candidate *index* per step.
        self.log: List[int] = []

    def pick(self, candidates: Sequence[int], step: int) -> int:
        choice = self.inner.pick(candidates, step)
        self.log.append(candidates.index(choice))
        return choice

    def save(self, path: Union[str, Path]) -> None:
        """Persist the log as JSON."""
        Path(path).write_text(json.dumps(self.log))


class ReplayPolicy(SchedulingPolicy):
    """Replays a :class:`RecordingPolicy` log exactly.

    The candidate sets of a replayed run match the original step for
    step (the runtime is deterministic given the choices), so indices
    resolve to the same threads.  A divergence — a log index out of
    range, or the log running out while threads still need scheduling —
    means the replayed program is not the recorded one, and raises
    :class:`ReplayDivergence` rather than silently misscheduling.
    """

    def __init__(
        self,
        log: Sequence[int],
        fallback: Optional[SchedulingPolicy] = None,
    ) -> None:
        """``fallback`` takes over once the log is exhausted.

        This is deliberate for the Section-3.1.2 workflow: a log recorded
        from a run that CLEAN *stopped* covers only the racy prefix; a
        replay with a record-only precise detector needs to continue past
        the stopping point, and any policy will do from there (the races
        of interest already happened inside the replayed prefix).
        Without a fallback, running off the log raises.
        """
        self.log = list(log)
        self.fallback = fallback
        self._step = 0

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        fallback: Optional[SchedulingPolicy] = None,
    ) -> "ReplayPolicy":
        """Load a log persisted by :meth:`RecordingPolicy.save`."""
        return cls(json.loads(Path(path).read_text()), fallback=fallback)

    def pick(self, candidates: Sequence[int], step: int) -> int:
        if self._step >= len(self.log):
            if self.fallback is not None:
                return self.fallback.pick(candidates, step)
            raise ReplayDivergence(
                f"schedule log exhausted at step {self._step}: the replayed "
                "program made more scheduling decisions than the recording "
                "(pass a fallback policy to continue past a stopped run)"
            )
        index = self.log[self._step]
        self._step += 1
        # A recording only ever stores indices in [0, len(candidates));
        # anything else — including a *negative* index from a corrupt or
        # hand-edited log, which Python would otherwise silently resolve
        # from the end of the candidate list — is a divergence.
        if not 0 <= index < len(candidates):
            raise ReplayDivergence(
                f"log index {index} out of range for {len(candidates)} "
                f"candidates at step {self._step - 1}: the replayed program "
                "diverged from the recording (or the log is corrupt)"
            )
        return candidates[index]


class ReplayDivergence(RuntimeError):
    """The program being replayed is not the one that was recorded."""
