"""Byte-addressable shared memory for the cooperative runtime.

The runtime gives every program one flat, sparse, byte-addressable
address space — the moral equivalent of the process address space the
paper's instrumented Pthread programs run in.  A simple deterministic
bump allocator hands out disjoint regions so workloads and examples can
lay out their data without clashing.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["SharedMemory"]


class SharedMemory:
    """Sparse byte-addressable memory with little-endian integer helpers.

    Access accounting: ``loads`` and ``stores`` count **operations**,
    not bytes — one call to any accessor is exactly one load or one
    store, regardless of its width.  A 4-byte ``load_int`` therefore
    counts once, matching how the runtime issues one ``Read``/``Write``
    op per access and how the paper's instrumentation counts one check
    per instrumented instruction; code that touches N bytes through the
    byte helpers performs (and counts) N separate operations.
    """

    def __init__(self, alloc_base: int = 0x1000) -> None:
        self._bytes: Dict[int, int] = {}
        self._next_alloc = alloc_base
        self.loads = 0
        self.stores = 0

    # -- allocation ---------------------------------------------------------

    def alloc(self, size: int, align: int = 8) -> int:
        """Reserve ``size`` bytes; returns the base address.

        Allocation is a deterministic bump pointer: the same sequence of
        ``alloc`` calls always yields the same addresses, which keeps
        address-dependent behaviour (epoch-line sharing, cache indexing)
        reproducible.
        """
        if size < 1:
            raise ValueError("allocation size must be positive")
        if align < 1 or align & (align - 1):
            raise ValueError("alignment must be a positive power of two")
        base = (self._next_alloc + align - 1) & ~(align - 1)
        self._next_alloc = base + size
        return base

    # -- byte access ----------------------------------------------------------

    def load_byte(self, address: int) -> int:
        """The byte at ``address`` (0 if never written)."""
        self.loads += 1
        return self._bytes.get(address, 0)

    def store_byte(self, address: int, value: int) -> None:
        """Set the byte at ``address`` to ``value & 0xFF``."""
        self.stores += 1
        self._bytes[address] = value & 0xFF

    # -- integer access (little-endian) ----------------------------------------

    def load_int(self, address: int, size: int) -> int:
        """Load a ``size``-byte little-endian unsigned integer.

        Counts as **one** load (per-operation accounting, see the class
        docstring), not ``size`` loads.
        """
        self.loads += 1
        get = self._bytes.get
        value = 0
        for i in range(size):
            value |= get(address + i, 0) << (8 * i)
        return value

    def store_int(self, address: int, size: int, value: int) -> None:
        """Store a ``size``-byte little-endian unsigned integer.

        Counts as **one** store (per-operation accounting, see the
        class docstring), not ``size`` stores.
        """
        if value < 0:
            value &= (1 << (8 * size)) - 1
        self.stores += 1
        for i in range(size):
            self._bytes[address + i] = (value >> (8 * i)) & 0xFF

    # -- SFR write buffering (recovery mode) --------------------------------------

    def load_int_overlay(
        self, address: int, size: int, overlay: Mapping[int, int]
    ) -> int:
        """Like :meth:`load_int`, but bytes present in ``overlay`` win.

        The overlay is a thread's open-SFR write buffer: the thread reads
        its own unpublished stores, everyone else reads the committed
        state.  Counts as one load, same as :meth:`load_int`.
        """
        self.loads += 1
        get = self._bytes.get
        value = 0
        for i in range(size):
            a = address + i
            byte = overlay.get(a)
            if byte is None:
                byte = get(a, 0)
            value |= byte << (8 * i)
        return value

    def apply_patch(self, patch: Mapping[int, int]) -> None:
        """Publish a buffered write set at a sync boundary.

        Bulk application of already-counted stores — does not touch the
        ``stores`` counter (each buffered store was counted when issued).
        """
        self._bytes.update(patch)

    # -- inspection --------------------------------------------------------------

    def snapshot(self) -> Dict[int, int]:
        """A copy of every explicitly-written byte (address -> value)."""
        return dict(self._bytes)

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate ``(address, byte)`` pairs of explicitly-written bytes."""
        return self._bytes.items()

    @property
    def footprint(self) -> int:
        """Number of bytes ever written."""
        return len(self._bytes)
