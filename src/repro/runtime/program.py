"""High-level entry point: build and run a multithreaded program.

:class:`Program` wraps a root thread function and runs it under a chosen
scheduling policy and monitor stack.  This is the API the examples and
workloads use:

    from repro.runtime import Program, Read, Write, Spawn, Join

    def worker(ctx, base, i):
        v = yield Read(base + 8 * i, 8)
        yield Write(base + 8 * i, 8, v + 1)

    def main(ctx):
        base = ctx.alloc(64)
        kids = []
        for i in range(8):
            kids.append((yield Spawn(worker, (base, i))))
        for k in kids:
            yield Join(k)

    result = Program(main).run()
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence, Tuple

from .memory import SharedMemory
from .scheduler import (
    ExecutionMonitor,
    ExecutionResult,
    Scheduler,
    SchedulingPolicy,
)

__all__ = ["Program"]


class Program:
    """A runnable multithreaded program rooted at one thread function."""

    def __init__(self, main: Callable[..., Any], *args: Any) -> None:
        self.main = main
        self.args: Tuple[Any, ...] = args

    def run(
        self,
        policy: Optional[SchedulingPolicy] = None,
        monitors: Optional[Sequence[ExecutionMonitor]] = None,
        memory: Optional[SharedMemory] = None,
        max_threads: int = 64,
        max_steps: int = 50_000_000,
        counter_cost: Optional[Callable] = None,
        raise_on_race: bool = False,
        fused: bool = True,
        recovery: Optional[object] = None,
        timeline: Optional[ExecutionMonitor] = None,
    ) -> ExecutionResult:
        """Execute the program once and return its result.

        Each call builds a fresh scheduler and memory, so repeated runs
        are independent — run the same program under different policies
        or seeds to explore interleavings.  ``fused=False`` selects the
        pre-refactor call-every-monitor dispatch (equivalence testing
        and benchmarking only).  ``recovery`` — a mode string or
        :class:`~repro.runtime.recovery.RecoveryPolicy` — enables SFR
        write buffering and race-exception recovery.  ``timeline`` — a
        :class:`~repro.obs.timeline.TimelineRecorder` — is appended to
        the monitor stack so the run's execution timeline lands on it.
        """
        if timeline is not None:
            monitors = list(monitors or []) + [timeline]
        scheduler = Scheduler(
            memory=memory,
            monitors=monitors,
            policy=policy,
            max_threads=max_threads,
            max_steps=max_steps,
            counter_cost=counter_cost,
            fused=fused,
            recovery=recovery,
        )
        scheduler.start(self.main, *self.args)
        return scheduler.run(raise_on_race=raise_on_race)
