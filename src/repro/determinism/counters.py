"""Deterministic-counter models: how thread progress is measured.

The paper's software implementation advances deterministic counters by
compiler instrumentation, counting only basic blocks whose instruction
count exceeds a cutoff (Section 6.2.1).  This keeps instrumentation
overhead down but makes the counters an *imprecise* reflection of real
progress — threads doing much fine-grained work appear slower than they
are, which inflates the waiting of deterministic synchronization (the
paper names dedup, ferret and vips as the benchmarks this hurts).

A counter model is a callable usable as the scheduler's ``counter_cost``;
it maps each completed operation to its counter contribution.
"""

from __future__ import annotations

from ..runtime.ops import Compute, Op

__all__ = ["PreciseCounter", "InstrumentedCounter"]


class PreciseCounter:
    """Every operation contributes its full cost (hardware counters)."""

    def __call__(self, op: object) -> int:
        return getattr(op, "cost", 0)


class InstrumentedCounter:
    """Basic-block instrumentation with a cutoff (software counters).

    ``Compute`` operations model basic blocks; blocks shorter than
    ``cutoff`` are not instrumented and contribute nothing, making the
    counter an under-estimate of real progress.  Memory and sync
    operations always contribute (the instrumentation the detector
    inserts doubles as a counter update).

    ``skipped`` accumulates the uncounted work, which the software cost
    model turns into extra deterministic-wait time.
    """

    def __init__(self, cutoff: int = 8) -> None:
        if cutoff < 0:
            raise ValueError("cutoff must be non-negative")
        self.cutoff = cutoff
        self.skipped = 0

    def __call__(self, op: object) -> int:
        if isinstance(op, Compute) and op.amount < self.cutoff:
            self.skipped += op.amount
            return 0
        return getattr(op, "cost", 0)
