"""Kendo-style deterministic synchronization (paper Sections 2.4, 3.3).

Kendo orders synchronization operations by *deterministic logical
clocks*: each thread owns a counter advanced by its own execution
(instructions retired, or instrumented basic blocks), and a thread may
perform a synchronization operation only when its counter — with the
thread id breaking ties — is the minimum among all running threads.

In this runtime the counters live in the scheduler (every completed
operation charges its cost via the scheduler's ``counter_cost`` model),
and :class:`KendoGate` is the monitor that enforces the minimum-turn
rule through the :meth:`may_sync` veto.  The waiting-with-increment
behaviour of Kendo's lock acquisition (a thread whose turn it is but
whose lock is unavailable bumps its own counter and cedes the turn) is
implemented by the scheduler's pump, which only ever advances the
minimum thread's counter — a pure function of counter state, so the
committed synchronization order is schedule-independent.
"""

from __future__ import annotations

from typing import Optional

from ..runtime.ops import Op
from ..runtime.scheduler import ExecutionMonitor, Scheduler

__all__ = ["KendoGate"]


class KendoGate(ExecutionMonitor):
    """Monitor enforcing Kendo's minimum-turn rule for sync operations."""

    def __init__(self) -> None:
        self._scheduler: Optional[Scheduler] = None
        #: number of sync operations this gate admitted.
        self.admitted = 0
        #: number of veto decisions (a thread had to wait for its turn).
        self.vetoed = 0
        self._materialize = False

    def attach(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        # Under the scheduler's pre-refactor reference dispatch
        # (``fused=False``) also restore this gate's original behaviour
        # of materializing the counter dict per decision, so hot-path
        # benchmarks measure the old stack faithfully.
        self._materialize = not getattr(scheduler, "fused", True)

    def may_sync(self, tid: int, op: Op) -> bool:
        """True iff ``tid`` holds the deterministic turn.

        The turn belongs to the live thread with the lexicographically
        smallest ``(counter, tid)`` pair — Kendo's rule with thread id
        as the tie-breaker.
        """
        assert self._scheduler is not None, "gate used before attach()"
        if self._materialize:
            counters = self._scheduler.live_counters()
            mine = (counters[tid], tid)
            for other_tid, counter in counters.items():
                if other_tid != tid and (counter, other_tid) < mine:
                    self.vetoed += 1
                    return False
            self.admitted += 1
            return True
        # Hot path: the gate is consulted for every parked sync op on
        # every scheduling step, so read the counters straight off the
        # thread records instead of materializing a dict.
        threads = self._scheduler._threads
        mine = (threads[tid].det_counter, tid)
        for other_tid, record in threads.items():
            if other_tid != tid and (record.det_counter, other_tid) < mine:
                self.vetoed += 1
                return False
        self.admitted += 1
        return True
