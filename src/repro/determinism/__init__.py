"""Deterministic synchronization: Kendo logical clocks and counter models."""

from .counters import InstrumentedCounter, PreciseCounter
from .kendo import KendoGate

__all__ = ["KendoGate", "PreciseCounter", "InstrumentedCounter"]
