"""Fault injection: break the system on purpose, prove it degrades well.

The recovery machinery of this repo — race-exception recovery
(:mod:`repro.runtime.recovery`), trace salvage
(:mod:`repro.runtime.trace`), checkpoint quarantine
(:mod:`repro.exec.checkpoint`) and the runner's watchdog/retry logic
(:mod:`repro.exec.runner`) — is only trustworthy if it is exercised
against real damage.  This module supplies the damage:

* **artifact faults** mutate on-disk artifacts —

  - ``trace-bitflip`` flips one byte inside a binary trace chunk's
    stored payload, which the per-chunk CRC32 must catch;
  - ``checkpoint-truncate`` cuts a checkpoint record mid-JSON, which
    the store must quarantine;

* **job faults** ride into worker processes through the ``inject_fault``
  job-config key (see :func:`repro.exec.job.run_job`) —

  - ``worker-crash`` hard-exits the worker (``os._exit``) before it
    reports a result, which the runner must classify as a crash and
    retry;
  - ``worker-hang`` wedges the worker: it stops heartbeating and
    sleeps, which the runner's watchdog must detect and terminate;
  - ``monitor-raise`` arms a :class:`FaultyMonitor` that raises from an
    execution-monitor hook mid-run, which must surface as an ordinary
    (retryable) job failure.

* **service faults** target a whole ``repro serve`` daemon —

  - ``daemon-kill`` SIGKILLs the daemon in the middle of a submission
    burst and restarts it on the same spool; the write-ahead journal
    must carry every acknowledged submission across the crash to the
    exact verdict an uninterrupted run produces
    (:func:`run_daemon_kill`).

Every fault is driven by a seeded :class:`FaultPlan`, so a chaos run is
exactly reproducible: same seed, same faults, same targets.  Job faults
fire **once** per scar file — the first attempt hits the fault, the
retry finds the scar and runs clean — modelling transient failures, the
kind retry is for.

:func:`run_chaos` is the end-to-end harness behind ``python -m repro
chaos``: it injects the requested faults, runs the suite twice, and
asserts the recovery invariants (no hang, every fault detected and
counted, surviving results deterministic).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .runtime.scheduler import ExecutionMonitor

__all__ = [
    "ARTIFACT_FAULTS",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultPlan",
    "FaultyMonitor",
    "JOB_FAULTS",
    "SERVICE_FAULTS",
    "chaos_job",
    "deliver",
    "inject_checkpoint_truncate",
    "inject_trace_bitflip",
    "is_wedged",
    "run_chaos",
    "run_daemon_kill",
    "wedge",
]

#: Faults applied to on-disk artifacts before anything runs.
ARTIFACT_FAULTS = ("trace-bitflip", "checkpoint-truncate")
#: Faults delivered into job attempts via the ``inject_fault`` config key.
JOB_FAULTS = ("worker-crash", "worker-hang", "monitor-raise")
#: Faults delivered to a whole ``repro serve`` daemon process.
SERVICE_FAULTS = ("daemon-kill",)
#: Every injectable fault kind.
FAULT_KINDS = ARTIFACT_FAULTS + JOB_FAULTS + SERVICE_FAULTS


class FaultInjected(RuntimeError):
    """Raised (or reported) by an injected fault firing."""


# -- the wedged flag ---------------------------------------------------------

_WEDGED = False


def wedge() -> None:
    """Mark this process as wedged: its heartbeat thread goes silent.

    Used by the ``worker-hang`` fault so the hung worker looks *dead*
    to the runner's watchdog, not merely slow.
    """
    global _WEDGED
    _WEDGED = True


def is_wedged() -> bool:
    """Whether this process has been wedged by fault injection."""
    return _WEDGED


def _count_fault(kind: str) -> None:
    """Bump the ambient ``faults.<kind>`` counter, if a registry is set."""
    from .obs.context import current_registry

    registry = current_registry()
    if registry is not None:
        registry.inc(f"faults.{kind.replace('-', '_')}")


# -- the seeded plan ---------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """Which faults to inject, reproducibly.

    All randomness used by injection (which chunk to flip, which job
    gets which fault) derives from :meth:`rng` — a pure function of the
    plan seed and a caller-chosen key — so two chaos runs with the same
    seed damage exactly the same things.
    """

    seed: int
    kinds: Tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {unknown}; choose from {list(FAULT_KINDS)}"
            )

    @classmethod
    def parse(cls, seed: int, spec: Union[str, Iterable[str]]) -> "FaultPlan":
        """Build a plan from ``"a,b,c"`` or an iterable of kinds."""
        if isinstance(spec, str):
            kinds = tuple(k.strip() for k in spec.split(",") if k.strip())
        else:
            kinds = tuple(spec)
        return cls(seed=seed, kinds=kinds)

    def rng(self, *key: object) -> random.Random:
        return random.Random(f"{self.seed}:" + ":".join(str(k) for k in key))

    @property
    def artifact_kinds(self) -> List[str]:
        return [k for k in self.kinds if k in ARTIFACT_FAULTS]

    @property
    def job_kinds(self) -> List[str]:
        return [k for k in self.kinds if k in JOB_FAULTS]

    @property
    def service_kinds(self) -> List[str]:
        return [k for k in self.kinds if k in SERVICE_FAULTS]

    def assign_jobs(self, labels: Sequence[str]) -> Dict[str, str]:
        """Deterministically map each requested job fault to one label."""
        targets: Dict[str, str] = {}
        pool = sorted(labels)
        if not pool:
            return targets
        for kind in self.job_kinds:
            choice = self.rng("assign", kind).choice(
                [lb for lb in pool if lb not in targets] or pool
            )
            targets[choice] = kind
        return targets


# -- artifact injectors ------------------------------------------------------


def inject_trace_bitflip(
    path: Union[str, Path], rng: random.Random
) -> Tuple[int, int]:
    """Flip one byte inside a random chunk's stored payload.

    Returns ``(chunk_index, file_offset)`` of the flipped byte.  The
    flip lands strictly inside a chunk's *stored* region — never in the
    magic or a chunk header — so the damage is exactly the kind the
    per-chunk CRC exists to catch and salvage can skip.
    """
    from .runtime.trace import TRACE_MAGIC, _CHUNK_HEADER

    data = bytearray(Path(path).read_bytes())
    offset = len(TRACE_MAGIC) + 1
    chunks: List[Tuple[int, int]] = []  # (stored start, stored len)
    while offset < len(data):
        _tid, _flags, _n, _raw, stored_len = _CHUNK_HEADER.unpack_from(
            data, offset
        )
        start = offset + _CHUNK_HEADER.size
        if stored_len:
            chunks.append((start, stored_len))
        offset = start + stored_len
    if not chunks:
        raise ValueError(f"{path}: no non-empty chunks to corrupt")
    index = rng.randrange(len(chunks))
    start, stored_len = chunks[index]
    at = start + rng.randrange(stored_len)
    data[at] ^= 1 << rng.randrange(8)
    Path(path).write_bytes(bytes(data))
    _count_fault("trace-bitflip")
    return index, at


def inject_checkpoint_truncate(
    path: Union[str, Path], rng: random.Random
) -> int:
    """Cut a checkpoint record mid-JSON (a torn write). Returns new size."""
    path = Path(path)
    size = path.stat().st_size
    if size < 2:
        raise ValueError(f"{path}: too small to truncate meaningfully")
    keep = rng.randrange(1, max(2, size // 2))
    with open(path, "r+b") as fh:
        fh.truncate(keep)
    _count_fault("checkpoint-truncate")
    return keep


# -- job-fault delivery ------------------------------------------------------


def _scarred(spec: Dict[str, Any]) -> bool:
    """Check-and-set the fault's one-shot scar. True = already fired."""
    scar = spec.get("scar")
    if not scar:
        return False
    scar_path = Path(scar)
    if scar_path.exists():
        return True
    scar_path.parent.mkdir(parents=True, exist_ok=True)
    scar_path.touch()
    return False


def _in_main_process() -> bool:
    return multiprocessing.current_process().name == "MainProcess"


def deliver(
    spec: Dict[str, Any], label: str = ""
) -> Optional[Dict[str, Any]]:
    """Fire a job fault at the start of a job attempt.

    Called by :func:`repro.exec.job.run_job` with the job's popped
    ``inject_fault`` config value.  ``worker-crash`` and ``worker-hang``
    are process-level faults handled right here (they do not return
    when they fire); ``monitor-raise`` is returned to the caller so a
    fault-aware job function (:func:`chaos_job`) can arm the
    :class:`FaultyMonitor` inside the run.  Returns ``None`` when the
    fault is spent (scar already present) — the attempt runs clean.

    When the runner has degraded to in-process execution, crash and
    hang faults raise :class:`FaultInjected` instead of killing or
    stalling the main process: the sweep must never die of its own
    fault injection.
    """
    kind = spec.get("kind")
    if kind not in JOB_FAULTS:
        raise ValueError(f"unknown job fault kind {kind!r}")
    if _scarred(spec):
        return None
    _count_fault(kind)
    if kind == "monitor-raise":
        return spec
    if _in_main_process():
        raise FaultInjected(f"injected {kind} in {label or 'job'} (in-process)")
    if kind == "worker-crash":
        os._exit(int(spec.get("exit_code", 13)))
    # worker-hang: go silent, then sleep well past any watchdog window.
    wedge()
    time.sleep(float(spec.get("hang_s", 30.0)))
    os._exit(14)


class FaultyMonitor(ExecutionMonitor):
    """Monitor that raises :class:`FaultInjected` after N shared accesses.

    Models a buggy or failing instrumentation layer: the exception
    escapes from a monitor hook in the middle of an execution and must
    surface as an ordinary job failure, not a hang or a corrupted
    result.
    """

    def __init__(self, after: int = 10) -> None:
        self.after = int(after)
        self.seen = 0

    def after_access(self, event) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise FaultInjected(
                f"injected monitor failure after {self.seen} accesses"
            )


# -- the chaos job -----------------------------------------------------------


def chaos_job(
    benchmark: str,
    scale: str = "test",
    seed: int = 0,
    racy: bool = False,
    recovery: Optional[str] = "rollback-retry",
    inject_fault: Optional[Dict[str, Any]] = None,
    forensics: bool = False,
) -> Dict[str, Any]:
    """One chaos workload: a benchmark under CLEAN with recovery on.

    Returns a JSON-able summary whose ``fingerprint`` digests the full
    observable outcome — the determinism invariant compares these
    across chaos runs.  ``inject_fault`` only ever arrives here as a
    live ``monitor-raise`` spec (crash/hang never reach the job
    function; spent faults arrive as ``None``).

    ``forensics=True`` records the run's execution timeline and ships
    it in the value under ``timeline``.  Chaos runners disable the
    telemetry pipeline (``job_telemetry=False``), so the timeline must
    ride in the job value itself; being logical-clock data it is
    deterministic and therefore *strengthens* the determinism compare
    rather than breaking it.
    """
    import hashlib

    from .clean import run_clean
    from .obs.timeline import TimelineRecorder
    from .workloads import build_program
    from .workloads.suite import get_benchmark

    extra: Optional[List[ExecutionMonitor]] = None
    if inject_fault is not None:
        extra = [FaultyMonitor(after=int(inject_fault.get("after", 10)))]
    recorder = TimelineRecorder(label=benchmark) if forensics else None
    program = build_program(
        get_benchmark(benchmark), scale=scale, racy=racy, seed=seed
    )
    result = run_clean(
        program, extra_monitors=extra, recovery=recovery, timeline=recorder
    )
    digest = hashlib.sha256(repr(result.fingerprint()).encode()).hexdigest()
    value = {
        "benchmark": benchmark,
        "racy": bool(racy),
        "fingerprint": digest,
        "race_kind": result.race.kind if result.race is not None else None,
        "recovery": (
            result.recovery.to_payload() if result.recovery is not None else None
        ),
        "steps": result.steps,
    }
    if recorder is not None:
        value["timeline"] = recorder.to_payload()
    return value


# -- the end-to-end harness --------------------------------------------------

#: The chaos suite: a small deterministic mix of race-free and racy
#: benchmark variants, all at the cheap "test" scale.
CHAOS_SUITE: Tuple[Tuple[str, bool], ...] = (
    ("lu_ncb", False),
    ("ocean_cp", False),
    ("barnes", True),
    ("dedup", True),
)


def _chaos_jobs(
    plan: FaultPlan,
    scar_root: Path,
    targets: Dict[str, str],
    forensics: bool = False,
) -> List[Any]:
    from .exec.job import Job

    jobs = []
    for name, racy in CHAOS_SUITE:
        label = f"{name}@{'racy' if racy else 'clean'}"
        config: Dict[str, Any] = {
            "benchmark": name,
            "scale": "test",
            "seed": plan.seed,
            "racy": racy,
            "recovery": "rollback-retry",
        }
        if forensics:
            config["forensics"] = True
        kind = targets.get(label)
        if kind is not None:
            config["inject_fault"] = {
                "kind": kind,
                "scar": str(scar_root / f"{label}.{kind}.scar"),
            }
        jobs.append(Job(fn="repro.faults:chaos_job", config=config, name=label))
    return jobs


def run_chaos(
    seed: int,
    faults: Union[str, Iterable[str]],
    workdir: Union[str, Path],
    workers: int = 2,
    watchdog: float = 3.0,
    registry: Any = None,
    forensics_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Inject ``faults`` and verify every recovery invariant end to end.

    Returns the chaos report dict; ``report["ok"]`` decides the CLI
    exit code.  Invariants checked:

    * every requested fault actually fired and was *detected* by the
      layer responsible for it (CRC/salvage, quarantine, crash
      classification, watchdog, monitor-failure propagation);
    * the run finished — a hung worker was reaped, not waited on;
    * surviving results are deterministic: two full chaos passes with
      the same seed produce identical per-job outcomes.

    ``forensics_dir`` makes every chaos job record its execution
    timeline; a full forensics bundle (Chrome trace, HB graph, HTML
    report — see :func:`repro.obs.forensics.write_forensics`) is
    written there per job, and the report's ``forensics`` map links
    the artifact paths.  The timelines also participate in the
    determinism compare, since they are logical-clock data.
    """
    from .exec.checkpoint import CheckpointStore
    from .exec.job import Job
    from .exec.runner import JobRunner
    from .obs.context import telemetry_scope
    from .runtime.trace import Trace, TraceRecorder

    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    plan = FaultPlan.parse(seed, faults)
    checks: List[Dict[str, Any]] = []

    def check(kind: str, detected: bool, recovered: bool, **details: Any) -> None:
        checks.append(
            {
                "fault": kind,
                "detected": bool(detected),
                "recovered": bool(recovered),
                **details,
            }
        )

    scope = (
        telemetry_scope(registry=registry)
        if registry is not None
        else _null_scope()
    )
    with scope:
        # -- artifact faults ------------------------------------------------
        if "trace-bitflip" in plan.kinds:
            trace_path = workdir / "chaos.clntrace"
            _record_chaos_trace(trace_path, plan.seed)
            index, at = inject_trace_bitflip(
                trace_path, plan.rng("trace-bitflip")
            )
            strict_error: Optional[str] = None
            try:
                Trace.load(trace_path)
            except ValueError as exc:
                strict_error = str(exc)
            salvaged = Trace.load(trace_path, salvage=True)
            check(
                "trace-bitflip",
                detected=strict_error is not None
                and "truncated/corrupt trace" in (strict_error or ""),
                recovered=salvaged.salvaged_chunks == 1
                and bool(salvaged.per_thread),
                chunk=index,
                offset=at,
                error=strict_error,
                salvaged_chunks=salvaged.salvaged_chunks,
            )

        if "checkpoint-truncate" in plan.kinds:
            store = CheckpointStore(workdir / "cache")
            victim = Job(
                fn="repro.faults:chaos_job",
                config={"benchmark": "lu_ncb", "scale": "test", "chaos": True},
            )
            store.store(victim, {"value": 1})
            inject_checkpoint_truncate(
                store.path(victim.job_id), plan.rng("checkpoint-truncate")
            )
            missed = store.load(victim)
            check(
                "checkpoint-truncate",
                detected=store.corrupt_records == 1,
                recovered=missed is None and store.quarantined() == 1,
                quarantined=store.quarantined(),
            )

        # -- service faults -------------------------------------------------
        if "daemon-kill" in plan.kinds:
            dk = run_daemon_kill(workdir / "daemon-kill", seed=plan.seed)
            check(
                "daemon-kill",
                detected=dk["accepted"] > 0,
                recovered=dk["ok"],
                submitted=dk["submitted"],
                accepted=dk["accepted"],
                matched=dk["matched"],
                lost=len(dk["lost"]),
                failed=len(dk["failed"]),
                mismatched=len(dk["mismatched"]),
            )

        # -- job faults, two identical passes (the second pass re-fires
        # every fault from a fresh scar directory: surviving results must
        # match exactly, fault or no fault)
        passes: List[List[Any]] = []
        stats: List[Dict[str, Any]] = []
        labels = [f"{n}@{'racy' if r else 'clean'}" for n, r in CHAOS_SUITE]
        targets = plan.assign_jobs(labels)
        for run_index in (1, 2):
            # Job faults fire inside worker processes, out of reach of
            # this registry — count each injection here in the parent.
            for kind in targets.values():
                _count_fault(kind)
            scars = workdir / f"scars{run_index}"
            runner = JobRunner(
                workers=workers,
                retries=2,
                backoff=0.05,
                backoff_jitter=0.5,
                watchdog=watchdog,
                job_telemetry=False,
            )
            results = runner.run(
                _chaos_jobs(
                    plan, scars, targets, forensics=forensics_dir is not None
                )
            )
            passes.append(results)
            stats.append(dict(runner.stats))

        results1, results2 = passes
        by_label = {r.job.name: r for r in results1}
        for label, kind in targets.items():
            r = by_label[label]
            # A transient fault is detected iff the first attempt failed
            # (crash/hang/monitor error) and recovered iff the retry won.
            check(
                kind,
                detected=r.attempts >= 2,
                recovered=r.ok,
                target=label,
                attempts=r.attempts,
                status=r.status,
            )
            if kind == "worker-hang" and not stats[0].get("degraded"):
                checks[-1]["detected"] = (
                    checks[-1]["detected"] and stats[0].get("stuck", 0) >= 1
                )

        deterministic = [
            (r1.job.name, r1.status, r1.value) for r1 in results1
        ] == [(r2.job.name, r2.status, r2.value) for r2 in results2]

        # -- forensics bundles (after the determinism compare, which the
        # timelines participate in; stripped from the report results so
        # chaos_report.json stays small)
        forensics_artifacts: Dict[str, Dict[str, str]] = {}
        if forensics_dir is not None:
            from .obs.forensics import write_forensics

            out = Path(forensics_dir)
            for r in results1:
                timeline = (r.value or {}).get("timeline") if r.ok else None
                if timeline is None:
                    continue
                basename = r.job.name.replace("@", "_")
                forensics_artifacts[r.job.name] = write_forensics(
                    out, basename, timeline
                )
            for results in passes:
                for r in results:
                    if r.ok and isinstance(r.value, dict):
                        r.value.pop("timeline", None)

    report: Dict[str, Any] = {
        "seed": plan.seed,
        "faults": list(plan.kinds),
        "targets": targets,
        "checks": checks,
        "deterministic": deterministic,
        "runner_stats": stats,
        "results": [
            {
                "job": r.job.name,
                "status": r.status,
                "attempts": r.attempts,
                "error": r.error,
                "value": r.value,
            }
            for r in results1
        ],
        "ok": deterministic
        and all(c["detected"] and c["recovered"] for c in checks)
        and all(r.ok for r in results1),
    }
    if forensics_dir is not None:
        report["forensics"] = forensics_artifacts
    (workdir / "chaos_report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return report


# -- the daemon-kill harness -------------------------------------------------


def _start_serve_daemon(
    spool: Path, log_path: Path, workers: int, startup_timeout: float = 30.0
):
    """Launch ``repro serve`` as a subprocess on an ephemeral port.

    Returns ``(proc, log_handle, port)``; the port is parsed from the
    daemon's startup banner.
    """
    import subprocess
    import sys

    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parent.parent)
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    log = open(log_path, "w", encoding="utf-8")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", "0",
            "--workers", str(workers),
            "--spool", str(spool),
            "--no-collector",
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
        env=env,
    )
    deadline = time.monotonic() + startup_timeout
    port: Optional[int] = None
    while port is None and time.monotonic() < deadline:
        if proc.poll() is not None:
            break
        match = re.search(
            r"listening on http://127\.0\.0\.1:(\d+)",
            log_path.read_text(encoding="utf-8", errors="replace"),
        )
        if match:
            port = int(match.group(1))
        else:
            time.sleep(0.05)
    if port is None:
        proc.kill()
        proc.wait()
        log.close()
        raise RuntimeError(f"serve daemon did not start; see {log_path}")
    return proc, log, port


def _service_request(port: int, method: str, path: str, body=None):
    import http.client

    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        conn.request(method, path, body=body)
        resp = conn.getresponse()
        return resp.status, json.loads(resp.read())
    finally:
        conn.close()


def run_daemon_kill(
    workdir: Union[str, Path],
    seed: int = 0,
    submissions: int = 6,
    workers: int = 2,
    timeout: float = 120.0,
) -> Dict[str, Any]:
    """SIGKILL a live ``repro serve`` daemon mid-burst; prove recovery.

    The crash-recovery-determinism invariant of the durable service:

    1. record ``submissions`` traces (the chaos suite mix) and compute
       each one's **control verdict** in-process, with no daemon at all;
    2. start a daemon on a fresh spool, POST the whole burst, and
       ``kill -9`` the process the moment the last upload is
       acknowledged — workers die mid-analysis, the queue dies full;
    3. restart the daemon on the same spool and poll every acknowledged
       submission id to a terminal state.

    Every acknowledged submission must come back — none lost, none
    failed — and every verdict report must be **byte-identical** to its
    control.  Returns a JSON-able report; ``report["ok"]`` is the
    verdict, and a copy lands in ``<workdir>/daemon_kill_report.json``.
    """
    from .experiments.traces import record_trace
    from .service.jobs import analyze_submission
    from .workloads.suite import get_benchmark

    workdir = Path(workdir)
    spool = workdir / "spool"
    traces_dir = workdir / "traces"
    traces_dir.mkdir(parents=True, exist_ok=True)

    # -- control verdicts: no daemon, no crash, pure analysis ---------------
    mix = [CHAOS_SUITE[i % len(CHAOS_SUITE)] for i in range(submissions)]
    paths: List[Path] = []
    control: List[Dict[str, Any]] = []
    for i, (name, racy) in enumerate(mix):
        path = traces_dir / f"{i:02d}_{name}.trace"
        record_trace(
            get_benchmark(name), scale="test", seed=seed + i, racy=racy
        ).save(path)
        paths.append(path)
        control.append(analyze_submission(str(path)))

    # -- burst, then kill -9 ------------------------------------------------
    proc, log, port = _start_serve_daemon(
        spool, workdir / "daemon_burst.log", workers
    )
    accepted: List[Tuple[str, int]] = []  # (submission id, trace index)
    try:
        for i, path in enumerate(paths):
            status, payload = _service_request(
                port, "POST", "/submit", body=path.read_bytes()
            )
            if status == 202:
                accepted.append((payload["id"], i))
    finally:
        proc.kill()
        proc.wait()
        log.close()
    _count_fault("daemon-kill")

    # -- restart on the same spool; every acked id must reach its verdict --
    proc, log, port = _start_serve_daemon(
        spool, workdir / "daemon_recover.log", workers
    )
    lost: List[str] = []
    failed: List[Dict[str, Any]] = []
    mismatched: List[str] = []
    matched: List[str] = []
    try:
        deadline = time.monotonic() + timeout
        for sid, index in accepted:
            state = None
            while time.monotonic() < deadline:
                status, payload = _service_request(
                    port, "GET", f"/result/{sid}"
                )
                if status == 404:
                    state = "lost"
                    break
                state = payload.get("state")
                if state in ("done", "failed"):
                    break
                time.sleep(0.1)
            if state == "lost" or state is None:
                lost.append(sid)
            elif state == "failed":
                failed.append({"id": sid, "error": payload.get("error")})
            else:
                _, report_payload = _service_request(
                    port, "GET", f"/report/{sid}"
                )
                if report_payload.get("report") == control[index]:
                    matched.append(sid)
                else:
                    mismatched.append(sid)
    finally:
        proc.terminate()
        proc.wait(timeout=15)
        log.close()

    report = {
        "fault": "daemon-kill",
        "seed": seed,
        "submitted": len(paths),
        "accepted": len(accepted),
        "matched": len(matched),
        "lost": lost,
        "failed": failed,
        "mismatched": mismatched,
        "ok": (
            len(accepted) == len(paths)
            and len(matched) == len(accepted)
            and not lost
            and not failed
            and not mismatched
        ),
    }
    (workdir / "daemon_kill_report.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return report


def _null_scope():
    from contextlib import nullcontext

    return nullcontext()


def _record_chaos_trace(path: Path, seed: int) -> None:
    """Record a small real trace (multiple chunks) to damage."""
    from .clean import run_clean
    from .runtime.trace import TraceRecorder
    from .workloads import build_program
    from .workloads.suite import get_benchmark

    recorder = TraceRecorder()
    program = build_program(
        get_benchmark("lu_ncb"), scale="test", racy=False, seed=seed
    )
    run_clean(program, extra_monitors=[recorder])
    recorder.trace.save(path, format="binary", chunk_events=64)
