"""Workload models: SPLASH-2/PARSEC kernels, microbenchmarks, generators."""

from .characterize import Characteristics, characterize, characterize_suite
from .kernels import N_THREADS, build_program
from .microbench import (
    BRANCH_TABLE_SIZE,
    spilled_switch_program,
    torn_write_program,
)
from .randprog import RandomProgramPlan, make_random_program
from .spec import SCALES, BenchmarkSpec, Scale
from .suite import (
    ALL_BENCHMARKS,
    BENCHMARKS,
    HW_BENCHMARKS,
    RACE_FREE_VARIANTS,
    RACY_BENCHMARKS,
    ROLLOVER_BENCHMARKS,
    get_benchmark,
)

__all__ = [
    "BenchmarkSpec",
    "Scale",
    "SCALES",
    "build_program",
    "N_THREADS",
    "characterize",
    "characterize_suite",
    "Characteristics",
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "RACY_BENCHMARKS",
    "RACE_FREE_VARIANTS",
    "HW_BENCHMARKS",
    "ROLLOVER_BENCHMARKS",
    "get_benchmark",
    "make_random_program",
    "RandomProgramPlan",
    "spilled_switch_program",
    "torn_write_program",
    "BRANCH_TABLE_SIZE",
]
