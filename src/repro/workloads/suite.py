"""The 26 modelled SPLASH-2 + PARSEC benchmarks (paper Section 6.1).

freqmine is excluded exactly as in the paper (non-Pthread API).  The
racy roster has 17 entries (Section 6.1 reports races in 17 of 26
unmodified benchmarks; the paper does not name them, so the roster below
is our documented choice, consistent with the paper's remarks — canneal
is lock-free synchronized and has *only* a racy variant).  Both SPLASH-2
and PARSEC ship a raytrace; the PARSEC one is named ``raytrace_parsec``.

Every number below is a *calibrated model input* (see
:mod:`repro.workloads.spec`): shared-access densities reproduce the
Figure-7 ordering (lu_cb/lu_ncb highest), synchronization rates make
radiosity/fluidanimate/facesim/barnes/fmm the five rollover benchmarks of
Table 1, dedup is byte-granular (the Figure-9/10 outlier), and
ocean_cp/ocean_ncp/radix have the large, low-locality footprints that the
4-byte-epoch design of Figure 11 punishes.
"""

from __future__ import annotations

from typing import Dict, List

from .spec import BenchmarkSpec

__all__ = [
    "ALL_BENCHMARKS",
    "BENCHMARKS",
    "RACY_BENCHMARKS",
    "RACE_FREE_VARIANTS",
    "HW_BENCHMARKS",
    "ROLLOVER_BENCHMARKS",
    "get_benchmark",
]

_WIDE = ((8, 6), (4, 4), (1, 1))          # >90% of accesses 4+ bytes
_MOSTLY_WIDE = ((8, 5), (4, 4), (2, 1))   # all widths even
_BYTEWISE = ((1, 8), (4, 1), (8, 1))      # dedup: byte-granular

ALL_BENCHMARKS: List[BenchmarkSpec] = [
    # ----------------------------------------------------------- SPLASH-2
    BenchmarkSpec(
        name="barnes", suite="splash2", style="task_locks",
        work_items=700, shared_per_item=2.5, compute_per_item=14,
        sync_per_item=0.55, footprint_slots=4096, locality=0.75,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="cholesky", suite="splash2", style="task_locks",
        work_items=500, shared_per_item=2.2, compute_per_item=16,
        sync_per_item=0.25, footprint_slots=3072, locality=0.7,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="fft", suite="splash2", style="barrier_phases",
        work_items=600, shared_per_item=2.0, compute_per_item=12,
        sync_per_item=0.03, footprint_slots=8192, locality=0.55,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="fmm", suite="splash2", style="task_locks",
        work_items=650, shared_per_item=2.2, compute_per_item=15,
        sync_per_item=0.5, footprint_slots=4096, locality=0.75,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="lu_cb", suite="splash2", style="barrier_phases",
        work_items=800, shared_per_item=14.0, compute_per_item=6,
        sync_per_item=0.04, footprint_slots=4096, locality=0.85,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="lu_ncb", suite="splash2", style="barrier_phases",
        work_items=800, shared_per_item=15.0, compute_per_item=6,
        sync_per_item=0.04, footprint_slots=6144, locality=0.7,
        access_sizes=_WIDE, racy=True, race_density=0.03,
    ),
    BenchmarkSpec(
        name="ocean_cp", suite="splash2", style="barrier_phases",
        work_items=700, shared_per_item=3.0, compute_per_item=12,
        sync_per_item=0.06, footprint_slots=16384, locality=0.35,
        access_sizes=_WIDE, racy=True, race_density=0.03,
    ),
    BenchmarkSpec(
        name="ocean_ncp", suite="splash2", style="barrier_phases",
        work_items=700, shared_per_item=3.2, compute_per_item=12,
        sync_per_item=0.06, footprint_slots=18432, locality=0.3,
        access_sizes=_WIDE, racy=True, race_density=0.03,
    ),
    BenchmarkSpec(
        name="radiosity", suite="splash2", style="task_locks",
        work_items=700, shared_per_item=2.4, compute_per_item=13,
        sync_per_item=2.0, footprint_slots=4096, locality=0.8,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="radix", suite="splash2", style="barrier_phases",
        work_items=700, shared_per_item=2.8, compute_per_item=10,
        sync_per_item=0.05, footprint_slots=16384, locality=0.3,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="raytrace", suite="splash2", style="task_locks",
        work_items=600, shared_per_item=2.0, compute_per_item=16,
        sync_per_item=0.3, footprint_slots=6144, locality=0.75,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="volrend", suite="splash2", style="task_locks",
        work_items=550, shared_per_item=1.8, compute_per_item=15,
        sync_per_item=0.3, footprint_slots=4096, locality=0.8,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="water_nsquared", suite="splash2", style="task_locks",
        work_items=600, shared_per_item=2.0, compute_per_item=18,
        sync_per_item=0.35, footprint_slots=2048, locality=0.85,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="water_spatial", suite="splash2", style="barrier_phases",
        work_items=600, shared_per_item=1.9, compute_per_item=18,
        sync_per_item=0.08, footprint_slots=3072, locality=0.85,
        access_sizes=_WIDE, racy=True, race_density=0.10,
    ),
    # ------------------------------------------------------------- PARSEC
    BenchmarkSpec(
        name="blackscholes", suite="parsec", style="barrier_phases",
        work_items=700, shared_per_item=1.2, compute_per_item=30,
        sync_per_item=0.02, footprint_slots=4096, locality=0.9,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="bodytrack", suite="parsec", style="task_locks",
        work_items=600, shared_per_item=1.8, compute_per_item=20,
        sync_per_item=0.3, footprint_slots=6144, locality=0.7,
        access_sizes=_MOSTLY_WIDE, racy=True, race_density=0.10,
    ),
    BenchmarkSpec(
        name="canneal", suite="parsec", style="lock_free",
        work_items=600, shared_per_item=2.4, compute_per_item=14,
        sync_per_item=0.0, footprint_slots=16384, locality=0.45,
        access_sizes=_WIDE, racy=True, race_density=0.2,
    ),
    BenchmarkSpec(
        name="dedup", suite="parsec", style="pipeline",
        work_items=400, shared_per_item=3.0, compute_per_item=12,
        sync_per_item=0.2, footprint_slots=8192, locality=0.6,
        access_sizes=_BYTEWISE, racy=True, race_density=0.05,
        byte_granular=True, imbalance=0.8,
    ),
    BenchmarkSpec(
        name="facesim", suite="parsec", style="barrier_phases",
        work_items=900, shared_per_item=2.6, compute_per_item=14,
        sync_per_item=0.35, footprint_slots=12288, locality=0.65,
        access_sizes=_WIDE, hw_omitted=True,
    ),
    BenchmarkSpec(
        name="ferret", suite="parsec", style="pipeline",
        work_items=400, shared_per_item=2.0, compute_per_item=18,
        sync_per_item=0.2, footprint_slots=6144, locality=0.7,
        access_sizes=_MOSTLY_WIDE, racy=True, race_density=0.10,
        imbalance=0.7,
    ),
    BenchmarkSpec(
        name="fluidanimate", suite="parsec", style="task_locks",
        work_items=800, shared_per_item=2.4, compute_per_item=12,
        sync_per_item=2.2, footprint_slots=8192, locality=0.7,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="raytrace_parsec", suite="parsec", style="task_locks",
        work_items=600, shared_per_item=1.6, compute_per_item=22,
        sync_per_item=0.2, footprint_slots=8192, locality=0.75,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="streamcluster", suite="parsec", style="barrier_phases",
        work_items=700, shared_per_item=2.2, compute_per_item=14,
        sync_per_item=0.12, footprint_slots=6144, locality=0.6,
        access_sizes=_WIDE, racy=True, race_density=0.03,
        blocking_sync=True,
    ),
    BenchmarkSpec(
        name="swaptions", suite="parsec", style="barrier_phases",
        work_items=650, shared_per_item=1.0, compute_per_item=32,
        sync_per_item=0.02, footprint_slots=2048, locality=0.9,
        access_sizes=_WIDE,
    ),
    BenchmarkSpec(
        name="vips", suite="parsec", style="pipeline",
        work_items=400, shared_per_item=1.8, compute_per_item=20,
        sync_per_item=0.2, footprint_slots=6144, locality=0.7,
        access_sizes=_MOSTLY_WIDE, racy=True, race_density=0.10,
        imbalance=0.6,
    ),
    BenchmarkSpec(
        name="x264", suite="parsec", style="task_locks",
        work_items=550, shared_per_item=1.7, compute_per_item=20,
        sync_per_item=0.25, footprint_slots=8192, locality=0.7,
        access_sizes=_MOSTLY_WIDE,
    ),
]

BENCHMARKS: Dict[str, BenchmarkSpec] = {b.name: b for b in ALL_BENCHMARKS}

#: The 17 benchmarks whose unmodified version races (Section 6.1).
RACY_BENCHMARKS: List[str] = [b.name for b in ALL_BENCHMARKS if b.racy]

#: Benchmarks with a race-free ("modified") variant — everything except
#: canneal, whose lock-free synchronization cannot be de-raced (§6.1).
RACE_FREE_VARIANTS: List[str] = [
    b.name for b in ALL_BENCHMARKS if b.style != "lock_free"
]

#: Benchmarks used in the hardware-simulation experiments (facesim is
#: omitted for simulation time, canneal has no race-free variant to time).
HW_BENCHMARKS: List[str] = [
    b.name
    for b in ALL_BENCHMARKS
    if not b.hw_omitted and b.style != "lock_free"
]

#: The five benchmarks that experience clock rollovers (Table 1).
ROLLOVER_BENCHMARKS: List[str] = [
    "barnes",
    "fmm",
    "radiosity",
    "facesim",
    "fluidanimate",
]


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark spec by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        ) from None
