"""Figure-1 microbenchmarks: the motivating pathologies of the paper.

Two tiny programs reproduce the surprising behaviours the introduction
uses to motivate SFR isolation and write-atomicity:

* :func:`spilled_switch_program` — Figure 1a: thread 1 loads a shared
  variable, validates it, and later *reloads* it (modelling a compiler
  spilling the register and re-reading memory); thread 2's racy write in
  between makes the validated value stale, so the branch-table index is
  out of bounds.  Under CLEAN, the reload of racy data is a RAW race and
  the execution stops before the wild branch.
* :func:`torn_write_program` — Figure 1b: a 64-bit store is performed as
  two 32-bit halves; two threads storing concurrently can leave a value
  (``0x100000001``) that appears in neither thread's code.  Under CLEAN
  the second thread's half-store is a WAW race.
"""

from __future__ import annotations

from ..runtime.ops import Compute, Join, Output, Read, Spawn, Write
from ..runtime.program import Program

__all__ = [
    "spilled_switch_program",
    "torn_write_program",
    "BRANCH_TABLE_SIZE",
]

#: Size of the Figure-1a branch table; valid switch indices are 0 and 1.
BRANCH_TABLE_SIZE = 2


def spilled_switch_program(racy_value: int = 5) -> Program:
    """Figure 1a: bounds-check on a value that a racy write invalidates.

    Thread 1's output is ``("branch", index)``; an index outside
    ``range(BRANCH_TABLE_SIZE)`` is the out-of-thin-air wild branch.
    """

    def thread2(ctx, x_addr):
        yield Write(x_addr, 4, racy_value)

    def main(ctx):
        x_addr = ctx.alloc(4)
        yield Write(x_addr, 4, 1)  # initially valid
        kid = yield Spawn(thread2, (x_addr,))
        a = yield Read(x_addr, 4)  # unsigned a = x
        if a < 2:
            # "Complex code forcing a to be spilled": the compiler
            # re-reads x instead of keeping a in a register.
            yield Compute(50)
            a = yield Read(x_addr, 4)  # the reload — races with thread 2
            # The switch's bounds check was removed because a "must" be
            # 0 or 1; a racy write makes the table index wild.
            yield Output(("branch", a))
        yield Join(kid)
        return a

    return Program(main)


def torn_write_program() -> Program:
    """Figure 1b: 64-bit stores issued as two 32-bit halves.

    Thread 1 stores ``0x1_0000_0000``, thread 2 stores ``0x1``; a torn
    interleaving leaves ``x == 0x1_0000_0001``, a value neither thread
    wrote.  The main thread outputs the final 64-bit value.
    """

    def store64(ctx, addr, value):
        yield Write(addr + 4, 4, (value >> 32) & 0xFFFFFFFF)  # high half
        yield Write(addr, 4, value & 0xFFFFFFFF)              # low half

    def main(ctx):
        addr = ctx.alloc(8)
        t1 = yield Spawn(store64, (addr, 0x1_0000_0000))
        t2 = yield Spawn(store64, (addr, 0x1))
        yield Join(t1)
        yield Join(t2)
        value = yield Read(addr, 8)
        yield Output(("x", value))
        return value

    return Program(main)
