"""Workload characterization: measure what the specs promise.

The benchmark specs in :mod:`repro.workloads.suite` are calibrated
*inputs*; this module closes the loop by measuring the corresponding
properties from actual executions — shared-access density, width mix,
write fraction, synchronization rate, footprint — so drift between spec
and behaviour is visible (and testable).

Used by ``python -m repro list --measured`` style tooling and by the
suite self-consistency tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..runtime.scheduler import RoundRobinPolicy
from ..runtime.trace import SYNC, TraceRecorder, WRITE
from .kernels import build_program
from .spec import BenchmarkSpec

__all__ = ["Characteristics", "characterize"]


@dataclass(frozen=True)
class Characteristics:
    """Measured properties of one workload execution."""

    benchmark: str
    scale: str
    threads: int
    instructions: int
    shared_accesses: int
    private_accesses: int
    sync_ops: int
    write_fraction: float
    wide_fraction: float
    byte_write_fraction: float
    footprint_bytes: int

    @property
    def shared_density(self) -> float:
        """Shared accesses per executed instruction (the Fig-7 quantity)."""
        return self.shared_accesses / self.instructions if self.instructions else 0.0

    @property
    def sync_density(self) -> float:
        """Sync operations per executed instruction."""
        return self.sync_ops / self.instructions if self.instructions else 0.0


def characterize(
    spec: BenchmarkSpec, scale: str = "test", seed: int = 0
) -> Characteristics:
    """Run ``spec``'s runnable variant bare and measure its properties."""
    racy = spec.style == "lock_free"  # canneal has only the racy variant
    recorder = TraceRecorder()
    program = build_program(spec, scale=scale, racy=racy, seed=seed)
    result = program.run(
        policy=RoundRobinPolicy(), monitors=[recorder], max_threads=24
    )
    trace = recorder.trace

    shared = private = syncs = writes = wide = byte_writes = 0
    instructions = 0
    touched = set()
    for event in trace:
        instructions += event.gap
        if event.kind == SYNC:
            syncs += 1
            instructions += 1
            continue
        instructions += 1
        if event.private:
            private += 1
            continue
        shared += 1
        if event.kind == WRITE:
            writes += 1
            if event.size == 1:
                byte_writes += 1
        if event.size >= 4:
            wide += 1
        for a in range(event.address, event.address + event.size):
            touched.add(a)

    return Characteristics(
        benchmark=spec.name,
        scale=scale,
        threads=len(trace.thread_ids()),
        instructions=instructions,
        shared_accesses=shared,
        private_accesses=private,
        sync_ops=syncs,
        write_fraction=writes / shared if shared else 0.0,
        wide_fraction=wide / shared if shared else 0.0,
        byte_write_fraction=byte_writes / writes if writes else 0.0,
        footprint_bytes=len(touched),
    )


def characterize_suite(
    specs, scale: str = "test", seed: int = 0
) -> Dict[str, Characteristics]:
    """Characterize many specs; returns a name-indexed mapping."""
    return {spec.name: characterize(spec, scale, seed) for spec in specs}
