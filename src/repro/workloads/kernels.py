"""Parametrized kernels: turn a :class:`BenchmarkSpec` into a program.

Four kernel families cover the synchronization structures of SPLASH-2
and PARSEC:

* ``barrier_phases`` — iterative data-parallel/stencil codes: threads own
  slot partitions, write only their own partition, read neighbours'
  *previous-phase* values; barriers separate phases, so the race-free
  variant is race-free by construction.
* ``task_locks`` — task-parallel codes sharing structures under locks:
  a slot's lock is ``slot-group % n_locks``; the race-free variant always
  holds the right lock for shared-structure accesses.
* ``pipeline`` — producer/consumer stages over bounded buffers guarded by
  semaphores; ownership handoff makes buffer accesses race-free.
* ``lock_free`` — canneal-style atomic-RMW synchronization, which is a
  data race under CLEAN's model by design (no race-free variant).

The *racy* variant of each kernel injects unprotected accesses to
contended shared slots with probability ``spec.race_density``, the stand-
in for the real benchmarks' known races.

All randomness is drawn from per-thread generators seeded by
``(spec.name, variant, seed, tid)``, so a given (spec, seed) pair always
produces the identical operation stream — programs are replayable and
the determinism experiments are meaningful.
"""

from __future__ import annotations

import random
from typing import Callable, List

from ..runtime.ops import (
    Acquire,
    AtomicRMW,
    BarrierWait,
    Compute,
    Join,
    Output,
    Read,
    Release,
    SemPost,
    SemWait,
    Spawn,
    Write,
)
from ..runtime.program import Program
from ..runtime.sync import Barrier, Lock, Semaphore
from .spec import BenchmarkSpec

__all__ = ["build_program", "N_THREADS"]

#: The paper runs every benchmark with 8 threads (Section 6.1).
N_THREADS = 8

SLOT = 8
_PRIVATE_SLOTS = 64


def build_program(
    spec: BenchmarkSpec,
    scale: str = "simsmall",
    racy: bool = False,
    seed: int = 0,
    n_threads: int = N_THREADS,
) -> Program:
    """Build the runnable program for ``spec`` at ``scale``.

    ``racy=True`` selects the unmodified (racy) variant; it is an error
    for specs whose unmodified version is race-free, and lock_free specs
    (canneal) have *only* the racy variant (Section 6.1).
    """
    if racy and not spec.racy:
        raise ValueError(f"{spec.name} has no racy variant (unmodified is race-free)")
    if spec.style == "lock_free" and not racy:
        raise ValueError(
            f"{spec.name} is lock-free synchronized; it has no race-free variant"
        )
    builder = _BUILDERS[spec.style]
    return builder(spec, scale, racy, seed, n_threads)


def _rng_for(spec: BenchmarkSpec, racy: bool, seed: int, tid: int) -> random.Random:
    return random.Random(f"{spec.name}/{int(racy)}/{seed}/{tid}")


def _pick_size(
    rng: random.Random, spec: BenchmarkSpec, is_write: bool = False
) -> int:
    total = sum(w for _, w in spec.access_sizes)
    roll = rng.randrange(total)
    size = spec.access_sizes[-1][0]
    for candidate, weight in spec.access_sizes:
        roll -= weight
        if roll < 0:
            size = candidate
            break
    if is_write and size < 4 and not spec.byte_granular:
        # Sub-word *writes* to shared data are rare in real codes (they
        # are what forces hardware metadata expansion); only the
        # byte-granular benchmarks (dedup) issue them.
        size = 4
    return size


def _slot_address(base: int, slot: int, rng: random.Random, size: int) -> int:
    offset = size * rng.randrange(SLOT // size) if size < SLOT else 0
    return base + slot * SLOT + offset


def _per_item_counts(rng: random.Random, rate: float) -> int:
    """Integer draw with expectation ``rate`` (deterministic in rng)."""
    whole = int(rate)
    if rng.random() < rate - whole:
        whole += 1
    return whole


def _compute_amount(spec: BenchmarkSpec, tid: int, n_threads: int) -> int:
    """Per-item compute, skewed across threads by ``spec.imbalance``."""
    if not spec.imbalance:
        return max(1, spec.compute_per_item)
    # Thread 1 lightest, thread n heaviest; mean stays compute_per_item.
    skew = 1.0 + spec.imbalance * ((2 * (tid - 1) / max(1, n_threads - 1)) - 1.0)
    return max(1, int(spec.compute_per_item * skew))


def _private_accesses(rng, spec, private_base, value):
    """Ops for this item's private (stack-like) accesses."""
    ops = []
    for _ in range(_per_item_counts(rng, spec.private_per_item)):
        slot = rng.randrange(_PRIVATE_SLOTS)
        address = private_base + slot * SLOT
        if rng.random() < 0.5:
            ops.append(Write(address, 8, value, private=True))
        else:
            ops.append(Read(address, 8, private=True))
    return ops


def _choose_slot(rng, spec, hot: List[int], n_slots: int,
                 bias: float = None) -> int:
    """Locality model: reuse a hot slot or stride to a fresh one.

    ``bias`` overrides the spec's reuse probability; writes use a high
    floor (real codes rewrite hot data many times between
    synchronizations, which is what makes the hardware same-epoch fast
    path common).
    """
    reuse = spec.locality if bias is None else bias
    if hot and rng.random() < reuse:
        slot = rng.choice(hot)
    else:
        slot = rng.randrange(n_slots)
        hot.append(slot)
        if len(hot) > 16:
            hot.pop(0)
    return slot


def _write_bias(spec) -> float:
    return max(spec.locality, 0.85)


# ---------------------------------------------------------------------------
# barrier_phases
# ---------------------------------------------------------------------------


def _build_barrier_phases(spec, scale, racy, seed, n_threads):
    items = spec.items_at(scale)
    n_slots = max(n_threads * 16, spec.slots_at(scale))
    phases = max(1, min(items, int(items * spec.sync_per_item)))
    items_per_phase = max(1, items // phases)
    barrier = Barrier(n_threads, f"{spec.name}-barrier")
    # Double buffering: each phase reads the previous phase's array and
    # writes the other; the barrier between phases orders reads after the
    # writes they observe, so the race-free variant is race-free.
    total_slots = 2 * n_slots

    def worker(ctx, shared_base, private_base, tid_index):
        rng = _rng_for(spec, racy, seed, tid_index)
        per_thread = n_slots // n_threads
        my_lo = tid_index * per_thread
        hot_own: List[int] = []   # partition-relative (writes)
        hot_read: List[int] = []  # array-relative (reads)
        checksum = 0
        item = 0
        for phase in range(phases):
            write_array = shared_base + (phase % 2) * n_slots * SLOT
            read_array = shared_base + ((phase + 1) % 2) * n_slots * SLOT
            for _ in range(items_per_phase):
                item += 1
                yield Compute(_compute_amount(spec, tid_index + 1, n_threads))
                for op in _private_accesses(rng, spec, private_base, item):
                    yield op
                for _ in range(_per_item_counts(rng, spec.shared_per_item)):
                    if racy and rng.random() < spec.race_density:
                        # Unmodified benchmark: unsynchronized access to a
                        # small contended region of the write array.
                        is_write = rng.random() < 0.7
                        size = _pick_size(rng, spec, is_write)
                        slot = rng.randrange(min(4, n_slots))
                        address = _slot_address(write_array, slot, rng, size)
                        if is_write:
                            yield Write(address, size, item)
                        else:
                            checksum ^= yield Read(address, size)
                        continue
                    is_write = rng.random() < spec.write_fraction
                    size = _pick_size(rng, spec, is_write)
                    if is_write:
                        # Writes stay in the thread's own partition of the
                        # current write array.
                        slot = my_lo + _choose_slot(
                            rng, spec, hot_own, per_thread, bias=_write_bias(spec)
                        )
                        address = _slot_address(write_array, slot, rng, size)
                        yield Write(address, size, item)
                    else:
                        # Reads mostly stay in the thread's own partition
                        # (interior points); a minority cross partitions
                        # (boundary exchange), barrier-ordered either way.
                        if rng.random() < 0.85:
                            slot = my_lo + _choose_slot(
                                rng, spec, hot_own, per_thread
                            )
                        else:
                            slot = _choose_slot(rng, spec, hot_read, n_slots)
                        address = _slot_address(read_array, slot, rng, size)
                        checksum ^= yield Read(address, size)
            yield BarrierWait(barrier)
        yield Output(checksum & 0xFFFFFFFF)
        return checksum & 0xFFFFFFFF

    return _spawn_harness(spec, worker, total_slots, n_threads)


# ---------------------------------------------------------------------------
# task_locks
# ---------------------------------------------------------------------------


def _build_task_locks(spec, scale, racy, seed, n_threads):
    items = spec.items_at(scale)
    n_slots = max(n_threads * 16, spec.slots_at(scale))
    n_locks = 8
    locks = [Lock(f"{spec.name}-lock{i}") for i in range(n_locks)]
    # Shared structures (locked) occupy the low quarter of the slots; the
    # rest is per-thread-owned data accessed without locks.
    shared_slots = max(n_locks, n_slots // 4)

    def worker(ctx, shared_base, private_base, tid_index):
        rng = _rng_for(spec, racy, seed, tid_index)
        owned_per_thread = (n_slots - shared_slots) // n_threads
        my_lo = shared_slots + tid_index * owned_per_thread
        hot: List[int] = []
        checksum = 0
        for item in range(1, items + 1):
            yield Compute(_compute_amount(spec, tid_index + 1, n_threads))
            for op in _private_accesses(rng, spec, private_base, item):
                yield op
            n_lock_sections = _per_item_counts(rng, spec.sync_per_item / 2)
            for _ in range(n_lock_sections):
                group = rng.randrange(n_locks)
                skip_lock = racy and rng.random() < spec.race_density
                if not skip_lock:
                    yield Acquire(locks[group])
                # Shared structures are hot: only a few rows per lock, so
                # unprotected accesses in the racy variant reliably
                # conflict with other threads' locked updates.  The racy
                # variant's unprotected sections hit the hottest row.
                rows = 1 if skip_lock else max(1, min(4, shared_slots // n_locks))
                slot = group + n_locks * rng.randrange(rows)
                address = _slot_address(shared_base, slot, rng, 8)
                value = yield Read(address, 8)
                yield Write(address, 8, (value + item) & 0xFFFFFFFFFFFFFFFF)
                checksum ^= value
                if not skip_lock:
                    yield Release(locks[group])
            for _ in range(_per_item_counts(rng, spec.shared_per_item)):
                is_write = rng.random() < spec.write_fraction
                size = _pick_size(rng, spec, is_write)
                slot = my_lo + _choose_slot(
                    rng, spec, hot, owned_per_thread,
                    bias=_write_bias(spec) if is_write else None,
                )
                address = _slot_address(shared_base, slot, rng, size)
                if is_write:
                    yield Write(address, size, item)
                else:
                    checksum ^= yield Read(address, size)
        yield Output(checksum & 0xFFFFFFFF)
        return checksum & 0xFFFFFFFF

    return _spawn_harness(spec, worker, n_slots, n_threads)


# ---------------------------------------------------------------------------
# pipeline
# ---------------------------------------------------------------------------

_CELL = 32   # bytes per pipeline buffer cell
_BATCH = 16  # items handed between stages per queue operation
_RING = 2    # batches in flight per inter-stage ring


def _build_pipeline(spec, scale, racy, seed, n_threads):
    total_items = spec.items_at(scale)
    n_stages = n_threads
    rings = n_stages - 1  # ring i connects stage i -> stage i+1
    empty = [Semaphore(_RING, f"{spec.name}-empty{i}") for i in range(rings)]
    full = [Semaphore(0, f"{spec.name}-full{i}") for i in range(rings)]
    stats_lock = Lock(f"{spec.name}-stats")
    n_batches = -(-total_items // _BATCH)

    def cell_addr(buffers_base, ring, batch, j):
        slot = (ring * _RING + batch % _RING) * _BATCH + j
        return buffers_base + slot * _CELL

    def stage(ctx, buffers_base, stats_base, private_base, stage_index):
        rng = _rng_for(spec, racy, seed, stage_index)
        checksum = 0
        for batch in range(n_batches):
            # Queue operations happen per *batch*, as real pipelines do
            # (fine-grained per-item handoff would drown in sync cost).
            if stage_index > 0:
                yield SemWait(full[stage_index - 1])
            if stage_index < n_stages - 1:
                yield SemWait(empty[stage_index])
            for j in range(_BATCH):
                item = batch * _BATCH + j + 1
                if item > total_items:
                    break
                yield Compute(_compute_amount(spec, stage_index + 1, n_stages))
                for op in _private_accesses(rng, spec, private_base, item):
                    yield op
                value = item
                # Byte-granular benchmarks (dedup) move their payload a
                # byte at a time; the byte writes by different stages
                # stamp different epochs into the same 4-byte metadata
                # groups -> hardware line expansion.
                bytewise = spec.byte_granular
                if stage_index > 0:
                    in_addr = cell_addr(buffers_base, stage_index - 1, batch, j)
                    if bytewise:
                        value = 0
                        for i in range(8):
                            value |= (yield Read(in_addr + i, 1)) << (8 * i)
                    else:
                        value = yield Read(in_addr, 8)
                checksum ^= value
                if stage_index < n_stages - 1:
                    out_addr = cell_addr(buffers_base, stage_index, batch, j)
                    if bytewise:
                        for i in range(8):
                            yield Write(out_addr + i, 1, (value >> (8 * i)) & 0xFF)
                    else:
                        yield Write(out_addr, 8, value)
                if racy and rng.random() < spec.race_density:
                    # Unmodified benchmark: a stats counter updated
                    # without the lock.
                    current = yield Read(stats_base, 8)
                    yield Write(stats_base, 8, current + 1)
            if stage_index > 0:
                yield SemPost(empty[stage_index - 1])
            if stage_index < n_stages - 1:
                yield SemPost(full[stage_index])
            if rng.random() < spec.sync_per_item:
                yield Acquire(stats_lock)
                current = yield Read(stats_base, 8)
                yield Write(stats_base, 8, current + 1)
                yield Release(stats_lock)
        yield Output(checksum & 0xFFFFFFFF)
        return checksum & 0xFFFFFFFF

    def main(ctx):
        buffers_base = ctx.alloc(rings * _RING * _BATCH * _CELL, align=64)
        stats_base = ctx.alloc(SLOT, align=8)
        children = []
        for index in range(n_stages):
            private_base = ctx.alloc(_PRIVATE_SLOTS * SLOT, align=64)
            child = yield Spawn(stage, (buffers_base, stats_base, private_base, index))
            children.append(child)
        total = 0
        for child in children:
            total ^= yield Join(child)
        yield Output(total)
        return total

    return Program(main)


# ---------------------------------------------------------------------------
# lock_free (canneal)
# ---------------------------------------------------------------------------


def _build_lock_free(spec, scale, racy, seed, n_threads):
    items = spec.items_at(scale)
    n_slots = max(n_threads * 16, spec.slots_at(scale))

    def worker(ctx, shared_base, private_base, tid_index):
        rng = _rng_for(spec, racy, seed, tid_index)
        hot: List[int] = []
        checksum = 0
        for item in range(1, items + 1):
            yield Compute(_compute_amount(spec, tid_index + 1, n_threads))
            for op in _private_accesses(rng, spec, private_base, item):
                yield op
            for _ in range(_per_item_counts(rng, spec.shared_per_item)):
                roll = rng.random()
                is_write = 0.2 <= roll < 0.2 + spec.write_fraction
                size = _pick_size(rng, spec, is_write)
                slot = _choose_slot(rng, spec, hot, n_slots)
                address = _slot_address(shared_base, slot, rng, size)
                if roll < 0.2:
                    # Lock-free swap attempt: atomic RMW on a shared
                    # element — a WAW/RAW race under CLEAN's model.
                    old = yield AtomicRMW(address, size, lambda v: (v + 1) & 0xFF)
                    checksum ^= old
                elif is_write:
                    yield Write(address, size, item)
                else:
                    checksum ^= yield Read(address, size)
        yield Output(checksum & 0xFFFFFFFF)
        return checksum & 0xFFFFFFFF

    return _spawn_harness(spec, worker, n_slots, n_threads)


# ---------------------------------------------------------------------------
# common harness
# ---------------------------------------------------------------------------


def _spawn_harness(spec, worker, n_slots, n_threads) -> Program:
    def main(ctx):
        shared_base = ctx.alloc(n_slots * SLOT, align=64)
        children = []
        for index in range(n_threads):
            private_base = ctx.alloc(_PRIVATE_SLOTS * SLOT, align=64)
            child = yield Spawn(worker, (shared_base, private_base, index))
            children.append(child)
        total = 0
        for child in children:
            total ^= yield Join(child)
        yield Output(total)
        return total

    return Program(main)


_BUILDERS: dict = {
    "barrier_phases": _build_barrier_phases,
    "task_locks": _build_task_locks,
    "pipeline": _build_pipeline,
    "lock_free": _build_lock_free,
}
