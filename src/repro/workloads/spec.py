"""Benchmark specifications: calibrated workload characteristics.

The paper evaluates all 26 Pthread benchmarks of SPLASH-2 and PARSEC
(freqmine excluded).  We cannot run the real benchmarks, so each is
modelled as a synthetic kernel whose *characteristics* are calibrated to
what the paper reports or implies about it:

* shared-access density (Figure 7 — lu_cb/lu_ncb are the outliers),
* access-width mix (>=91.9% of shared accesses are 4+ bytes on average;
  dedup is the byte-granular exception, Section 6.3.2),
* synchronization rate and style (fmm/radiosity/fluidanimate synchronize
  frequently; dedup/ferret/vips are imbalanced pipelines),
* memory locality (ocean_cp/ocean_ncp/radix have the highest LLC miss
  rates, which is what the 4-byte-epoch design of Figure 11 punishes),
* raciness of the unmodified version (17 of 26 benchmarks; canneal's
  lock-free synchronization is racy by design and has no race-free
  variant, Section 6.1).

The paper's performance results are driven by exactly these quantities,
so reproducing them reproduces the shape of every figure; the calibrated
values below are this reproduction's substitute for the real binaries
and are the *inputs* of the experiments, not their outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["BenchmarkSpec", "Scale", "SCALES"]


#: Input-scale multipliers on the per-thread work-item count, standing in
#: for the paper's native / simlarge / simsmall inputs.
SCALES: Dict[str, float] = {
    "native": 1.0,
    "simlarge": 0.5,
    "simsmall": 0.125,
    "test": 0.03125,
}


@dataclass(frozen=True)
class Scale:
    """A named input scale (see :data:`SCALES`)."""

    name: str

    @property
    def factor(self) -> float:
        if self.name not in SCALES:
            raise ValueError(f"unknown scale {self.name!r}")
        return SCALES[self.name]


@dataclass(frozen=True)
class BenchmarkSpec:
    """Characteristics of one modelled benchmark.

    Parameters
    ----------
    name, suite:
        Benchmark identity (suite is ``"splash2"`` or ``"parsec"``).
    style:
        Kernel family: ``"barrier_phases"`` (data-parallel/stencil codes
        synchronizing via barriers), ``"task_locks"`` (task-parallel
        codes sharing structures under locks), ``"pipeline"``
        (producer/consumer stages over bounded queues), ``"lock_free"``
        (atomic-RMW synchronization — canneal).
    work_items:
        Per-thread work items at native scale.
    shared_per_item:
        Shared memory accesses per work item (with ``compute_per_item``
        this sets the Figure-7 shared-access density).
    compute_per_item:
        Non-memory instructions per work item.
    write_fraction:
        Fraction of shared accesses that are writes.
    access_sizes:
        Weighted access-size mix, ``((size_bytes, weight), ...)``.
    sync_per_item:
        Synchronization operations per work item (epoch-clock pressure —
        the Table-1 rollover driver).
    footprint_slots:
        Shared data slots (8 bytes each) at native scale — the working
        set, hence the cache behaviour.
    locality:
        Probability an access reuses a recently-touched slot instead of
        striding to a far one; low values model the LLC-missing codes.
    imbalance:
        Relative spread of per-thread work (pipeline stages differ most)
        — exposes deterministic-counter imprecision (Section 6.2.3).
    racy:
        Whether the unmodified version contains data races.
    race_density:
        For racy specs: fraction of shared accesses that skip their
        protection in the unmodified variant.
    byte_granular:
        dedup-style single-byte writes into shared groups — the driver of
        hardware line expansion (Section 6.3.2).
    blocking_sync:
        The benchmark's Pthread build blocks in synchronization, so
        CLEAN's spinning deterministic operations *speed it up*
        (streamcluster, Section 6.2.3).
    hw_omitted:
        Excluded from the hardware-simulation experiments (facesim:
        simulation time, Section 6.3.1).
    """

    name: str
    suite: str
    style: str
    work_items: int
    shared_per_item: float
    compute_per_item: int
    private_per_item: float = 2.0
    write_fraction: float = 0.4
    access_sizes: Tuple[Tuple[int, int], ...] = ((8, 6), (4, 3), (1, 1))
    sync_per_item: float = 0.05
    footprint_slots: int = 4096
    locality: float = 0.7
    imbalance: float = 0.0
    racy: bool = False
    race_density: float = 0.0
    byte_granular: bool = False
    blocking_sync: bool = False
    hw_omitted: bool = False

    def __post_init__(self) -> None:
        if self.style not in {"barrier_phases", "task_locks", "pipeline", "lock_free"}:
            raise ValueError(f"unknown kernel style {self.style!r}")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError("locality must be within [0, 1]")
        if self.racy and self.race_density <= 0.0:
            raise ValueError(f"{self.name}: racy spec needs positive race_density")
        if not self.racy and self.race_density:
            raise ValueError(f"{self.name}: race_density without racy flag")

    # -- derived quantities -----------------------------------------------------

    @property
    def shared_access_density(self) -> float:
        """Shared accesses per instruction — the Figure-7 quantity.

        Each work item executes ``compute_per_item`` instructions plus
        one instruction per access.
        """
        per_item = self.shared_per_item
        instructions = self.compute_per_item + per_item
        return per_item / instructions

    @property
    def sync_density(self) -> float:
        """Synchronization operations per instruction."""
        instructions = self.compute_per_item + self.shared_per_item
        return self.sync_per_item / instructions

    @property
    def mean_access_size(self) -> float:
        """Weighted mean shared-access width in bytes."""
        total = sum(w for _, w in self.access_sizes)
        return sum(s * w for s, w in self.access_sizes) / total

    @property
    def fraction_wide(self) -> float:
        """Fraction of accesses that are 4 bytes or wider."""
        total = sum(w for _, w in self.access_sizes)
        return sum(w for s, w in self.access_sizes if s >= 4) / total

    def items_at(self, scale: str) -> int:
        """Per-thread work items at the given input scale (min 8)."""
        return max(8, int(self.work_items * Scale(scale).factor))

    def slots_at(self, scale: str) -> int:
        """Footprint slots at the given input scale (min 64)."""
        return max(64, int(self.footprint_slots * Scale(scale).factor))
