"""Seeded random multithreaded programs for property testing.

Generates small programs whose shared accesses either all follow a
lock-per-address discipline (*race-free by construction*) or sometimes
skip the lock (*racy by construction*).  The generator is deterministic
in its seed, so a failing case is perfectly reproducible, and the plan is
inspectable (how many unprotected accesses were planted).

These programs drive the Section-3.4 property tests: on every schedule,
CLEAN must raise exactly when the precise oracle sees a WAW/RAW race,
race-free programs must never raise and must be deterministic under the
Kendo gate, and exception-free executions must show no SFR isolation or
write-atomicity violations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from ..runtime.ops import (
    Acquire,
    Compute,
    Join,
    Output,
    Read,
    Release,
    Spawn,
    Write,
)
from ..runtime.program import Program
from ..runtime.sync import Lock

__all__ = ["RandomProgramPlan", "make_random_program"]

#: Each address slot is 8 bytes; accesses stay inside one slot.
SLOT = 8


@dataclass
class RandomProgramPlan:
    """The generated plan: per-thread operation scripts.

    Each action is ``(kind, slot, size, offset, protected)`` with kind in
    ``{"read", "write", "compute"}``.
    """

    seed: int
    n_threads: int
    n_slots: int
    n_locks: int
    actions: List[List[Tuple[str, int, int, int, bool]]] = field(default_factory=list)
    unprotected: int = 0

    @property
    def racy_by_construction(self) -> bool:
        """Whether any planned access skips its slot's lock."""
        return self.unprotected > 0


def make_random_program(
    seed: int,
    n_threads: int = 3,
    ops_per_thread: int = 12,
    n_slots: int = 4,
    n_locks: int = 2,
    race_probability: float = 0.0,
) -> Tuple[Program, RandomProgramPlan]:
    """Build a seeded random program and its plan.

    ``race_probability`` is the chance each shared access skips the lock
    that protects its slot; 0.0 yields a race-free-by-construction
    program.  Every slot is owned by exactly one lock
    (``slot % n_locks``), so protected accesses can never race.
    """
    if not 0.0 <= race_probability <= 1.0:
        raise ValueError("race_probability must be within [0, 1]")
    rng = random.Random(seed)
    plan = RandomProgramPlan(
        seed=seed, n_threads=n_threads, n_slots=n_slots, n_locks=n_locks
    )
    for _ in range(n_threads):
        script: List[Tuple[str, int, int, int, bool]] = []
        for _ in range(ops_per_thread):
            roll = rng.random()
            if roll < 0.15:
                script.append(("compute", 0, rng.randint(1, 20), 0, True))
                continue
            kind = "write" if rng.random() < 0.5 else "read"
            slot = rng.randrange(n_slots)
            size = rng.choice([1, 4, 8])
            offset = rng.randrange(SLOT - size + 1)
            protected = rng.random() >= race_probability
            if not protected:
                plan.unprotected += 1
            script.append((kind, slot, size, offset, protected))
        plan.actions.append(script)

    def worker(ctx, base, locks, script, my_index):
        wrote = 0
        for kind, slot, size, offset, protected in script:
            if kind == "compute":
                yield Compute(size)
                continue
            lock = locks[slot % len(locks)]
            address = base + slot * SLOT + offset
            if protected:
                yield Acquire(lock)
            if kind == "write":
                wrote += 1
                yield Write(address, size, (my_index + 1) * 1000 + wrote)
            else:
                value = yield Read(address, size)
                yield Output(value)
            if protected:
                yield Release(lock)
        return wrote

    def main(ctx):
        base = ctx.alloc(n_slots * SLOT)
        locks = [Lock(f"slot-lock{i}") for i in range(n_locks)]
        children = []
        for index in range(n_threads):
            child = yield Spawn(worker, (base, locks, plan.actions[index], index))
            children.append(child)
        total = 0
        for child in children:
            total += yield Join(child)
        yield Output(total)
        return total

    return Program(main), plan
