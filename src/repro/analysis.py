"""Offline trace analysis: race-check recorded traces without re-running.

A :class:`~repro.runtime.trace.TraceRecorder` trace carries everything
the detector needs — every thread's accesses in program order plus, for
each synchronization commit, a *replayable descriptor* (``"Acquire:L"``,
``"BarrierWait:B@3"``, ``"Spawn:2"``, ...) and the commit's global
position in the scheduler's deterministic sync sequence.  This module
rebuilds the execution's happens-before relation from those descriptors
and drives the CLEAN detector over the trace, entirely offline:

* **scalar** mode replays one access at a time through the exact
  per-event monitor path;
* **batch** mode hands each synchronization-free run to the vectorized
  ``check_block`` lane — same verdicts, same counters, much faster;
* **sharded** mode splits the *address space* across worker processes
  (:class:`~repro.exec.runner.JobRunner`): every shard replays the full
  synchronization stream but race-checks only the accesses it owns, so
  detection parallelizes across cores.  Shard verdicts merge by
  earliest global access position — deterministic in submission order —
  and a follow-up batch replay (stopping at the merged race) produces
  the exact counter trail, so ``sharded`` reports are verdict- and
  counter-identical to ``scalar`` and ``batch``.

Replay order
------------

Segments (one thread's accesses up to its next sync commit) replay in
the global order of their closing syncs; a thread's vector clock only
changes at its own commits, so this order is consistent with the
recorded happens-before relation.  Race-free traces therefore get the
exact live verdicts and counters; racy traces get a canonical,
deterministic order so every analysis mode agrees on the first race.

Traces from recorders older than the descriptor format (sync events
with a zero global index) cannot be replayed faithfully and are
rejected with a clear error — re-record the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .clean import CleanMonitor
from .core.detector import CleanDetector
from .core.epoch import DEFAULT_LAYOUT, EpochLayout
from .core.exceptions import RaceException
from .runtime.trace import SYNC, StreamingTrace, Trace, open_trace

__all__ = ["AnalysisReport", "analyze_trace"]

#: Fallback shard count: one shard per core leaves no core idle.
DEFAULT_GRANULARITY = 64


@dataclass
class AnalysisReport:
    """Outcome of one offline trace analysis."""

    mode: str
    racy: bool
    #: kind/address/accessing_tid/prior_writer_tid/prior_writer_clock/
    #: size, plus the race's global access position when known.
    race: Optional[Dict[str, Any]]
    threads: int
    events: int
    accesses: int
    syncs: int
    #: ``clean.*`` counter totals (detector stats + fast path + shadow).
    counters: Dict[str, float]
    shards: int = 0
    #: per-shard verdict summaries (sharded mode only)
    shard_stats: List[Dict[str, Any]] = field(default_factory=list)
    #: top-K shared addresses by access count (``hot_sites`` > 0 only)
    hot_sites: List[Dict[str, Any]] = field(default_factory=list)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict (the ``analyze --json`` output)."""
        return {
            "mode": self.mode,
            "racy": self.racy,
            "race": self.race,
            "threads": self.threads,
            "events": self.events,
            "accesses": self.accesses,
            "syncs": self.syncs,
            "counters": dict(self.counters),
            "shards": self.shards,
            "shard_stats": list(self.shard_stats),
            "hot_sites": list(self.hot_sites),
        }


# -- trace loading and the replay plan ----------------------------------------


class _Cols:
    """One thread's full event stream as numpy columns."""

    __slots__ = ("kinds", "addresses", "sizes", "private", "sync_names")

    def __init__(self, trace: object, tid: int) -> None:
        kinds, addresses, sizes, private = [], [], [], []
        names: Dict[int, str] = {}
        base = 0
        for chunk in trace.iter_chunks(tid):
            k = chunk.kinds
            kinds.append(k)
            addresses.append(chunk.addresses.astype(np.int64))
            sizes.append(chunk.sizes.astype(np.int64))
            private.append(chunk.private)
            for pos in np.flatnonzero(k == 2):
                names[base + int(pos)] = chunk.sync_name_at(int(pos))
            base += len(chunk)
        if kinds:
            self.kinds = np.concatenate(kinds)
            self.addresses = np.concatenate(addresses)
            self.sizes = np.concatenate(sizes)
            self.private = np.concatenate(private)
        else:
            self.kinds = np.zeros(0, dtype=np.uint8)
            self.addresses = np.zeros(0, dtype=np.int64)
            self.sizes = np.zeros(0, dtype=np.int64)
            self.private = np.zeros(0, dtype=bool)
        #: event position -> sync descriptor
        self.sync_names = names

    def __len__(self) -> int:
        return len(self.kinds)


@dataclass(frozen=True)
class _SyncPoint:
    """One sync commit: global order, owning thread, position, descriptor."""

    order: int
    tid: int
    pos: int  # index into the thread's event columns
    descriptor: str


class _Plan:
    """The replay plan: per-thread columns plus the global sync order."""

    def __init__(self, trace: object) -> None:
        self.cols: Dict[int, _Cols] = {
            tid: _Cols(trace, tid) for tid in trace.thread_ids()
        }
        self.syncs: List[_SyncPoint] = []
        for tid, cols in self.cols.items():
            for pos in np.flatnonzero(cols.kinds == 2):
                pos = int(pos)
                order = int(cols.addresses[pos])
                if order <= 0:
                    raise ValueError(
                        "trace has sync events without replayable "
                        "descriptors (recorded before the descriptor "
                        "format); re-record it to analyze offline"
                    )
                self.syncs.append(
                    _SyncPoint(order, tid, pos, cols.sync_names[pos])
                )
        self.syncs.sort(key=lambda s: s.order)
        # Per (barrier, generation) episode: arrivers in arrival order.
        # Departs of the whole episode apply at its last arrival — the
        # moment the live barrier tripped.
        self.episodes: Dict[str, List[int]] = {}
        episode_orders: Dict[str, List[int]] = {}
        for s in self.syncs:
            if s.descriptor.startswith("BarrierWait:"):
                key = s.descriptor[len("BarrierWait:"):]
                self.episodes.setdefault(key, []).append(s.tid)
                episode_orders.setdefault(key, []).append(s.order)
        self.trips: Dict[int, str] = {
            max(orders): key for key, orders in episode_orders.items()
        }
        spawned = {
            int(s.descriptor.split(":", 1)[1])
            for s in self.syncs
            if s.descriptor.startswith("Spawn:")
        }
        roots = [tid for tid in self.cols if tid not in spawned]
        self.root = min(roots) if roots else min(self.cols, default=0)
        self.threads = len(self.cols)
        self.events = sum(len(c) for c in self.cols.values())
        self.accesses = int(
            sum(int((c.kinds != 2).sum()) for c in self.cols.values())
        )

    def min_max_threads(self) -> int:
        return (max(self.cols) + 1) if self.cols else 1


def _barrier_key(text: str) -> Tuple[str, int]:
    """``"B@3"`` -> the live run's ``(barrier name, generation)`` key."""
    name, _, gen = text.rpartition("@")
    return (name, int(gen))


# -- the single-process replay (scalar and batch) -----------------------------


class _MonitorReplay:
    """Drive a :class:`CleanMonitor` over a plan, scalar or batch.

    Mirrors exactly the live hook sequence: accesses of a segment, then
    the segment's sync's happens-before edges, then the sync-commit
    invalidation — so verdicts and every counter match a live run of
    the same interleaving.
    """

    def __init__(
        self,
        plan: _Plan,
        monitor: CleanMonitor,
        batch: bool,
        stop_after: Optional[int] = None,
    ) -> None:
        self.plan = plan
        self.monitor = monitor
        self.batch = batch
        self.stop_after = stop_after  # global access position bound
        self.position = 0
        self._cursor: Dict[int, int] = {tid: 0 for tid in plan.cols}
        self._next_sync: Dict[int, List[int]] = {
            tid: sorted(
                int(p) for p in np.flatnonzero(plan.cols[tid].kinds == 2)
            )
            for tid in plan.cols
        }
        self.race: Optional[RaceException] = None
        self.race_position: Optional[int] = None

    def run(self) -> None:
        monitor = self.monitor
        monitor.on_thread_start(self.plan.root, None)
        try:
            for sync in self.plan.syncs:
                self._flush(sync.tid, sync.pos)
                self._apply_sync(sync)
                self._cursor[sync.tid] = sync.pos + 1
            for tid in sorted(self.plan.cols):
                self._flush(tid, len(self.plan.cols[tid]))
        except RaceException as exc:
            self.race = exc
        except _Stop:
            pass

    # -- segments ---------------------------------------------------------

    def _flush(self, tid: int, end: int) -> None:
        """Replay ``tid``'s accesses from its cursor up to ``end``."""
        start = self._cursor[tid]
        if end <= start:
            return
        self._cursor[tid] = end
        cols = self.plan.cols[tid]
        base = self.position
        self.position += end - start
        if self.stop_after is not None and self.position > self.stop_after:
            end = start + (self.stop_after - base)
        if self.batch:
            # Columnar hand-off: the decoded trace columns go to the
            # monitor's batch lane without materializing one tuple.
            try:
                self.monitor.check_block(
                    tid,
                    (
                        cols.kinds[start:end] == 1,
                        cols.addresses[start:end],
                        cols.sizes[start:end],
                        cols.private[start:end],
                    ),
                )
            except RaceException:
                self.race_position = None  # batch lane loses the offset
                raise
        else:
            is_write = (cols.kinds[start:end] == 1).tolist()
            addr = cols.addresses[start:end].tolist()
            size = cols.sizes[start:end].tolist()
            private = cols.private[start:end].tolist()
            check = self.monitor._check_one
            for i in range(len(addr)):
                if private[i]:
                    continue
                try:
                    check(tid, is_write[i], addr[i], size[i])
                except RaceException:
                    self.race_position = base + i
                    raise
        if self.stop_after is not None and self.position >= self.stop_after:
            raise _Stop

    # -- synchronization --------------------------------------------------

    def _apply_sync(self, sync: _SyncPoint) -> None:
        monitor = self.monitor
        tid = sync.tid
        kind, _, rest = sync.descriptor.partition(":")
        if kind == "Acquire":
            monitor.on_acquire(tid, rest)
        elif kind == "Release":
            monitor.on_release(tid, rest)
        elif kind == "CondWait":
            # The wait releases the lock; the cond edge happens at wake.
            _cond, _, lock = rest.partition(":")
            monitor.on_release(tid, lock)
        elif kind == "CondWake":
            lock, _, cond = rest.partition(":")
            monitor.on_acquire(tid, lock)
            monitor.on_cond_wake(tid, cond)
        elif kind in ("CondSignal", "CondBroadcast"):
            monitor.on_cond_signal(tid, rest)
        elif kind == "SemWait":
            monitor.on_sem_wait(tid, rest)
        elif kind == "SemPost":
            monitor.on_sem_post(tid, rest)
        elif kind == "BarrierWait":
            name, gen = _barrier_key(rest)
            monitor.on_barrier_arrive(tid, name, gen)
        elif kind == "Spawn":
            child = int(rest)
            monitor.on_thread_start(child, tid)
            monitor.on_spawn(tid, child)
        elif kind == "Join":
            child = int(rest)
            # The child's trailing accesses (after its last sync) happened
            # before this join; replay them before retiring its tid.
            self._flush(child, self._segment_end(child))
            monitor.on_join(tid, child)
        else:
            raise ValueError(f"unknown sync descriptor {sync.descriptor!r}")
        monitor.on_sync_commit(tid, None)
        if sync.order in self.plan.trips:
            key = self.plan.trips[sync.order]
            name, gen = _barrier_key(key)
            for arriver in self.plan.episodes[key]:
                monitor.on_barrier_depart(arriver, name, gen)

    def _segment_end(self, tid: int) -> int:
        """End of ``tid``'s current open segment: its next sync, or EOF."""
        cursor = self._cursor[tid]
        for pos in self._next_sync[tid]:
            if pos >= cursor:
                return pos
        return len(self.plan.cols[tid])


class _Stop(Exception):
    """Internal: the stop-limit bound was reached (not an error)."""


def _run_single(
    plan: _Plan,
    batch: bool,
    max_threads: int,
    layout: EpochLayout,
    stop_after: Optional[int] = None,
) -> Tuple[CleanMonitor, Optional[RaceException], Optional[int]]:
    detector = CleanDetector(max_threads=max_threads, layout=layout)
    monitor = CleanMonitor(detector=detector, max_threads=max_threads)
    monitor.sites = None  # profiling belongs to live runs, not replay
    replay = _MonitorReplay(plan, monitor, batch=batch, stop_after=stop_after)
    replay.run()
    return monitor, replay.race, replay.race_position


def _collect_counters(monitor: CleanMonitor) -> Dict[str, float]:
    from .obs import MetricsRegistry

    registry = MetricsRegistry()
    monitor.accumulate_metrics(registry)
    return {
        name: value
        for name, value in registry.snapshot().items()
        if isinstance(value, (int, float))
    }


def _race_payload(
    race: RaceException, position: Optional[int]
) -> Dict[str, Any]:
    return {
        "kind": race.kind,
        "address": race.address,
        "size": race.size,
        "accessing_tid": race.accessing_tid,
        "prior_writer_tid": race.prior_writer_tid,
        "prior_writer_clock": race.prior_writer_clock,
        "position": position,
    }


# -- the sharded detection phase ----------------------------------------------


class _ShardReplay:
    """One shard's detection pass: full sync stream, owned checks only.

    The shard owns accesses whose start address lies in ``[lo, hi)``.
    Writes it does not own but whose bytes fall inside the shard's
    check-visible range ``[lo - span, hi + span)`` are *broadcast*: their
    epochs install into this shard's table without checks or counters,
    so owned accesses near the boundary see exactly the byte states the
    unsharded table would hold.  Detection is verdict-exact: before the
    execution's first race every shard table matches the unsharded
    table on all bytes its checks can observe.
    """

    def __init__(
        self,
        plan: _Plan,
        detector: CleanDetector,
        lo: int,
        hi: int,
        span: int,
    ) -> None:
        self.plan = plan
        self.detector = detector
        self.lo, self.hi, self.span = lo, hi, span
        self.position = 0
        self.checked = 0
        self._cursor: Dict[int, int] = {tid: 0 for tid in plan.cols}
        self._next_sync: Dict[int, List[int]] = {
            tid: sorted(
                int(p) for p in np.flatnonzero(plan.cols[tid].kinds == 2)
            )
            for tid in plan.cols
        }
        self.race: Optional[RaceException] = None
        self.race_position: Optional[int] = None

    def run(self) -> None:
        self.detector.spawn_root()
        try:
            for sync in self.plan.syncs:
                self._flush(sync.tid, sync.pos)
                self._apply_sync(sync)
                self._cursor[sync.tid] = sync.pos + 1
            for tid in sorted(self.plan.cols):
                self._flush(tid, len(self.plan.cols[tid]))
        except RaceException as exc:
            self.race = exc

    def _flush(self, tid: int, end: int) -> None:
        start = self._cursor[tid]
        if end <= start:
            return
        self._cursor[tid] = end
        cols = self.plan.cols[tid]
        kinds = cols.kinds[start:end]
        addr = cols.addresses[start:end]
        size = cols.sizes[start:end]
        private = cols.private[start:end]
        base = self.position
        self.position += end - start
        shared = ~private
        owned = shared & (addr >= self.lo) & (addr < self.hi)
        is_write = kinds == 1
        broadcast = (
            shared
            & is_write
            & ~owned
            & (addr < self.hi + self.span)
            & (addr + size > self.lo)
        )
        if not owned.any() and not broadcast.any():
            return
        detector = self.detector
        # Walk owned checks and broadcast installs in program order,
        # batching maximal owned runs through check_block.
        action = np.flatnonzero(owned | broadcast)
        block: List[Tuple[bool, int, int]] = []
        block_pos: List[int] = []

        def drain() -> None:
            if not block:
                return
            try:
                detector.check_block(tid, block)
            except RaceException:
                self.race_position = block_pos[detector.block_progress]
                raise
            finally:
                del block[:], block_pos[:]

        for i in action.tolist():
            if owned[i]:
                block.append((bool(is_write[i]), int(addr[i]), int(size[i])))
                block_pos.append(base + i)
                self.checked += 1
            else:
                drain()
                epoch = detector.thread_vc(tid).element(tid)
                shadow = detector.shadow
                a, s = int(addr[i]), int(size[i])
                if hasattr(shadow, "scatter"):
                    shadow.scatter(np.arange(a, a + s, dtype=np.int64), epoch)
                else:
                    for b in range(a, a + s):
                        shadow.store(b, epoch)
        drain()

    def _apply_sync(self, sync: _SyncPoint) -> None:
        detector = self.detector
        tid = sync.tid
        kind, _, rest = sync.descriptor.partition(":")
        if kind == "Acquire":
            detector.acquire(tid, rest)
        elif kind == "Release":
            detector.release(tid, rest)
        elif kind == "CondWait":
            _cond, _, lock = rest.partition(":")
            detector.release(tid, lock)
        elif kind == "CondWake":
            lock, _, cond = rest.partition(":")
            detector.acquire(tid, lock)
            detector.acquire(tid, cond)
        elif kind in ("CondSignal", "CondBroadcast"):
            detector.release(tid, rest)
        elif kind == "SemWait":
            detector.acquire(tid, rest)
        elif kind == "SemPost":
            detector.release(tid, rest)
        elif kind == "BarrierWait":
            detector.release(tid, _barrier_key(rest))
        elif kind == "Spawn":
            detector.fork(tid, int(rest))
        elif kind == "Join":
            child = int(rest)
            self._flush(child, self._segment_end(child))
            detector.join(tid, child)
        else:
            raise ValueError(f"unknown sync descriptor {sync.descriptor!r}")
        if sync.order in self.plan.trips:
            key = self.plan.trips[sync.order]
            for arriver in self.plan.episodes[key]:
                detector.acquire(arriver, _barrier_key(key))

    def _segment_end(self, tid: int) -> int:
        cursor = self._cursor[tid]
        for pos in self._next_sync[tid]:
            if pos >= cursor:
                return pos
        return len(self.plan.cols[tid])


def _shard_job(
    trace: str,
    shard: int,
    lo: int,
    hi: int,
    span: int,
    max_threads: int,
    salvage: bool = False,
) -> Dict[str, Any]:
    """Job entry point: run one shard's detection pass over a trace file."""
    plan = _Plan(open_trace(trace, salvage=bool(salvage)))
    detector = CleanDetector(
        max_threads=int(max_threads), layout=DEFAULT_LAYOUT
    )
    shard_index = int(shard)
    shard = _ShardReplay(
        plan, detector, lo=int(lo), hi=int(hi), span=int(span)
    )
    shard.run()
    out: Dict[str, Any] = {
        "shard": shard_index,
        "lo": int(lo),
        "hi": int(hi),
        "checked": shard.checked,
        "racy": shard.race is not None,
        "race": None,
    }
    if shard.race is not None:
        out["race"] = _race_payload(shard.race, shard.race_position)
    return out


def _shard_bounds(plan: _Plan, shards: int) -> List[Tuple[int, int]]:
    """Contiguous address ranges covering every shared access."""
    addrs: List[np.ndarray] = []
    for cols in plan.cols.values():
        mask = (cols.kinds != 2) & ~cols.private
        if mask.any():
            addrs.append(cols.addresses[mask])
    if not addrs:
        return [(0, 1)] * shards
    lo = int(min(int(a.min()) for a in addrs))
    hi = int(max(int(a.max()) for a in addrs)) + 1
    cuts = np.linspace(lo, hi, shards + 1).astype(np.int64).tolist()
    cuts[0], cuts[-1] = lo, hi
    return [(int(cuts[i]), int(cuts[i + 1])) for i in range(shards)]


def _max_span(plan: _Plan) -> int:
    spans = [
        int(cols.sizes[cols.kinds != 2].max())
        for cols in plan.cols.values()
        if (cols.kinds != 2).any()
    ]
    return max(spans, default=1)


# -- hot-site ranking ---------------------------------------------------------


def _hot_sites(
    plan: _Plan, top_k: int, race: Optional[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """Top ``top_k`` shared addresses by access count, reads/writes split.

    Pure column arithmetic over the replay plan (no detector state):
    per-thread ``np.unique`` histograms of shared read/write start
    addresses, merged across threads, ranked by total accesses with the
    address as deterministic tie-break.  When the analysis found a race
    the racing address is flagged in its entry.
    """
    reads: Dict[int, int] = {}
    writes: Dict[int, int] = {}
    threads: Dict[int, set] = {}
    for tid, cols in plan.cols.items():
        shared = (cols.kinds != 2) & ~cols.private
        for counts, mask in ((reads, cols.kinds == 0), (writes, cols.kinds == 1)):
            addrs, tallies = np.unique(
                cols.addresses[shared & mask], return_counts=True
            )
            for addr, n in zip(addrs.tolist(), tallies.tolist()):
                counts[addr] = counts.get(addr, 0) + n
                threads.setdefault(addr, set()).add(tid)
    race_addr = race.get("address") if race else None
    ranked = sorted(
        set(reads) | set(writes),
        key=lambda a: (-(reads.get(a, 0) + writes.get(a, 0)), a),
    )
    return [
        {
            "address": addr,
            "accesses": reads.get(addr, 0) + writes.get(addr, 0),
            "reads": reads.get(addr, 0),
            "writes": writes.get(addr, 0),
            "threads": len(threads.get(addr, ())),
            "racy": addr == race_addr,
        }
        for addr in ranked[:top_k]
    ]


# -- the public entry point ---------------------------------------------------


def analyze_trace(
    trace: Union[str, Trace, StreamingTrace],
    mode: str = "batch",
    shards: int = 0,
    workers: Optional[int] = None,
    max_threads: Optional[int] = None,
    layout: EpochLayout = DEFAULT_LAYOUT,
    salvage: bool = False,
    hot_sites: int = 0,
) -> AnalysisReport:
    """Race-analyze a recorded trace offline.

    ``trace`` is a path or an in-memory/streaming trace.  ``mode`` is
    ``"scalar"``, ``"batch"`` (default) or ``"sharded"``; sharded mode
    needs a file path (workers re-open the trace) and splits detection
    across ``shards`` address ranges executed by ``workers`` processes
    (defaults: shards = workers = CPU count).  All three modes return
    identical verdicts, racing pairs and counter totals.  With
    ``hot_sites`` > 0 the report additionally ranks the top-K shared
    addresses by access count (the service's ``/report`` diagnostics).
    """
    path: Optional[str] = None
    if isinstance(trace, (str,)) or hasattr(trace, "__fspath__"):
        path = str(trace)
        trace = open_trace(path, salvage=salvage)
    plan = _Plan(trace)
    if max_threads is None:
        max_threads = max(plan.min_max_threads(), 2)

    if mode in ("scalar", "batch"):
        monitor, race, position = _run_single(
            plan, batch=(mode == "batch"), max_threads=max_threads,
            layout=layout,
        )
        payload = _race_payload(race, position) if race is not None else None
        return AnalysisReport(
            mode=mode,
            racy=race is not None,
            race=payload,
            threads=plan.threads,
            events=plan.events,
            accesses=plan.accesses,
            syncs=len(plan.syncs),
            counters=_collect_counters(monitor),
            hot_sites=(
                _hot_sites(plan, hot_sites, payload) if hot_sites > 0 else []
            ),
        )

    if mode != "sharded":
        raise ValueError(f"unknown analysis mode {mode!r}")

    import os

    if workers is None:
        workers = max(os.cpu_count() or 1, 1)
    if shards <= 0:
        shards = workers
    if path is None:
        raise ValueError(
            "sharded analysis needs a trace file path (workers re-open it)"
        )

    from .exec.job import Job
    from .exec.runner import JobRunner

    bounds = _shard_bounds(plan, shards)
    span = _max_span(plan)
    jobs = [
        Job(
            fn="repro.analysis:_shard_job",
            config={
                "trace": path,
                "shard": i,
                "lo": lo,
                "hi": hi,
                "span": span,
                "max_threads": max_threads,
                "salvage": bool(salvage),
            },
            name=f"shard-{i}",
            group="analysis",
        )
        for i, (lo, hi) in enumerate(bounds)
    ]
    runner = JobRunner(workers=workers, retries=0, job_telemetry=False)
    results = runner.run(jobs)
    shard_stats: List[Dict[str, Any]] = []
    winner: Optional[Dict[str, Any]] = None
    for result in results:  # submission order: the merge is deterministic
        if not result.ok:
            raise RuntimeError(
                f"shard job {result.job.name} failed: {result.error}"
            )
        shard_stats.append(result.value)
        race = result.value.get("race")
        if race is not None and (
            winner is None or race["position"] < winner["position"]
        ):
            winner = race

    # Exact counters: replay the batch lane up to (and including) the
    # merged race position — the canonical order makes this land on the
    # same race — or in full when no shard raced.
    stop = winner["position"] + 1 if winner is not None else None
    monitor, race, _ = _run_single(
        plan, batch=True, max_threads=max_threads, layout=layout,
        stop_after=stop,
    )
    if winner is not None and race is None:
        raise RuntimeError(
            "sharded verdict did not reproduce in the counting replay "
            f"(expected race at position {winner['position']})"
        )
    if winner is None and race is not None:
        raise RuntimeError(
            "counting replay found a race every shard missed "
            f"({race.kind} at {race.address:#x})"
        )
    return AnalysisReport(
        mode="sharded",
        racy=winner is not None,
        race=winner,
        threads=plan.threads,
        events=plan.events,
        accesses=plan.accesses,
        syncs=len(plan.syncs),
        counters=_collect_counters(monitor),
        shards=shards,
        shard_stats=shard_stats,
        hot_sites=(
            _hot_sites(plan, hot_sites, winner) if hot_sites > 0 else []
        ),
    )
