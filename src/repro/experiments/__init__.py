"""Experiment harnesses: one module per paper table/figure.

| Module              | Paper artifact                                   |
|---------------------|--------------------------------------------------|
| ``sec62_detection`` | §6.2.2 detection & determinism validation        |
| ``fig6_software``   | Figure 6: software-CLEAN slowdown breakdown      |
| ``fig7_freq``       | Figure 7: shared-access frequency                |
| ``fig8_vector``     | Figure 8: vectorization impact                   |
| ``table1_rollover`` | Table 1: clock-rollover impact                   |
| ``fig9_hardware``   | Figure 9: hardware detection slowdown            |
| ``fig10_breakdown`` | Figure 10: access breakdowns                     |
| ``fig11_epochsize`` | Figure 11: 1B/4B epoch alternatives              |
| ``report``          | run everything, render all tables                |

Each module exposes ``run(...) -> ExperimentResult`` and a printable
``main()``.
"""

from .common import ExperimentResult, geomean, mean_ci, render_table

__all__ = ["ExperimentResult", "geomean", "mean_ci", "render_table"]
