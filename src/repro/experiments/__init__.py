"""Experiment harnesses: one module per paper table/figure.

| Module              | Paper artifact                                   |
|---------------------|--------------------------------------------------|
| ``sec62_detection`` | §6.2.2 detection & determinism validation        |
| ``fig6_software``   | Figure 6: software-CLEAN slowdown breakdown      |
| ``fig7_freq``       | Figure 7: shared-access frequency                |
| ``fig8_vector``     | Figure 8: vectorization impact                   |
| ``table1_rollover`` | Table 1: clock-rollover impact                   |
| ``fig9_hardware``   | Figure 9: hardware detection slowdown            |
| ``fig10_breakdown`` | Figure 10: access breakdowns                     |
| ``fig11_epochsize`` | Figure 11: 1B/4B epoch alternatives              |
| ``ablations``       | A1-A4: design-choice ablations                   |
| ``hwjobs``          | merged per-benchmark job for Figs. 9-11 + A1     |
| ``report``          | run everything, render all tables                |

Each experiment is split into per-benchmark ``compute(...) -> dict``
jobs (JSON payloads, submittable to :class:`repro.exec.JobRunner`) and
an ``aggregate(payloads) -> ExperimentResult`` step; ``run(...)``
composes the two serially and ``main()`` prints the table.  The
``report`` module fans the jobs out in parallel with checkpoint/resume
and graceful failure handling — see ``docs/experiment_runner.md``.
"""

from .common import ExperimentResult, geomean, mean_ci, render_table

__all__ = ["ExperimentResult", "geomean", "mean_ci", "render_table"]
