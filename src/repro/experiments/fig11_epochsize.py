"""Figure 11: WAW/RAW detection with 1- and 4-byte epochs.

The paper's Figure 11 compares CLEAN's compacted design against two
no-compaction alternatives: hypothetical 8-bit epochs (1 metadata byte
per data byte — the performance upper bound) and full 32-bit epochs per
byte (4 metadata bytes per data byte).  Findings: CLEAN tracks the
upper bound closely thanks to line compaction (except dedup, whose lines
are genuinely expanded), while 4-byte epochs significantly degrade
ocean_cp, ocean_ncp and radix — the highest-baseline-LLC-miss-rate
benchmarks, whose miss rates rise above 9% under the quadrupled metadata.

Machine note: this experiment uses a further-scaled cache hierarchy
(L1 4KB / L2 8KB / L3 64KB) so the scaled workloads' footprints stress
the LLC the way the real simsmall footprints stress the real 16MB LLC —
under 4-byte epochs the ocean/radix metadata exceeds the LLC and their
miss rates jump to ~20%, the paper's ">9%" effect.

Structured as a per-benchmark :func:`compute` step over a recorded
trace plus an :func:`aggregate` step; :func:`run` composes the two
serially.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = ["compute", "aggregate", "run", "main", "FIG11_MACHINE"]

#: Cache capacities scaled so metadata pressure reaches the LLC.
FIG11_MACHINE = dict(l1_size=4 * 1024, l2_size=8 * 1024, l3_size=64 * 1024)


def compute(benchmark: str, trace) -> Dict[str, object]:
    """Normalized time per metadata design for ``benchmark``'s trace."""
    base = simulate_trace(trace, SimConfig(detection=False, **FIG11_MACHINE))
    payload: Dict[str, object] = {"benchmark": benchmark}
    for mode in ("clean", "epoch1", "epoch4"):
        det = simulate_trace(
            trace, SimConfig(detection=True, metadata_mode=mode, **FIG11_MACHINE)
        )
        payload[mode] = det.cycles / base.cycles
        if mode == "epoch4":
            payload["llc4"] = det.hierarchy.stats.llc_miss_rate * 100
    return payload


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 11 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 11",
        title="Race detection with 1-byte / 4-byte epochs (normalized time)",
        columns=["benchmark", "CLEAN", "1B epochs", "4B epochs", "4B LLC miss %"],
    )
    deltas = {}
    gap_to_bound = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        result.add_row(
            p["benchmark"], p["clean"], p["epoch1"], p["epoch4"], p["llc4"]
        )
        deltas[p["benchmark"]] = p["epoch4"] / p["clean"]
        if p["benchmark"] != "dedup":
            gap_to_bound.append(p["clean"] / p["epoch1"])
    if deltas:
        worst3 = sorted(deltas, key=deltas.get, reverse=True)[:3]
        result.summary = [
            f"CLEAN vs 1B-epoch bound (non-dedup geomean ratio): "
            f"{statistics.geometric_mean(gap_to_bound):.3f} (paper: close to 1)",
            f"benchmarks hurt most by 4B epochs: {', '.join(sorted(worst3))} "
            "(paper: ocean_cp, ocean_ncp, radix)",
        ]
    return result


def run(
    scale: str = "simsmall",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """Regenerate Figure 11: normalized time per metadata design."""
    payloads = []
    for name in HW_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        payloads.append(compute(name, trace))
    return aggregate(payloads)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
