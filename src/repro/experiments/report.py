"""Render every experiment, in paper order — the EXPERIMENTS.md generator.

Run as ``python -m repro.experiments.report [options]``.  The report is
built from per-benchmark **jobs** (see :mod:`repro.exec`): every
experiment contributes one job per benchmark (or per clock width), the
:class:`~repro.exec.JobRunner` executes them — optionally across worker
processes (``--jobs N``) with per-job timeouts, retries and an on-disk
checkpoint cache — and the experiments' ``aggregate`` steps assemble
the tables from the job payloads.  Because aggregation consumes
payloads in submission order, ``--jobs 8`` renders byte-identical
tables to a serial run.

Failed jobs do not kill the report: their benchmarks appear as
``FAILED`` rows, the remaining tables render normally, and the process
exits non-zero with a failure summary.

``--fast`` uses reduced scales/run counts for a quick smoke pass; the
default settings match what EXPERIMENTS.md records.  ``--telemetry``
writes a JSONL timeline (one span per experiment plus one per job, via
:mod:`repro.obs`) so slow reproduction passes can be profiled.

Observability options (see docs/observability.md): ``--status PATH``
atomically republishes live progress (totals, running jobs, ETA) as
JSON while the sweep runs; ``--serve PORT`` exposes ``/metrics``
(Prometheus text) and ``/status`` over HTTP for the duration of the
run; ``--prom PATH`` writes a final Prometheus snapshot; ``--sites``
collects hot-site attribution in every worker and prints the merged
top-K table after the report.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional, Sequence

from ..exec import CheckpointStore, Job, JobRunner
from ..obs import (
    JsonlExporter,
    MetricsRegistry,
    StatusFile,
    TelemetryServer,
    Tracer,
    render_prom,
)
from ..workloads.suite import ALL_BENCHMARKS, HW_BENCHMARKS
from . import (
    ablations,
    fig6_software,
    fig7_freq,
    fig8_vector,
    fig9_hardware,
    fig10_breakdown,
    fig11_epochsize,
    sec62_detection,
    table1_rollover,
)
from .common import ExperimentResult

__all__ = ["build_jobs", "run_all", "main"]

#: Aggregation order — one entry per rendered experiment, paper order.
_EXPERIMENT_ORDER = (
    "sec62", "fig6", "fig7", "fig8", "table1",
    "fig9", "fig10", "fig11", "a1", "a2", "a3", "a4",
)


def build_jobs(
    fast: bool = False, inject_failure: Optional[str] = None
) -> List[Job]:
    """The report's full job list, one :class:`Job` per benchmark/sweep
    point, grouped by experiment.

    ``inject_failure`` marks every job of the named benchmark to raise
    (a test hook for the graceful-degradation path — the report must
    render FAILED rows and exit non-zero, not die).
    """
    # The "test" scale is the calibration point for both the software
    # cost model and the hardware machine scaling; larger scales keep the
    # ordering but drift in magnitude (see EXPERIMENTS.md).
    sw_scale = "test"
    hw_scale = "test"
    det_runs = 3 if fast else 10
    sec62_scale = "test" if fast else "simsmall"
    table1_scale = "simsmall" if fast else "simlarge"
    # Figure 11 stresses LLC capacity, which needs the larger footprints
    # of the simsmall-scale traces to materialize.
    fig11_scale = hw_scale if fast else "simsmall"

    sw_names = [s.name for s in ALL_BENCHMARKS if s.style != "lock_free"]
    jobs: List[Job] = []

    def add(group: str, fn: str, name: Any, config: Dict[str, Any]) -> None:
        if inject_failure is not None and (
            config.get("benchmark") == inject_failure
        ):
            config = dict(config, inject_failure=True)
        jobs.append(Job(fn=fn, config=config, name=str(name), group=group))

    for spec in ALL_BENCHMARKS:
        add("sec62", "repro.experiments.sec62_detection:compute", spec.name,
            {"benchmark": spec.name, "scale": sec62_scale, "runs": det_runs})
    for name in sw_names:
        add("fig6", "repro.experiments.fig6_software:compute", name,
            {"benchmark": name, "scale": sw_scale, "seeds": [0]})
    for name in sw_names:
        add("fig7", "repro.experiments.fig7_freq:compute", name,
            {"benchmark": name, "scale": sw_scale, "seed": 0})
    for name in sw_names:
        add("fig8", "repro.experiments.fig8_vector:compute", name,
            {"benchmark": name, "scale": sw_scale, "seed": 0})
    for name in sw_names:
        add("table1", "repro.experiments.table1_rollover:compute", name,
            {"benchmark": name, "scale": table1_scale, "seed": 0})
    # One job per hardware benchmark covering Figures 9-11 and A1: the
    # worker records the trace itself (traces never cross processes).
    for name in HW_BENCHMARKS:
        add("hw", "repro.experiments.hwjobs:compute", name,
            {"benchmark": name, "scale": hw_scale,
             "fig11_scale": fig11_scale, "seed": 0})
    for name in ablations.A1_BENCHMARKS:
        add("a2", "repro.experiments.ablations:compute_atomicity", name,
            {"benchmark": name, "scale": sw_scale, "seed": 0})
    for bits in ablations.A3_CLOCK_BITS:
        add("a3", "repro.experiments.ablations:compute_clock_width",
            f"radiosity/{bits}b",
            {"bits": bits, "benchmark": "radiosity",
             "scale": sw_scale, "seed": 0})
    for name in ablations.A1_BENCHMARKS:
        add("a4", "repro.experiments.ablations:compute_instrumentation", name,
            {"benchmark": name, "scale": sw_scale, "seed": 0})
    return jobs


def _error_payload(job: Job, error: str) -> Dict[str, Any]:
    """The ``{"error": ...}`` payload aggregates turn into FAILED rows."""
    payload: Dict[str, Any] = {"error": error}
    for key in ("benchmark", "bits"):
        if key in job.config:
            payload[key] = job.config[key]
    return payload


def run_all(
    fast: bool = False,
    tracer: Optional[Tracer] = None,
    runner: Optional[JobRunner] = None,
    inject_failure: Optional[str] = None,
) -> List[ExperimentResult]:
    """Run every experiment; returns their results in paper order.

    Without a ``runner`` the jobs execute in-process (serial, no cache);
    a caller-supplied runner brings worker processes, retries, timeouts
    and checkpoint/resume.  Either way the tables are identical: the
    same jobs run, and aggregation consumes payloads in submission
    order.
    """
    tracer = tracer if tracer is not None else Tracer()
    if runner is None:
        runner = JobRunner(tracer=tracer)
    jobs = build_jobs(fast=fast, inject_failure=inject_failure)
    with tracer.span("jobs", count=len(jobs), workers=runner.workers):
        job_results = runner.run(jobs)

    payloads: Dict[str, List[Dict[str, Any]]] = {
        g: [] for g in ("sec62", "fig6", "fig7", "fig8", "table1",
                        "hw", "a2", "a3", "a4")
    }
    for res in job_results:
        payloads[res.job.group].append(
            res.value if res.ok else _error_payload(res.job, res.error)
        )

    # Split the merged hardware payloads into their per-figure streams.
    fig9_p, fig10_p, fig11_p, a1_p = [], [], [], []
    for p in payloads["hw"]:
        if "error" in p:
            failed = {"benchmark": p["benchmark"], "error": p["error"]}
            fig9_p.append(failed)
            fig10_p.append(failed)
            fig11_p.append(failed)
            if p["benchmark"] in ablations.A1_BENCHMARKS:
                a1_p.append(failed)
            continue
        fig9_p.append(p["fig9"])
        fig10_p.append(p["fig10"])
        fig11_p.append(p["fig11"])
        if "a1" in p:
            a1_p.append(p["a1"])

    aggregates = {
        "sec62": lambda: sec62_detection.aggregate(payloads["sec62"]),
        "fig6": lambda: fig6_software.aggregate(payloads["fig6"]),
        "fig7": lambda: fig7_freq.aggregate(payloads["fig7"]),
        "fig8": lambda: fig8_vector.aggregate(payloads["fig8"]),
        "table1": lambda: table1_rollover.aggregate(payloads["table1"]),
        "fig9": lambda: fig9_hardware.aggregate(fig9_p),
        "fig10": lambda: fig10_breakdown.aggregate(fig10_p),
        "fig11": lambda: fig11_epochsize.aggregate(fig11_p),
        "a1": lambda: ablations.aggregate_war(a1_p),
        "a2": lambda: ablations.aggregate_atomicity(payloads["a2"]),
        "a3": lambda: ablations.aggregate_clock_width(payloads["a3"]),
        "a4": lambda: ablations.aggregate_instrumentation(payloads["a4"]),
    }
    results: List[ExperimentResult] = []
    for name in _EXPERIMENT_ORDER:
        with tracer.span(name, fast=fast):
            results.append(aggregates[name]())
    return results


def _write_report_forensics(out_dir: str, runner: JobRunner) -> int:
    """Write a forensics bundle for every raced timeline of the sweep.

    Runs that completed race-free are skipped — a full report records
    hundreds of clean executions and their bundles would bury the
    interesting ones.  Returns how many bundles were written.
    """
    import re

    from ..obs.forensics import write_forensics

    written = 0
    for entry in runner.timelines:
        label = re.sub(r"[^A-Za-z0-9._-]+", "_", entry["job"]).strip("_")
        raced = [
            p
            for p in entry["timelines"]
            if p.get("race") is not None or p.get("race_report") is not None
        ]
        for i, payload in enumerate(raced):
            basename = label if len(raced) == 1 else f"{label}_{i}"
            write_forensics(out_dir, basename, payload)
            written += 1
    return written


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Regenerate every experiment table, in paper order.",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="reduced scales/run counts for a quick smoke pass",
    )
    parser.add_argument(
        "--telemetry", metavar="OUT",
        help="write a JSONL span timeline + metrics snapshot to OUT",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the per-benchmark jobs (default: 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="ignore and do not write the on-disk checkpoint cache",
    )
    parser.add_argument(
        "--cache-dir", default=".cache/experiments", metavar="DIR",
        help="checkpoint cache location (default: .cache/experiments)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-job timeout (needs process workers to enforce)",
    )
    parser.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-attempts per failing job (default: 2)",
    )
    parser.add_argument(
        "--inject-failure", metavar="BENCHMARK",
        help="make BENCHMARK's jobs fail (tests graceful degradation)",
    )
    parser.add_argument(
        "--status", metavar="PATH", default=None,
        help="atomically republish live run progress as JSON to PATH",
    )
    parser.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve /metrics + /status over HTTP during the run "
             "(0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--prom", metavar="PATH", default=None,
        help="write a final Prometheus text snapshot of every metric",
    )
    parser.add_argument(
        "--sites", action="store_true",
        help="collect hot-site attribution in workers and print the "
             "merged top-K table",
    )
    parser.add_argument(
        "--forensics", metavar="DIR", default=None,
        help="record execution timelines in every job and write a "
             "forensics bundle (Chrome trace + HB graph + HTML) per "
             "raced run under DIR",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    exporter = JsonlExporter(args.telemetry) if args.telemetry else None
    tracer = Tracer(exporter)
    registry = MetricsRegistry()
    store = None if args.no_cache else CheckpointStore(args.cache_dir)
    status = StatusFile(args.status) if args.status else None
    runner = JobRunner(
        workers=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        store=store,
        registry=registry,
        tracer=tracer,
        status=status,
        profile_sites=args.sites,
        record_timelines=bool(args.forensics),
    )
    server = None
    if args.serve is not None:
        server = TelemetryServer(
            registry=registry,
            status_fn=runner.status_snapshot,
            port=args.serve,
        )
        server.start()
        print(f"[serving] http://127.0.0.1:{server.port}/metrics "
              f"and /status", flush=True)
    try:
        with tracer.span("report", fast=args.fast) as report_span:
            results = run_all(
                fast=args.fast,
                tracer=tracer,
                runner=runner,
                inject_failure=args.inject_failure,
            )
            for result in results:
                print(result.render())
                print()
        print(f"[report completed in {report_span.duration:.1f}s]")
        print(f"[runner] {runner.summary()}")
        if args.sites and runner.sites is not None:
            print()
            print(runner.sites.render())
        if args.forensics:
            written = _write_report_forensics(args.forensics, runner)
            print(f"[forensics] wrote {written} bundle(s) to {args.forensics}")
        failures = [line for result in results for line in result.failures]
        if failures:
            print(f"[failures] {len(failures)} job(s) failed:")
            for line in failures:
                print(f"  - {line}")
        if args.prom:
            with open(args.prom, "w", encoding="utf-8") as fh:
                fh.write(render_prom(registry))
            print(f"[prom] wrote metrics snapshot to {args.prom}")
        if exporter is not None:
            exporter.export_metrics(registry, label="report")
            exporter.close()
    finally:
        if server is not None:
            server.stop()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
