"""Render every experiment, in paper order — the EXPERIMENTS.md generator.

Run as ``python -m repro.experiments.report [--fast] [--telemetry OUT]``.
``--fast`` uses reduced scales/run counts for a quick smoke pass; the
default settings match what EXPERIMENTS.md records.  ``--telemetry``
writes a JSONL timeline (one span per experiment, via
:mod:`repro.obs`) so slow reproduction passes can be profiled.
"""

from __future__ import annotations

import sys
from typing import List, Optional, Sequence

from ..obs import JsonlExporter, Tracer
from . import (
    ablations,
    fig6_software,
    fig7_freq,
    fig8_vector,
    fig9_hardware,
    fig10_breakdown,
    fig11_epochsize,
    sec62_detection,
    table1_rollover,
)
from .common import ExperimentResult
from .traces import record_all_traces

__all__ = ["run_all", "main"]


def run_all(
    fast: bool = False, tracer: Optional[Tracer] = None
) -> List[ExperimentResult]:
    """Run every experiment; returns their results in paper order.

    Each experiment runs inside a tracer span named after it, so a
    caller-supplied tracer yields a per-figure timing breakdown.
    """
    tracer = tracer if tracer is not None else Tracer()
    results: List[ExperimentResult] = []
    # The "test" scale is the calibration point for both the software
    # cost model and the hardware machine scaling; larger scales keep the
    # ordering but drift in magnitude (see EXPERIMENTS.md).
    sw_scale = "test"
    hw_scale = "test"
    det_runs = 3 if fast else 10

    def staged(name, thunk):
        with tracer.span(name, fast=fast):
            results.append(thunk())

    staged("sec62", lambda: sec62_detection.run(
        scale="test" if fast else "simsmall", runs=det_runs))
    staged("fig6", lambda: fig6_software.run(scale=sw_scale))
    staged("fig7", lambda: fig7_freq.run(scale=sw_scale))
    staged("fig8", lambda: fig8_vector.run(scale=sw_scale))
    staged("table1", lambda: table1_rollover.run(
        scale="simsmall" if fast else "simlarge"))
    with tracer.span("record_traces", scale=hw_scale):
        traces = record_all_traces(scale=hw_scale)
    staged("fig9", lambda: fig9_hardware.run(traces=traces))
    staged("fig10", lambda: fig10_breakdown.run(traces=traces))
    # Figure 11 stresses LLC capacity, which needs the larger footprints
    # of the simsmall-scale traces to materialize.
    if fast:
        fig11_traces = traces
    else:
        with tracer.span("record_traces", scale="simsmall"):
            fig11_traces = record_all_traces(scale="simsmall")
    staged("fig11", lambda: fig11_epochsize.run(traces=fig11_traces))
    staged("ablation_war", lambda: ablations.run_war_precision(traces=traces))
    staged("ablation_atomicity", lambda: ablations.run_atomicity())
    staged("ablation_clock_width", lambda: ablations.run_clock_width())
    staged("ablation_instrumentation", lambda: ablations.run_instrumentation())
    return results


def main(argv: Optional[Sequence[str]] = None) -> None:
    argv = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in argv
    exporter = None
    if "--telemetry" in argv:
        exporter = JsonlExporter(argv[argv.index("--telemetry") + 1])
    tracer = Tracer(exporter)
    with tracer.span("report", fast=fast) as report_span:
        for result in run_all(fast=fast, tracer=tracer):
            print(result.render())
            print()
    print(f"[report completed in {report_span.duration:.1f}s]")
    if exporter is not None:
        exporter.close()


if __name__ == "__main__":
    main()
