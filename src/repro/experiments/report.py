"""Render every experiment, in paper order — the EXPERIMENTS.md generator.

Run as ``python -m repro.experiments.report [--fast]``.  ``--fast`` uses
reduced scales/run counts for a quick smoke pass; the default settings
match what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
import time
from typing import List

from . import (
    ablations,
    fig6_software,
    fig7_freq,
    fig8_vector,
    fig9_hardware,
    fig10_breakdown,
    fig11_epochsize,
    sec62_detection,
    table1_rollover,
)
from .common import ExperimentResult
from .traces import record_all_traces

__all__ = ["run_all", "main"]


def run_all(fast: bool = False) -> List[ExperimentResult]:
    """Run every experiment; returns their results in paper order."""
    results: List[ExperimentResult] = []
    # The "test" scale is the calibration point for both the software
    # cost model and the hardware machine scaling; larger scales keep the
    # ordering but drift in magnitude (see EXPERIMENTS.md).
    sw_scale = "test"
    hw_scale = "test"
    det_runs = 3 if fast else 10

    results.append(sec62_detection.run(scale="test" if fast else "simsmall",
                                       runs=det_runs))
    results.append(fig6_software.run(scale=sw_scale))
    results.append(fig7_freq.run(scale=sw_scale))
    results.append(fig8_vector.run(scale=sw_scale))
    results.append(table1_rollover.run(scale="simsmall" if fast else "simlarge"))
    traces = record_all_traces(scale=hw_scale)
    results.append(fig9_hardware.run(traces=traces))
    results.append(fig10_breakdown.run(traces=traces))
    # Figure 11 stresses LLC capacity, which needs the larger footprints
    # of the simsmall-scale traces to materialize.
    fig11_traces = (
        traces if fast else record_all_traces(scale="simsmall")
    )
    results.append(fig11_epochsize.run(traces=fig11_traces))
    results.append(ablations.run_war_precision(traces=traces))
    results.append(ablations.run_atomicity())
    results.append(ablations.run_clock_width())
    results.append(ablations.run_instrumentation())
    return results


def main() -> None:
    fast = "--fast" in sys.argv
    started = time.time()
    for result in run_all(fast=fast):
        print(result.render())
        print()
    print(f"[report completed in {time.time() - started:.1f}s]")


if __name__ == "__main__":
    main()
