"""Section 6.2.2: detected races and determinism.

The paper's two validation experiments:

1. Run the *unmodified* benchmarks 100 times each (simlarge input): all
   17 racy benchmarks always end with a race exception.
2. Run the race-free ("modified") versions 100 times: no execution ever
   raises, and program output, final deterministic counters, and shared
   access counts are identical across runs — the executions are
   deterministic.

We additionally verify, as the methodology implies, that a
ThreadSanitizer-like detector finds races in the racy variants and
nothing in the race-free ones.
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines.tsanlite import TsanLiteDetector
from ..clean import CleanMonitor, clean_stack
from ..core.detector import CleanDetector
from ..runtime.scheduler import RandomPolicy
from ..workloads.kernels import build_program
from ..workloads.suite import ALL_BENCHMARKS, RACY_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["compute", "aggregate", "run", "main"]


def _run_once(spec, scale, racy, schedule_seed, program_seed=0):
    """One run: the *same* program (fixed ``program_seed``) under a
    varying schedule — the paper repeats runs of one binary; schedule
    seeds model its timing variation.

    Goes through :func:`~repro.clean.run_clean` so an ambient
    :class:`~repro.obs.timeline.TimelineSink` (``report --forensics``)
    captures each run's execution timeline; without one this is
    exactly the old ``clean_stack`` + ``program.run`` path."""
    from ..clean import run_clean

    program = build_program(spec, scale=scale, racy=racy, seed=program_seed)
    return run_clean(
        program, policy=RandomPolicy(schedule_seed), max_threads=24
    )


def compute(benchmark: str, scale: str = "simsmall", runs: int = 10) -> dict:
    """Per-benchmark job: exception counts for the racy variant and
    exception/determinism behaviour of the race-free variant."""
    spec = get_benchmark(benchmark)
    payload: dict = {"benchmark": benchmark, "runs": runs}
    if spec.racy:
        exceptions = 0
        for seed in range(runs):
            outcome = _run_once(spec, scale, racy=True, schedule_seed=seed)
            if outcome.race is not None:
                exceptions += 1
        payload["racy_exceptions"] = exceptions
    if spec.style != "lock_free":  # canneal has no race-free variant
        fingerprints = set()
        exceptions = 0
        for seed in range(runs):
            outcome = _run_once(spec, scale, racy=False, schedule_seed=seed)
            if outcome.race is not None:
                exceptions += 1
            fingerprints.add(outcome.fingerprint())
        payload["racefree_exceptions"] = exceptions
        payload["deterministic"] = len(fingerprints) == 1 and exceptions == 0
    return payload


def aggregate(payloads: List[dict]) -> ExperimentResult:
    """Assemble the Section 6.2.2 table from per-benchmark payloads."""
    result = ExperimentResult(
        experiment="Section 6.2.2",
        title="Detected races and determinism of exception-free runs",
        columns=["benchmark", "variant", "runs", "exceptions", "deterministic"],
    )
    always_stopped: List[str] = []
    never_stopped_racefree = True
    all_deterministic = True
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        runs = p["runs"]
        if "racy_exceptions" in p:
            exceptions = p["racy_exceptions"]
            result.add_row(p["benchmark"], "unmodified", runs, exceptions, "-")
            if exceptions == runs:
                always_stopped.append(p["benchmark"])
        if "racefree_exceptions" in p:
            result.add_row(
                p["benchmark"],
                "race-free",
                runs,
                p["racefree_exceptions"],
                str(p["deterministic"]),
            )
            never_stopped_racefree &= p["racefree_exceptions"] == 0
            all_deterministic &= p["deterministic"]
    result.summary = [
        f"racy benchmarks always stopped: {len(always_stopped)}/"
        f"{len(RACY_BENCHMARKS)} (paper: 17/17)",
        f"race-free runs never raised: {never_stopped_racefree} (paper: true)",
        f"race-free runs deterministic: {all_deterministic} (paper: true)",
    ]
    return result


def run(scale: str = "simsmall", runs: int = 10) -> ExperimentResult:
    """Regenerate the Section 6.2.2 validation.

    ``runs`` plays the role of the paper's 100 repetitions (each run uses
    a distinct scheduling seed, which is *stronger* than the paper's
    wall-clock timing variation); pass ``runs=100`` for the full-scale
    version — the benchmark harness uses a smaller default to stay fast.
    """
    return aggregate(
        [compute(spec.name, scale=scale, runs=runs) for spec in ALL_BENCHMARKS]
    )


def tsan_methodology_check(scale: str = "simsmall", seed: int = 0) -> dict:
    """The paper's race-removal methodology: the TSan-like detector finds
    races in every racy variant and none in the race-free variants."""
    found = {}
    for spec in ALL_BENCHMARKS:
        if spec.racy:
            tsan = TsanLiteDetector(max_threads=24)
            program = build_program(spec, scale=scale, racy=True, seed=seed)
            program.run(
                policy=RandomPolicy(seed),
                monitors=[CleanMonitor(detector=tsan)],
                max_threads=24,
            )
            found[spec.name] = tsan.racy
    return found


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
