"""Section 6.2.2: detected races and determinism.

The paper's two validation experiments:

1. Run the *unmodified* benchmarks 100 times each (simlarge input): all
   17 racy benchmarks always end with a race exception.
2. Run the race-free ("modified") versions 100 times: no execution ever
   raises, and program output, final deterministic counters, and shared
   access counts are identical across runs — the executions are
   deterministic.

We additionally verify, as the methodology implies, that a
ThreadSanitizer-like detector finds races in the racy variants and
nothing in the race-free ones.
"""

from __future__ import annotations

from typing import List, Optional

from ..baselines.tsanlite import TsanLiteDetector
from ..clean import CleanMonitor, clean_stack
from ..core.detector import CleanDetector
from ..runtime.scheduler import RandomPolicy
from ..workloads.kernels import build_program
from ..workloads.suite import ALL_BENCHMARKS, RACY_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["run", "main"]


def _run_once(spec, scale, racy, schedule_seed, program_seed=0):
    """One run: the *same* program (fixed ``program_seed``) under a
    varying schedule — the paper repeats runs of one binary; schedule
    seeds model its timing variation."""
    monitors, _clean, _gate = clean_stack(max_threads=24)
    program = build_program(spec, scale=scale, racy=racy, seed=program_seed)
    return program.run(
        policy=RandomPolicy(schedule_seed), monitors=monitors, max_threads=24
    )


def run(scale: str = "simsmall", runs: int = 10) -> ExperimentResult:
    """Regenerate the Section 6.2.2 validation.

    ``runs`` plays the role of the paper's 100 repetitions (each run uses
    a distinct scheduling seed, which is *stronger* than the paper's
    wall-clock timing variation); pass ``runs=100`` for the full-scale
    version — the benchmark harness uses a smaller default to stay fast.
    """
    result = ExperimentResult(
        experiment="Section 6.2.2",
        title="Detected races and determinism of exception-free runs",
        columns=["benchmark", "variant", "runs", "exceptions", "deterministic"],
    )
    always_stopped: List[str] = []
    never_stopped_racefree = True
    all_deterministic = True
    for spec in ALL_BENCHMARKS:
        if spec.racy:
            exceptions = 0
            for seed in range(runs):
                outcome = _run_once(spec, scale, racy=True, schedule_seed=seed)
                if outcome.race is not None:
                    exceptions += 1
            result.add_row(spec.name, "unmodified", runs, exceptions, "-")
            if exceptions == runs:
                always_stopped.append(spec.name)
        if spec.style == "lock_free":
            continue  # no race-free variant (canneal)
        fingerprints = set()
        exceptions = 0
        for seed in range(runs):
            outcome = _run_once(spec, scale, racy=False, schedule_seed=seed)
            if outcome.race is not None:
                exceptions += 1
            fingerprints.add(outcome.fingerprint())
        deterministic = len(fingerprints) == 1 and exceptions == 0
        result.add_row(
            spec.name, "race-free", runs, exceptions, str(deterministic)
        )
        never_stopped_racefree &= exceptions == 0
        all_deterministic &= deterministic
    result.summary = [
        f"racy benchmarks always stopped: {len(always_stopped)}/"
        f"{len(RACY_BENCHMARKS)} (paper: 17/17)",
        f"race-free runs never raised: {never_stopped_racefree} (paper: true)",
        f"race-free runs deterministic: {all_deterministic} (paper: true)",
    ]
    return result


def tsan_methodology_check(scale: str = "simsmall", seed: int = 0) -> dict:
    """The paper's race-removal methodology: the TSan-like detector finds
    races in every racy variant and none in the race-free variants."""
    found = {}
    for spec in ALL_BENCHMARKS:
        if spec.racy:
            tsan = TsanLiteDetector(max_threads=24)
            program = build_program(spec, scale=scale, racy=True, seed=seed)
            program.run(
                policy=RandomPolicy(seed),
                monitors=[CleanMonitor(detector=tsan)],
                max_threads=24,
            )
            found[spec.name] = tsan.racy
    return found


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
