"""Trace production for the hardware experiments (Figures 9-11).

The hardware evaluation replays per-thread access traces recorded from
the cooperative runtime, exactly as the paper's Pin-based simulator
observes the running benchmark.  Traces use the race-free variants (the
performance experiments cannot tolerate race exceptions) at simsmall
scale, and facesim is omitted, both as in Section 6.3.1.
"""

from __future__ import annotations

from typing import Dict

from ..runtime.scheduler import RoundRobinPolicy
from ..runtime.trace import Trace, TraceRecorder
from ..workloads.kernels import build_program
from ..workloads.spec import BenchmarkSpec
from ..workloads.suite import HW_BENCHMARKS, get_benchmark

__all__ = ["record_trace", "record_all_traces"]


def record_trace(
    spec: BenchmarkSpec, scale: str = "simsmall", seed: int = 0
) -> Trace:
    """Run ``spec``'s race-free variant and record its access trace."""
    recorder = TraceRecorder()
    program = build_program(spec, scale=scale, racy=False, seed=seed)
    program.run(
        policy=RoundRobinPolicy(),
        monitors=[recorder],
        max_threads=16,
        raise_on_race=True,
    )
    return recorder.trace


def record_all_traces(scale: str = "simsmall", seed: int = 0) -> Dict[str, Trace]:
    """Traces of every hardware-experiment benchmark, by name."""
    return {
        name: record_trace(get_benchmark(name), scale=scale, seed=seed)
        for name in HW_BENCHMARKS
    }
