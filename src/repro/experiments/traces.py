"""Trace production for the hardware experiments (Figures 9-11).

The hardware evaluation replays per-thread access traces recorded from
the cooperative runtime, exactly as the paper's Pin-based simulator
observes the running benchmark.  Traces use the race-free variants (the
performance experiments cannot tolerate race exceptions) at simsmall
scale, and facesim is omitted, both as in Section 6.3.1.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from ..runtime.scheduler import RoundRobinPolicy
from ..runtime.trace import Trace, TraceRecorder, open_trace
from ..workloads.kernels import build_program
from ..workloads.spec import BenchmarkSpec
from ..workloads.suite import HW_BENCHMARKS, get_benchmark

__all__ = ["record_trace", "record_trace_file", "record_all_traces"]


def record_trace(
    spec: BenchmarkSpec, scale: str = "simsmall", seed: int = 0,
    racy: bool = False,
) -> Trace:
    """Run ``spec`` detector-free and record its access trace.

    Recording is always record-only (no detector attached): a live
    detector raises *before* the racing access reaches the recorder, so
    a detection-recorded racy trace would end just short of its race.
    ``racy=True`` records the benchmark's seeded-race variant for
    offline analysis (``python -m repro analyze``).
    """
    recorder = TraceRecorder()
    program = build_program(spec, scale=scale, racy=racy, seed=seed)
    program.run(
        policy=RoundRobinPolicy(),
        monitors=[recorder],
        max_threads=16,
        raise_on_race=True,
    )
    return recorder.trace


def record_trace_file(
    benchmark: str,
    out: Union[str, Path],
    scale: str = "simsmall",
    seed: int = 0,
    racy: bool = False,
) -> str:
    """Job form of :func:`record_trace`: record ``benchmark``'s trace and
    save it (binary format) to ``out``, returning the path.

    Traces are too large to ship through job-result JSON, so parallel
    trace recording goes through the filesystem: workers write binary
    trace files, the parent replays them with :func:`open_trace`.
    """
    trace = record_trace(
        get_benchmark(benchmark), scale=scale, seed=seed, racy=racy
    )
    trace.save(out)
    return str(out)


def record_all_traces(
    scale: str = "simsmall",
    seed: int = 0,
    runner=None,
    out_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Trace]:
    """Traces of every hardware-experiment benchmark, by name.

    With a :class:`repro.exec.JobRunner`, recording fans out across its
    workers via :func:`record_trace_file`; the returned traces then
    stream from disk.  ``out_dir`` keeps the files (defaults to a
    temporary directory that lives as long as the traces do).
    """
    if runner is None:
        return {
            name: record_trace(get_benchmark(name), scale=scale, seed=seed)
            for name in HW_BENCHMARKS
        }
    from ..exec import Job

    if out_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-traces-")
        out_dir = tmp.name
    else:
        tmp = None
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    jobs = [
        Job(
            fn="repro.experiments.traces:record_trace_file",
            config={
                "benchmark": name,
                "out": str(out_dir / f"{name}-{scale}-{seed}.trace"),
                "scale": scale,
                "seed": seed,
            },
            name=name,
            group="record_traces",
        )
        for name in HW_BENCHMARKS
    ]
    traces: Dict[str, Trace] = {}
    for result in runner.run(jobs):
        if not result.ok:
            raise RuntimeError(
                f"trace recording failed for {result.job.name}: {result.error}"
            )
        if not Path(result.value).exists():
            # A checkpoint-served path whose file has since been cleaned
            # up (e.g. it lived in a previous run's temporary directory):
            # fall back to recording in-process.
            traces[result.job.name] = record_trace(
                get_benchmark(result.job.name), scale=scale, seed=seed
            )
        else:
            traces[result.job.name] = open_trace(result.value)
    if tmp is not None:
        # Tie the tempdir's lifetime to the returned traces.
        for trace in traces.values():
            trace._tmpdir = tmp  # type: ignore[attr-defined]
    return traces
