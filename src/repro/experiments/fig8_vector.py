"""Figure 8: the impact of vectorization on race-check cost.

The paper's Figure 8 compares the race-detection slowdown with and
without the Section-4.4 multi-byte optimization (wide CAS updates plus
vector verification that all bytes of an access share one epoch).  The
optimization works because (i) on average more than 91.9% of shared
accesses are 4+ bytes wide, and (ii) for more than 99.7% of shared
accesses the epochs of all accessed bytes are equal.
"""

from __future__ import annotations

import statistics
from typing import Optional

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS
from .common import ExperimentResult

__all__ = ["run", "main"]


def run(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 8: detection slowdown, vectorized vs. not."""
    result = ExperimentResult(
        experiment="Figure 8",
        title="Impact of vectorization on WAW/RAW detection slowdown",
        columns=[
            "benchmark",
            "vectorized",
            "not vectorized",
            "gain",
            "wide-access %",
            "uniform-epoch %",
        ],
    )
    gains, wides, uniforms = [], [], []
    for spec in ALL_BENCHMARKS:
        if spec.style == "lock_free":
            continue
        with_vec = run_software_clean(spec, scale=scale, seed=seed, vectorized=True)
        without = run_software_clean(spec, scale=scale, seed=seed, vectorized=False)
        gain = without.slowdown_detection / with_vec.slowdown_detection
        wide = with_vec.stats.fraction_wide * 100
        uniform = with_vec.stats.fraction_uniform_epoch * 100
        result.add_row(
            spec.name,
            with_vec.slowdown_detection,
            without.slowdown_detection,
            gain,
            wide,
            uniform,
        )
        gains.append(gain)
        wides.append(wide)
        uniforms.append(uniform)
    result.summary = [
        f"mean vectorization gain: {statistics.mean(gains):.2f}x",
        f"mean wide-access share:  {statistics.mean(wides):.1f}% "
        "(paper: >91.9%)",
        f"mean uniform-epoch share: {statistics.mean(uniforms):.1f}% "
        "(paper: >99.7% per benchmark)",
    ]
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
