"""Figure 8: the impact of vectorization on race-check cost.

The paper's Figure 8 compares the race-detection slowdown with and
without the Section-4.4 multi-byte optimization (wide CAS updates plus
vector verification that all bytes of an access share one epoch).  The
optimization works because (i) on average more than 91.9% of shared
accesses are 4+ bytes wide, and (ii) for more than 99.7% of shared
accesses the epochs of all accessed bytes are equal.

Structured as per-benchmark :func:`compute` jobs plus an
:func:`aggregate` step; :func:`run` composes the two serially.
"""

from __future__ import annotations

import statistics
from typing import Dict, List

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["compute", "aggregate", "run", "main"]


def compute(benchmark: str, scale: str = "test", seed: int = 0) -> Dict[str, object]:
    """Per-benchmark job: detection slowdown with and without vectorization."""
    spec = get_benchmark(benchmark)
    with_vec = run_software_clean(spec, scale=scale, seed=seed, vectorized=True)
    without = run_software_clean(spec, scale=scale, seed=seed, vectorized=False)
    return {
        "benchmark": benchmark,
        "vectorized": with_vec.slowdown_detection,
        "scalar": without.slowdown_detection,
        "wide_pct": with_vec.stats.fraction_wide * 100,
        "uniform_pct": with_vec.stats.fraction_uniform_epoch * 100,
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 8 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 8",
        title="Impact of vectorization on WAW/RAW detection slowdown",
        columns=[
            "benchmark",
            "vectorized",
            "not vectorized",
            "gain",
            "wide-access %",
            "uniform-epoch %",
        ],
    )
    gains, wides, uniforms = [], [], []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        gain = p["scalar"] / p["vectorized"]
        result.add_row(
            p["benchmark"],
            p["vectorized"],
            p["scalar"],
            gain,
            p["wide_pct"],
            p["uniform_pct"],
        )
        gains.append(gain)
        wides.append(p["wide_pct"])
        uniforms.append(p["uniform_pct"])
    if gains:
        result.summary = [
            f"mean vectorization gain: {statistics.mean(gains):.2f}x",
            f"mean wide-access share:  {statistics.mean(wides):.1f}% "
            "(paper: >91.9%)",
            f"mean uniform-epoch share: {statistics.mean(uniforms):.1f}% "
            "(paper: >99.7% per benchmark)",
        ]
    return result


def run(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 8: detection slowdown, vectorized vs. not."""
    return aggregate(
        [
            compute(spec.name, scale=scale, seed=seed)
            for spec in ALL_BENCHMARKS
            if spec.style != "lock_free"
        ]
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
