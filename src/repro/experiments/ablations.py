"""Ablations: the design choices CLEAN's evaluation motivates but does
not plot, quantified with this repository's machinery.

A1 — **WAR precision in hardware** (Sections 3.2, 7): the same simulator
     hosting a FastTrack-complete check unit (read metadata maintained
     and scanned) instead of CLEAN's WAW/RAW-only unit.  The paper cites
     RADISH-class designs at up to 3x; CLEAN's entire efficiency story
     is dropping exactly this work.

A2 — **CAS vs lock-based check atomicity** (Section 4.3): the paper
     cites >40% of detection overhead going to locking in lock-based
     detectors; CLEAN's CAS scheme avoids it.  Priced through the cost
     model on measured event counts.

A3 — **Clock width** (Section 4.5): rollover count and total reset cost
     as a function of the epoch clock width, on the most sync-intensive
     benchmark — why the 23-bit default is comfortably wide and what a
     too-narrow clock would cost.

A4 — **Instrumentation precision** (Section 4.1): the cost of the
     conservative everything-instrumented shared-access estimate versus
     a perfect escape analysis, swept over the fraction of private
     accesses the compiler fails to prove private.
"""

from __future__ import annotations

import statistics
from typing import Dict, Optional

from ..core.epoch import EpochLayout
from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..swclean.costmodel import DEFAULT_PARAMS
from ..swclean.runner import run_software_clean
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = [
    "run_war_precision",
    "run_atomicity",
    "run_clock_width",
    "run_instrumentation",
    "main",
]

#: Benchmarks used by the A1 sweep (a representative spread: the density
#: outliers, a barrier code, a lock code, the byte-granular pipeline).
A1_BENCHMARKS = ("fft", "lu_cb", "barnes", "radiosity", "dedup", "swaptions")


def run_war_precision(
    scale: str = "test",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """A1: CLEAN's unit vs a precise (WAR-detecting) hardware unit."""
    result = ExperimentResult(
        experiment="Ablation A1",
        title="Hardware detection: CLEAN (WAW/RAW) vs precise (adds WAR)",
        columns=["benchmark", "CLEAN", "precise", "precision cost"],
    )
    ratios = []
    for name in A1_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None and name in traces
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        base = simulate_trace(trace, SimConfig(detection=False))
        clean = simulate_trace(trace, SimConfig(detection=True))
        precise = simulate_trace(
            trace, SimConfig(detection=True, check_unit="precise")
        )
        s_clean = clean.cycles / base.cycles
        s_precise = precise.cycles / base.cycles
        result.add_row(name, s_clean, s_precise, s_precise / s_clean)
        ratios.append(s_precise / s_clean)
    result.summary = [
        f"mean precision cost: {statistics.mean(ratios):.2f}x over CLEAN",
        f"worst precise slowdown: {max(result.column('precise')):.2f}x "
        "(paper: RADISH-class detectors reach up to 3x)",
    ]
    return result


def run_atomicity(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """A2: CAS-based vs lock-based check atomicity (software CLEAN)."""
    result = ExperimentResult(
        experiment="Ablation A2",
        title="Software detection atomicity: lock-free CAS vs locking",
        columns=["benchmark", "CAS", "locking", "locking share of overhead"],
    )
    shares = []
    for name in A1_BENCHMARKS:
        spec = get_benchmark(name)
        cas = run_software_clean(spec, scale=scale, seed=seed, atomicity="cas")
        lock = run_software_clean(spec, scale=scale, seed=seed, atomicity="lock")
        lock_overhead = lock.slowdown_detection - 1.0
        share = (
            (lock.slowdown_detection - cas.slowdown_detection) / lock_overhead
            if lock_overhead > 0
            else 0.0
        )
        result.add_row(
            name, cas.slowdown_detection, lock.slowdown_detection,
            f"{share * 100:.0f}%",
        )
        shares.append(share)
    result.summary = [
        f"mean share of detection overhead spent on locking: "
        f"{statistics.mean(shares) * 100:.0f}% "
        "(paper cites >40% in lock-based detectors)",
    ]
    return result


def run_clock_width(
    scale: str = "test", seed: int = 0, benchmark: str = "radiosity"
) -> ExperimentResult:
    """A3: rollover count and cost across epoch clock widths."""
    result = ExperimentResult(
        experiment="Ablation A3",
        title=f"Clock width vs rollover cost ({benchmark})",
        columns=["clock bits", "rollovers", "full slowdown", "reset overhead"],
    )
    spec = get_benchmark(benchmark)
    for bits in (3, 4, 5, 6, 8, 12):
        layout = EpochLayout(clock_bits=bits, tid_bits=5)
        run = run_software_clean(
            spec, scale=scale, seed=seed, layout=layout, rollover_slack=2
        )
        result.add_row(
            bits,
            run.rollovers,
            run.slowdown_full,
            f"{run.rollovers * DEFAULT_PARAMS.rollover_cost / run.t0 * 100:.1f}%",
        )
    rollover_counts = result.column("rollovers")
    assert rollover_counts == sorted(rollover_counts, reverse=True)
    result.summary = [
        "rollovers fall monotonically with clock width; the default "
        "23-bit clock is orders of magnitude beyond the widths that "
        "still roll over at this scale",
    ]
    return result


def run_instrumentation(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """A4: how much escape analysis saves (Section 4.1).

    The conservative shared-access estimate instruments every access the
    compiler cannot prove private; sweeping the fraction of private
    accesses instrumented shows the detection cost of imprecise escape
    analysis (0.0 = perfect, 1.0 = everything instrumented).
    """
    result = ExperimentResult(
        experiment="Ablation A4",
        title="Instrumentation precision: private accesses mistakenly checked",
        columns=["benchmark", "escape-exact", "half-conservative",
                 "fully conservative", "waste"],
    )
    wastes = []
    for name in A1_BENCHMARKS:
        spec = get_benchmark(name)
        rows = {}
        for fraction in (0.0, 0.5, 1.0):
            run = run_software_clean(
                spec, scale=scale, seed=seed,
                instrument_private_fraction=fraction,
            )
            rows[fraction] = run.slowdown_detection
        waste = rows[1.0] / rows[0.0]
        result.add_row(name, rows[0.0], rows[0.5], rows[1.0], waste)
        wastes.append(waste)
    result.summary = [
        f"mean cost of a fully conservative estimate: "
        f"{statistics.mean(wastes):.2f}x over exact escape analysis",
    ]
    return result


def main() -> None:
    print(run_war_precision().render())
    print()
    print(run_atomicity().render())
    print()
    print(run_clock_width().render())
    print()
    print(run_instrumentation().render())


if __name__ == "__main__":
    main()
