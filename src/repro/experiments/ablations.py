"""Ablations: the design choices CLEAN's evaluation motivates but does
not plot, quantified with this repository's machinery.

A1 — **WAR precision in hardware** (Sections 3.2, 7): the same simulator
     hosting a FastTrack-complete check unit (read metadata maintained
     and scanned) instead of CLEAN's WAW/RAW-only unit.  The paper cites
     RADISH-class designs at up to 3x; CLEAN's entire efficiency story
     is dropping exactly this work.

A2 — **CAS vs lock-based check atomicity** (Section 4.3): the paper
     cites >40% of detection overhead going to locking in lock-based
     detectors; CLEAN's CAS scheme avoids it.  Priced through the cost
     model on measured event counts.

A3 — **Clock width** (Section 4.5): rollover count and total reset cost
     as a function of the epoch clock width, on the most sync-intensive
     benchmark — why the 23-bit default is comfortably wide and what a
     too-narrow clock would cost.

A4 — **Instrumentation precision** (Section 4.1): the cost of the
     conservative everything-instrumented shared-access estimate versus
     a perfect escape analysis, swept over the fraction of private
     accesses the compiler fails to prove private.
"""

from __future__ import annotations

import statistics
from typing import Dict, Optional

from ..core.epoch import EpochLayout
from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..swclean.costmodel import DEFAULT_PARAMS
from ..swclean.runner import run_software_clean
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = [
    "run_war_precision",
    "run_atomicity",
    "run_clock_width",
    "run_instrumentation",
    "main",
]

#: Benchmarks used by the A1 sweep (a representative spread: the density
#: outliers, a barrier code, a lock code, the byte-granular pipeline).
A1_BENCHMARKS = ("fft", "lu_cb", "barnes", "radiosity", "dedup", "swaptions")

#: Clock widths swept by A3.
A3_CLOCK_BITS = (3, 4, 5, 6, 8, 12)


# -- A1: WAR precision in hardware ------------------------------------------


def compute_war(benchmark: str, trace) -> Dict[str, object]:
    """A1 per-benchmark step: cycles for baseline/CLEAN/precise units."""
    base = simulate_trace(trace, SimConfig(detection=False))
    clean = simulate_trace(trace, SimConfig(detection=True))
    precise = simulate_trace(
        trace, SimConfig(detection=True, check_unit="precise")
    )
    return {
        "benchmark": benchmark,
        "base_cycles": base.cycles,
        "clean_cycles": clean.cycles,
        "precise_cycles": precise.cycles,
    }


def aggregate_war(payloads) -> ExperimentResult:
    """Assemble A1 from per-benchmark payloads (A1 roster order)."""
    result = ExperimentResult(
        experiment="Ablation A1",
        title="Hardware detection: CLEAN (WAW/RAW) vs precise (adds WAR)",
        columns=["benchmark", "CLEAN", "precise", "precision cost"],
    )
    ratios, precises = [], []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        s_clean = p["clean_cycles"] / p["base_cycles"]
        s_precise = p["precise_cycles"] / p["base_cycles"]
        result.add_row(p["benchmark"], s_clean, s_precise, s_precise / s_clean)
        ratios.append(s_precise / s_clean)
        precises.append(s_precise)
    if ratios:
        result.summary = [
            f"mean precision cost: {statistics.mean(ratios):.2f}x over CLEAN",
            f"worst precise slowdown: {max(precises):.2f}x "
            "(paper: RADISH-class detectors reach up to 3x)",
        ]
    return result


def run_war_precision(
    scale: str = "test",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """A1: CLEAN's unit vs a precise (WAR-detecting) hardware unit."""
    payloads = []
    for name in A1_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None and name in traces
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        payloads.append(compute_war(name, trace))
    return aggregate_war(payloads)


# -- A2: check atomicity ------------------------------------------------------


def compute_atomicity(benchmark: str, scale: str = "test", seed: int = 0) -> dict:
    """A2 per-benchmark job: detection slowdown under CAS vs locking."""
    spec = get_benchmark(benchmark)
    cas = run_software_clean(spec, scale=scale, seed=seed, atomicity="cas")
    lock = run_software_clean(spec, scale=scale, seed=seed, atomicity="lock")
    return {
        "benchmark": benchmark,
        "cas": cas.slowdown_detection,
        "lock": lock.slowdown_detection,
    }


def aggregate_atomicity(payloads) -> ExperimentResult:
    """Assemble A2 from per-benchmark payloads (A1 roster order)."""
    result = ExperimentResult(
        experiment="Ablation A2",
        title="Software detection atomicity: lock-free CAS vs locking",
        columns=["benchmark", "CAS", "locking", "locking share of overhead"],
    )
    shares = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        lock_overhead = p["lock"] - 1.0
        share = (
            (p["lock"] - p["cas"]) / lock_overhead if lock_overhead > 0 else 0.0
        )
        result.add_row(
            p["benchmark"], p["cas"], p["lock"], f"{share * 100:.0f}%"
        )
        shares.append(share)
    if shares:
        result.summary = [
            f"mean share of detection overhead spent on locking: "
            f"{statistics.mean(shares) * 100:.0f}% "
            "(paper cites >40% in lock-based detectors)",
        ]
    return result


def run_atomicity(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """A2: CAS-based vs lock-based check atomicity (software CLEAN)."""
    return aggregate_atomicity(
        [compute_atomicity(name, scale=scale, seed=seed) for name in A1_BENCHMARKS]
    )


# -- A3: clock width ----------------------------------------------------------


def compute_clock_width(
    bits: int, benchmark: str = "radiosity", scale: str = "test", seed: int = 0
) -> dict:
    """A3 per-width job: rollover behaviour at one clock width."""
    spec = get_benchmark(benchmark)
    layout = EpochLayout(clock_bits=bits, tid_bits=5)
    run = run_software_clean(
        spec, scale=scale, seed=seed, layout=layout, rollover_slack=2
    )
    return {
        "bits": bits,
        "benchmark": benchmark,
        "rollovers": run.rollovers,
        "full": run.slowdown_full,
        "reset_pct": run.rollovers * DEFAULT_PARAMS.rollover_cost / run.t0 * 100,
    }


def aggregate_clock_width(payloads, benchmark: str = "radiosity") -> ExperimentResult:
    """Assemble A3 from per-width payloads (narrow to wide order)."""
    result = ExperimentResult(
        experiment="Ablation A3",
        title=f"Clock width vs rollover cost ({benchmark})",
        columns=["clock bits", "rollovers", "full slowdown", "reset overhead"],
    )
    ok_rollovers = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["bits"], p["error"])
            continue
        result.add_row(
            p["bits"], p["rollovers"], p["full"], f"{p['reset_pct']:.1f}%"
        )
        ok_rollovers.append(p["rollovers"])
    assert ok_rollovers == sorted(ok_rollovers, reverse=True)
    result.summary = [
        "rollovers fall monotonically with clock width; the default "
        "23-bit clock is orders of magnitude beyond the widths that "
        "still roll over at this scale",
    ]
    return result


def run_clock_width(
    scale: str = "test", seed: int = 0, benchmark: str = "radiosity"
) -> ExperimentResult:
    """A3: rollover count and cost across epoch clock widths."""
    return aggregate_clock_width(
        [
            compute_clock_width(bits, benchmark=benchmark, scale=scale, seed=seed)
            for bits in A3_CLOCK_BITS
        ],
        benchmark=benchmark,
    )


# -- A4: instrumentation precision -------------------------------------------


def compute_instrumentation(
    benchmark: str, scale: str = "test", seed: int = 0
) -> dict:
    """A4 per-benchmark job: detection slowdown per instrumented fraction."""
    spec = get_benchmark(benchmark)
    payload: dict = {"benchmark": benchmark}
    for key, fraction in (("exact", 0.0), ("half", 0.5), ("conservative", 1.0)):
        run = run_software_clean(
            spec, scale=scale, seed=seed, instrument_private_fraction=fraction
        )
        payload[key] = run.slowdown_detection
    return payload


def aggregate_instrumentation(payloads) -> ExperimentResult:
    """Assemble A4 from per-benchmark payloads (A1 roster order)."""
    result = ExperimentResult(
        experiment="Ablation A4",
        title="Instrumentation precision: private accesses mistakenly checked",
        columns=["benchmark", "escape-exact", "half-conservative",
                 "fully conservative", "waste"],
    )
    wastes = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        waste = p["conservative"] / p["exact"]
        result.add_row(
            p["benchmark"], p["exact"], p["half"], p["conservative"], waste
        )
        wastes.append(waste)
    if wastes:
        result.summary = [
            f"mean cost of a fully conservative estimate: "
            f"{statistics.mean(wastes):.2f}x over exact escape analysis",
        ]
    return result


def run_instrumentation(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """A4: how much escape analysis saves (Section 4.1).

    The conservative shared-access estimate instruments every access the
    compiler cannot prove private; sweeping the fraction of private
    accesses instrumented shows the detection cost of imprecise escape
    analysis (0.0 = perfect, 1.0 = everything instrumented).
    """
    return aggregate_instrumentation(
        [
            compute_instrumentation(name, scale=scale, seed=seed)
            for name in A1_BENCHMARKS
        ]
    )


def main() -> None:
    print(run_war_precision().render())
    print()
    print(run_atomicity().render())
    print()
    print(run_clock_width().render())
    print()
    print(run_instrumentation().render())


if __name__ == "__main__":
    main()
