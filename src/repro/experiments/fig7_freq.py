"""Figure 7: the frequency of shared accesses.

The paper's Figure 7 plots shared-access frequency per benchmark and
notes that detection cost tracks it: lu_cb and lu_ncb access shared data
far more often than the others, which is why they are the worst
detection-slowdown benchmarks in Figure 6.
"""

from __future__ import annotations

from typing import List, Optional

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS
from .common import ExperimentResult

__all__ = ["run", "main"]


def run(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 7: shared accesses per executed instruction."""
    result = ExperimentResult(
        experiment="Figure 7",
        title="Frequency of shared accesses (per executed instruction)",
        columns=["benchmark", "shared-access density", "detection slowdown"],
    )
    for spec in ALL_BENCHMARKS:
        if spec.style == "lock_free":
            continue
        r = run_software_clean(spec, scale=scale, seed=seed)
        result.add_row(spec.name, r.shared_access_density, r.slowdown_detection)
    densities = {row[0]: row[1] for row in result.rows}
    top_two = sorted(densities, key=densities.get, reverse=True)[:2]
    result.summary = [
        f"two highest densities: {top_two[0]}, {top_two[1]} "
        "(paper: lu_cb, lu_ncb)",
    ]
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
