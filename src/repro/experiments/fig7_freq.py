"""Figure 7: the frequency of shared accesses.

The paper's Figure 7 plots shared-access frequency per benchmark and
notes that detection cost tracks it: lu_cb and lu_ncb access shared data
far more often than the others, which is why they are the worst
detection-slowdown benchmarks in Figure 6.

Structured as per-benchmark :func:`compute` jobs (JSON payload in, JSON
payload out — submittable to :class:`repro.exec.JobRunner`) plus an
:func:`aggregate` step that assembles the table; :func:`run` composes
the two serially.
"""

from __future__ import annotations

from typing import Dict, List

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["compute", "aggregate", "run", "main"]


def compute(benchmark: str, scale: str = "test", seed: int = 0) -> Dict[str, object]:
    """Per-benchmark job: shared-access density and detection slowdown."""
    r = run_software_clean(get_benchmark(benchmark), scale=scale, seed=seed)
    return {
        "benchmark": benchmark,
        "density": r.shared_access_density,
        "detection": r.slowdown_detection,
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 7 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 7",
        title="Frequency of shared accesses (per executed instruction)",
        columns=["benchmark", "shared-access density", "detection slowdown"],
    )
    densities: Dict[str, float] = {}
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        result.add_row(p["benchmark"], p["density"], p["detection"])
        densities[p["benchmark"]] = p["density"]
    if densities:
        top_two = sorted(densities, key=densities.get, reverse=True)[:2]
        result.summary = [
            f"two highest densities: {top_two[0]}, {top_two[1]} "
            "(paper: lu_cb, lu_ncb)",
        ]
    return result


def run(scale: str = "test", seed: int = 0) -> ExperimentResult:
    """Regenerate Figure 7: shared accesses per executed instruction."""
    return aggregate(
        [
            compute(spec.name, scale=scale, seed=seed)
            for spec in ALL_BENCHMARKS
            if spec.style != "lock_free"
        ]
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
