"""Shared helpers for the experiment harnesses.

Every experiment module exposes ``run(...) -> ExperimentResult`` and a
``main()`` that prints the paper-style table; ``repro.experiments.report``
renders all of them for EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "geomean",
    "mean_ci",
    "render_table",
]


@dataclass
class ExperimentResult:
    """One regenerated table/figure: header, rows, and summary lines."""

    experiment: str
    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)
    summary: List[str] = field(default_factory=list)
    #: benchmarks whose job failed: ``"<key>: <error>"`` lines (the
    #: table carries a matching FAILED row; the report harness prints
    #: these and exits non-zero when any exist).
    failures: List[str] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match ``columns``)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(list(values))

    def add_failure(self, key: object, error: str) -> None:
        """Record a failed per-benchmark job as a structured table row.

        The row keeps the table rectangular (``FAILED`` marker plus
        ``-`` padding) so the report still renders; the full error is
        kept on :attr:`failures` for the end-of-report summary.
        """
        marker = f"FAILED: {error}"
        if len(marker) > 40:
            marker = marker[:37] + "..."
        row: List[object] = [key, marker]
        row.extend("-" for _ in range(len(self.columns) - 2))
        self.rows.append(row)
        self.failures.append(f"{self.experiment}/{key}: {error}")

    def column(self, name: str) -> List[object]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def row_for(self, key: object) -> List[object]:
        """The row whose first column equals ``key``."""
        for row in self.rows:
            if row[0] == key:
                return row
        raise KeyError(key)

    def render(self) -> str:
        """The experiment as a printable table."""
        lines = [f"== {self.experiment}: {self.title} ==", ""]
        lines.append(render_table(self.columns, self.rows))
        if self.summary:
            lines.append("")
            lines.extend(self.summary)
        return "\n".join(lines)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (0 on empty input)."""
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean_ci(values: Sequence[float], confidence: float = 0.95) -> tuple:
    """Mean and half-width of the normal-approximation CI.

    The paper reports averages with 95% confidence intervals over 10
    runs; with small n this normal approximation is what error bars in
    systems papers typically are.  The z-value is computed from the
    requested ``confidence`` (two-sided), so 0.90/0.95/0.99 all get
    their own quantile rather than a hard-coded constant.
    """
    values = list(values)
    if not values:
        return (0.0, 0.0)
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = statistics.mean(values)
    if len(values) < 2:
        return (mean, 0.0)
    z = statistics.NormalDist().inv_cdf((1.0 + confidence) / 2.0)
    half = z * statistics.stdev(values) / math.sqrt(len(values))
    return (mean, half)


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width text table."""

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    sep = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in str_rows
    ]
    return "\n".join([header, sep, *body])
