"""Figure 6: software-only CLEAN performance.

The paper's Figure 6 shows, per benchmark, execution time under full
CLEAN normalized to the nondeterministic run, plus each mechanism in
isolation (deterministic synchronization only, race detection only).
Headline numbers: 7.8x mean full slowdown, of which race detection
contributes 5.8x; streamcluster *speeds up* under deterministic
synchronization; fmm/radiosity/fluidanimate expose deterministic-sync
latency; dedup/ferret/vips expose counter imprecision.

Structured as per-benchmark :func:`compute` jobs plus an
:func:`aggregate` step; :func:`run` composes the two serially.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["compute", "aggregate", "run", "main"]


def compute(
    benchmark: str, scale: str = "test", seeds: Sequence[int] = (0,)
) -> Dict[str, object]:
    """Per-benchmark job: mean slowdowns over ``seeds``."""
    sync_vals, det_vals, full_vals = [], [], []
    spec = get_benchmark(benchmark)
    for seed in seeds:
        r = run_software_clean(spec, scale=scale, seed=seed)
        sync_vals.append(r.slowdown_detsync)
        det_vals.append(r.slowdown_detection)
        full_vals.append(r.slowdown_full)
    return {
        "benchmark": benchmark,
        "sync": statistics.mean(sync_vals),
        "detection": statistics.mean(det_vals),
        "full": statistics.mean(full_vals),
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 6 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 6",
        title="Software-only CLEAN performance (normalized execution time)",
        columns=["benchmark", "det-sync only", "detection only", "full CLEAN"],
    )
    names, syncs, detections, fulls = [], [], [], []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        result.add_row(p["benchmark"], p["sync"], p["detection"], p["full"])
        names.append(p["benchmark"])
        syncs.append(p["sync"])
        detections.append(p["detection"])
        fulls.append(p["full"])
    if names:
        result.summary = [
            f"mean det-sync-only slowdown:  {statistics.mean(syncs):.2f}x",
            f"mean detection-only slowdown: {statistics.mean(detections):.2f}x"
            "  (paper: 5.8x)",
            f"mean full-CLEAN slowdown:     {statistics.mean(fulls):.2f}x"
            "  (paper: 7.8x)",
            f"worst detection-only: "
            f"{max(zip(detections, names))[1]} "
            f"{max(detections):.1f}x  (paper: 22x on lu benchmarks)",
        ]
    return result


def run(scale: str = "test", seeds: Optional[List[int]] = None) -> ExperimentResult:
    """Regenerate Figure 6 over the race-free benchmark variants."""
    seeds = seeds if seeds is not None else [0]
    return aggregate(
        [
            compute(spec.name, scale=scale, seeds=seeds)
            for spec in ALL_BENCHMARKS
            # canneal has no race-free variant to time (§6.1)
            if spec.style != "lock_free"
        ]
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
