"""Figure 6: software-only CLEAN performance.

The paper's Figure 6 shows, per benchmark, execution time under full
CLEAN normalized to the nondeterministic run, plus each mechanism in
isolation (deterministic synchronization only, race detection only).
Headline numbers: 7.8x mean full slowdown, of which race detection
contributes 5.8x; streamcluster *speeds up* under deterministic
synchronization; fmm/radiosity/fluidanimate expose deterministic-sync
latency; dedup/ferret/vips expose counter imprecision.
"""

from __future__ import annotations

import statistics
from typing import List, Optional

from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS
from .common import ExperimentResult

__all__ = ["run", "main"]


def run(scale: str = "test", seeds: Optional[List[int]] = None) -> ExperimentResult:
    """Regenerate Figure 6 over the race-free benchmark variants."""
    seeds = seeds if seeds is not None else [0]
    result = ExperimentResult(
        experiment="Figure 6",
        title="Software-only CLEAN performance (normalized execution time)",
        columns=["benchmark", "det-sync only", "detection only", "full CLEAN"],
    )
    fulls, detections, syncs = [], [], []
    for spec in ALL_BENCHMARKS:
        if spec.style == "lock_free":
            continue  # canneal has no race-free variant to time (§6.1)
        sync_vals, det_vals, full_vals = [], [], []
        for seed in seeds:
            r = run_software_clean(spec, scale=scale, seed=seed)
            sync_vals.append(r.slowdown_detsync)
            det_vals.append(r.slowdown_detection)
            full_vals.append(r.slowdown_full)
        sync = statistics.mean(sync_vals)
        det = statistics.mean(det_vals)
        full = statistics.mean(full_vals)
        result.add_row(spec.name, sync, det, full)
        syncs.append(sync)
        detections.append(det)
        fulls.append(full)
    result.summary = [
        f"mean det-sync-only slowdown:  {statistics.mean(syncs):.2f}x",
        f"mean detection-only slowdown: {statistics.mean(detections):.2f}x"
        "  (paper: 5.8x)",
        f"mean full-CLEAN slowdown:     {statistics.mean(fulls):.2f}x"
        "  (paper: 7.8x)",
        f"worst detection-only: "
        f"{max(zip(detections, (r[0] for r in result.rows)))[1]} "
        f"{max(detections):.1f}x  (paper: 22x on lu benchmarks)",
    ]
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
