"""Merged per-benchmark job for the hardware experiments.

Figures 9, 10, 11 and ablation A1 all replay the same recorded trace of
a benchmark's race-free variant.  When the report fans benchmarks out
across worker processes, shipping traces between processes would dwarf
the simulation work, so each worker instead records the trace itself and
runs every per-trace ``compute`` step locally, returning one combined
JSON payload:

```
{"benchmark": ..., "fig9": {...}, "fig10": {...}, "fig11": {...},
 "a1": {...}}            # "a1" only for the A1 roster
```

The aggregate steps of the individual experiment modules then consume
the matching sub-payloads.  Figure 11 may use a different workload scale
(its LLC-pressure effect needs the larger footprints); when it does, the
job records a second trace at that scale.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..workloads.suite import get_benchmark
from . import ablations, fig9_hardware, fig10_breakdown, fig11_epochsize
from .traces import record_trace

__all__ = ["compute"]


def compute(
    benchmark: str,
    scale: str = "simsmall",
    fig11_scale: Optional[str] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """All per-trace hardware payloads for ``benchmark`` in one job."""
    trace = record_trace(get_benchmark(benchmark), scale=scale, seed=seed)
    payload: Dict[str, object] = {
        "benchmark": benchmark,
        "fig9": fig9_hardware.compute(benchmark, trace),
        "fig10": fig10_breakdown.compute(benchmark, trace),
    }
    if fig11_scale is not None and fig11_scale != scale:
        fig11_trace = record_trace(
            get_benchmark(benchmark), scale=fig11_scale, seed=seed
        )
    else:
        fig11_trace = trace
    payload["fig11"] = fig11_epochsize.compute(benchmark, fig11_trace)
    if benchmark in ablations.A1_BENCHMARKS:
        payload["a1"] = ablations.compute_war(benchmark, trace)
    return payload
