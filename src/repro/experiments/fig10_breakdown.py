"""Figure 10: the breakdown of memory accesses.

The paper's Figure 10 gives two per-benchmark breakdowns of memory
accesses under hardware CLEAN: by the complexity of the race check they
required (private / fast / VC load / update / VC load & update / expand)
and by metadata line state (private / compact / expanded).  Headlines:
54.2% of accesses resolve on the fast path, ~90% including private are
quick; line expansions are under 0.02% of accesses in every benchmark;
94.3% of accesses are private or touch same-size (compact) metadata; and
dedup is the exception whose accesses are mostly to expanded lines.

Structured as a per-benchmark :func:`compute` step over a recorded
trace plus an :func:`aggregate` step; :func:`run` composes the two
serially.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..hardware.race_unit import AccessClass
from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = ["compute", "aggregate", "run", "main"]


def compute(benchmark: str, trace) -> Dict[str, object]:
    """Both Figure-10 breakdowns of ``benchmark``'s trace, in percent."""
    sim = simulate_trace(trace, SimConfig(detection=True))
    stats = sim.check_stats
    assert stats is not None
    total = stats.total
    return {
        "benchmark": benchmark,
        "shares": {c: stats.fraction(c) * 100 for c in AccessClass.ALL},
        "compact_pct": stats.compact_accesses / total * 100 if total else 0.0,
        "expanded_pct": stats.expanded_accesses / total * 100 if total else 0.0,
        "quick_pct": stats.quick_fraction * 100,
        "compact_or_private_pct": stats.compact_or_private_fraction * 100,
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 10 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 10",
        title="Breakdown of memory accesses under hardware CLEAN (%)",
        columns=[
            "benchmark",
            "private",
            "fast",
            "vc_load",
            "update",
            "vc_load_update",
            "expand",
            "compact",
            "expanded",
        ],
    )
    quick, compact_like, expand_fracs, fast_fracs = [], [], [], []
    dedup_expanded = 0.0
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        shares = p["shares"]
        result.add_row(
            p["benchmark"],
            shares[AccessClass.PRIVATE],
            shares[AccessClass.FAST],
            shares[AccessClass.VC_LOAD],
            shares[AccessClass.UPDATE],
            shares[AccessClass.VC_LOAD_UPDATE],
            shares[AccessClass.EXPAND],
            p["compact_pct"],
            p["expanded_pct"],
        )
        quick.append(p["quick_pct"])
        compact_like.append(p["compact_or_private_pct"])
        expand_fracs.append(shares[AccessClass.EXPAND])
        fast_fracs.append(shares[AccessClass.FAST])
        if p["benchmark"] == "dedup":
            dedup_expanded = p["expanded_pct"]
    if fast_fracs:
        result.summary = [
            f"mean fast-path share: {statistics.mean(fast_fracs):.1f}% "
            "(paper: 54.2%)",
            f"mean quick (fast+private) share: {statistics.mean(quick):.1f}% "
            "(paper: ~90%)",
            f"max expansion share: {max(expand_fracs):.4f}% "
            "(paper: <0.02% in every benchmark)",
            f"mean private-or-compact share: {statistics.mean(compact_like):.1f}% "
            "(paper: 94.3%)",
            f"dedup expanded-line share: {dedup_expanded:.1f}% "
            "(paper: majority of dedup accesses)",
        ]
    return result


def run(
    scale: str = "simsmall",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """Regenerate both Figure-10 breakdowns."""
    payloads = []
    for name in HW_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        payloads.append(compute(name, trace))
    return aggregate(payloads)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
