"""Table 1: the impact of clock rollover.

The paper's Table 1 lists the benchmarks that experience clock rollovers
under the default 23-bit clock (barnes, fmm, radiosity, facesim,
fluidanimate), their rollover rates per second (4.9 - 34.8), and how much
faster each runs with a 28-bit clock that never rolls over (<= 2.4%).

Scaling note: our workloads execute ~10^4x fewer synchronization
operations than the native runs, so exercising the rollover machinery
requires a proportionally narrower clock.  We use a 6-bit clock as the
scaled stand-in for the paper's 23-bit configuration and a 12-bit clock
for the rollover-free 28-bit configuration; which benchmarks roll over is
*emergent* (it depends only on their synchronization rates) and matches
the paper's list.

Structured as per-benchmark :func:`compute` jobs plus an
:func:`aggregate` step; :func:`run` composes the two serially.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.epoch import EpochLayout
from ..swclean.runner import run_software_clean
from ..workloads.suite import ALL_BENCHMARKS, get_benchmark
from .common import ExperimentResult

__all__ = ["compute", "aggregate", "run", "main", "NARROW_LAYOUT", "WIDE_LAYOUT"]

#: Scaled stand-in for the paper's default 23-bit-clock epoch.
NARROW_LAYOUT = EpochLayout(clock_bits=6, tid_bits=5, reserve_expanded_bit=True)

#: Scaled stand-in for the 28-bit-clock configuration (never rolls over).
WIDE_LAYOUT = EpochLayout(clock_bits=12, tid_bits=5, reserve_expanded_bit=True)

#: The benchmarks the paper's Table 1 lists.
PAPER_ROSTER = ("barnes", "fmm", "radiosity", "facesim", "fluidanimate")


def compute(benchmark: str, scale: str = "simlarge", seed: int = 0) -> Dict[str, object]:
    """Per-benchmark job: rollover behaviour, narrow vs. wide clock."""
    spec = get_benchmark(benchmark)
    narrow = run_software_clean(
        spec, scale=scale, seed=seed, layout=NARROW_LAYOUT, rollover_slack=4
    )
    if narrow.rollovers == 0:
        return {"benchmark": benchmark, "quiet": True}
    wide = run_software_clean(
        spec, scale=scale, seed=seed, layout=WIDE_LAYOUT, rollover_slack=4
    )
    assert wide.rollovers == 0, f"{benchmark} rolled over with the wide clock"
    return {
        "benchmark": benchmark,
        "quiet": False,
        "rollovers": narrow.rollovers,
        "rate": narrow.rollovers_per_second,
        "decrease": (narrow.t_full - wide.t_full) / narrow.t_full,
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Table 1 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Table 1",
        title="Impact of clock rollover (narrow vs. wide clock)",
        columns=[
            "benchmark",
            "rollovers",
            "rollovers/s",
            "time decrease w/o rollover",
        ],
    )
    rolled: List[str] = []
    quiet: List[str] = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        if p["quiet"]:
            quiet.append(p["benchmark"])
            continue
        rolled.append(p["benchmark"])
        result.add_row(
            p["benchmark"],
            p["rollovers"],
            p["rate"],
            f"{p['decrease'] * 100:.1f}%",
        )
    matches = set(rolled) == set(PAPER_ROSTER)
    result.summary = [
        f"benchmarks with rollovers: {', '.join(rolled)}",
        f"matches the paper's roster: {matches} "
        f"(paper: {', '.join(PAPER_ROSTER)})",
        f"rollover-free benchmarks verified: {len(quiet)}",
    ]
    return result


def run(scale: str = "simlarge", seed: int = 0) -> ExperimentResult:
    """Regenerate Table 1 across all benchmarks (rollover-free ones are
    verified to stay rollover-free and excluded from the table body)."""
    return aggregate(
        [
            compute(spec.name, scale=scale, seed=seed)
            for spec in ALL_BENCHMARKS
            if spec.style != "lock_free"
        ]
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
