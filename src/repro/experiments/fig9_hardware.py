"""Figure 9: hardware-supported race detection performance.

The paper's Figure 9 shows execution time with CLEAN's hardware race
detection active, normalized to execution with no race detection
(deterministic synchronization off in both).  Headline: hardware lowers
the detection penalty from the software 5.8x to 10.4% on average, never
more than 46.7% (dedup, whose byte-granular writes keep its metadata
lines expanded).
"""

from __future__ import annotations

import statistics
from typing import Dict, Optional

from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = ["run", "main"]


def run(
    scale: str = "simsmall",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (facesim omitted, as in the paper)."""
    result = ExperimentResult(
        experiment="Figure 9",
        title="Hardware-supported race detection (normalized execution time)",
        columns=["benchmark", "baseline cycles", "detection cycles", "slowdown"],
    )
    slowdowns = []
    for name in HW_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        base = simulate_trace(trace, SimConfig(detection=False))
        det = simulate_trace(trace, SimConfig(detection=True))
        slowdown = det.cycles / base.cycles
        slowdowns.append(slowdown)
        result.add_row(name, base.cycles, det.cycles, slowdown)
    worst_i = max(range(len(slowdowns)), key=slowdowns.__getitem__)
    result.summary = [
        f"mean slowdown: {(statistics.mean(slowdowns) - 1) * 100:.1f}% "
        "(paper: 10.4%)",
        f"max slowdown:  {result.rows[worst_i][0]} "
        f"{(slowdowns[worst_i] - 1) * 100:.1f}% (paper: dedup, 46.7%)",
    ]
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
