"""Figure 9: hardware-supported race detection performance.

The paper's Figure 9 shows execution time with CLEAN's hardware race
detection active, normalized to execution with no race detection
(deterministic synchronization off in both).  Headline: hardware lowers
the detection penalty from the software 5.8x to 10.4% on average, never
more than 46.7% (dedup, whose byte-granular writes keep its metadata
lines expanded).

Structured as a per-benchmark :func:`compute` step over a recorded
trace plus an :func:`aggregate` step (``repro.experiments.hwjobs``
wraps compute into runner-submittable jobs that record their own
traces); :func:`run` composes the two serially.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..hardware.simulator import SimConfig, simulate_trace
from ..runtime.trace import Trace
from ..workloads.suite import HW_BENCHMARKS, get_benchmark
from .common import ExperimentResult
from .traces import record_trace

__all__ = ["compute", "aggregate", "run", "main"]


def compute(benchmark: str, trace) -> Dict[str, object]:
    """Baseline and detection cycle counts of ``benchmark``'s trace."""
    base = simulate_trace(trace, SimConfig(detection=False))
    det = simulate_trace(trace, SimConfig(detection=True))
    return {
        "benchmark": benchmark,
        "base_cycles": base.cycles,
        "det_cycles": det.cycles,
    }


def aggregate(payloads: List[Dict[str, object]]) -> ExperimentResult:
    """Assemble Figure 9 from per-benchmark payloads (roster order)."""
    result = ExperimentResult(
        experiment="Figure 9",
        title="Hardware-supported race detection (normalized execution time)",
        columns=["benchmark", "baseline cycles", "detection cycles", "slowdown"],
    )
    slowdowns = []
    for p in payloads:
        if "error" in p:
            result.add_failure(p["benchmark"], p["error"])
            continue
        slowdown = p["det_cycles"] / p["base_cycles"]
        slowdowns.append(slowdown)
        result.add_row(p["benchmark"], p["base_cycles"], p["det_cycles"], slowdown)
    if slowdowns:
        names = [p["benchmark"] for p in payloads if "error" not in p]
        worst_i = max(range(len(slowdowns)), key=slowdowns.__getitem__)
        result.summary = [
            f"mean slowdown: {(statistics.mean(slowdowns) - 1) * 100:.1f}% "
            "(paper: 10.4%)",
            f"max slowdown:  {names[worst_i]} "
            f"{(slowdowns[worst_i] - 1) * 100:.1f}% (paper: dedup, 46.7%)",
        ]
    return result


def run(
    scale: str = "simsmall",
    seed: int = 0,
    traces: Optional[Dict[str, Trace]] = None,
) -> ExperimentResult:
    """Regenerate Figure 9 (facesim omitted, as in the paper)."""
    payloads = []
    for name in HW_BENCHMARKS:
        trace = (
            traces[name]
            if traces is not None
            else record_trace(get_benchmark(name), scale=scale, seed=seed)
        )
        payloads.append(compute(name, trace))
    return aggregate(payloads)


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
