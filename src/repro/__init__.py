"""repro - a full reproduction of *CLEAN: A Race Detector with Cleaner
Semantics* (Segulja & Abdelrahman, ISCA 2015).

The package provides:

* :mod:`repro.core` - CLEAN's precise WAW/RAW epoch-based race detection;
* :mod:`repro.determinism` - Kendo deterministic synchronization;
* :mod:`repro.runtime` - the cooperative multithreaded runtime CLEAN
  instruments (the Pthread-program substrate);
* :mod:`repro.baselines` - vector-clock, FastTrack and TSan-like
  reference detectors;
* :mod:`repro.swclean` - the software-only CLEAN cost model (Figures 6-8);
* :mod:`repro.hardware` - the trace-driven multicore simulator with
  CLEAN's hardware race-check unit (Figures 9-11);
* :mod:`repro.workloads` - SPLASH-2/PARSEC synthetic workload models;
* :mod:`repro.experiments` - one harness per paper table/figure;
* :mod:`repro.obs` - the unified telemetry layer: metrics registry,
  span tracer and the runtime :class:`~repro.obs.TelemetryMonitor`.

Quickstart::

    from repro import run_clean
    from repro.runtime import Program, Read, Write, Spawn, Join

    def racer(ctx, addr):
        yield Write(addr, 4, 7)

    def main(ctx):
        addr = ctx.alloc(4)
        child = yield Spawn(racer, (addr,))
        yield Write(addr, 4, 1)       # races with the child's write
        yield Join(child)

    result = run_clean(Program(main))
    print(result.race)                # -> WAW race at ...
"""

from .clean import CleanMonitor, clean_stack, run_clean
from .core import (
    CleanDetector,
    CleanError,
    RaceException,
    RawRaceException,
    WawRaceException,
)
from .obs import MetricsRegistry, TelemetryMonitor, Tracer

__version__ = "1.0.0"

__all__ = [
    "run_clean",
    "clean_stack",
    "CleanMonitor",
    "CleanDetector",
    "CleanError",
    "MetricsRegistry",
    "RaceException",
    "RawRaceException",
    "TelemetryMonitor",
    "Tracer",
    "WawRaceException",
    "__version__",
]
