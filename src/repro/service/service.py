"""The race-checking service core: admission, queueing, dispatch.

:class:`RaceCheckService` is the daemon minus HTTP: it takes raw trace
bytes in (:meth:`~RaceCheckService.submit`), pushes verdict payloads
out (:meth:`~RaceCheckService.result` / :meth:`~RaceCheckService.report`),
and in between owns the whole pipeline:

1. **admission** — per-tenant token quota
   (:class:`~repro.service.quota.QuotaManager`), then CRC validation of
   the upload (:func:`~repro.runtime.trace.verify_trace_bytes`) *before*
   anything touches disk: a corrupt trace costs one refused request,
   never a worker;
2. **queueing** — accepted submissions spool to disk
   (:class:`~repro.service.store.SubmissionStore`) and enter a bounded
   ``queue.Queue``; a full queue raises :class:`QueueFull` (the daemon's
   429 + ``Retry-After``) and refunds the quota token — backpressure,
   not buffering;
3. **dispatch** — a dispatcher thread feeds the queue to a
   :class:`~repro.exec.runner.PersistentPool` of resident analysis
   workers, at most ``workers`` in flight (a semaphore, so the *queue*
   is what fills up and the 429 semantics stay honest);
4. **completion** — the pool's callback lands the verdict in the store,
   observes the queue-to-verdict latency histogram, ends the
   submission's span and merges the job's ``clean.*`` counters into the
   shared registry.

Every submission carries a request id (client-supplied or generated)
stamped on its span and in every payload.  Faults are first-class: a
worker crashing mid-analysis costs one retry (the pool respawns the
worker); a submission that exhausts its retries lands as a structured
``failed`` result; the daemon itself never goes down with a worker.
``crash_every=N`` arms the chaos hook — every Nth submission's job
carries a one-shot ``worker-crash`` fault spec (scarred, so the retry
runs clean): the recovery path stays exercised in production shape.

**Durability** (on by default) adds two layers on top:

* a write-ahead submission journal
  (:class:`~repro.service.store.SubmissionJournal`) — every accepted
  submission is fsync'd to an append-only CRC-framed log before the
  202 goes out, and :meth:`RaceCheckService.start` replays that log so
  a ``kill -9``'d daemon restarted on the same spool re-enqueues every
  accepted-but-unfinished submission (CLEAN's deterministic verdicts
  make the recovery *checkable*: a recovered submission reaches the
  byte-identical verdict an uninterrupted run would have);
* a content-hashed verdict cache (SHA-256 of the trace bytes → verdict
  payload, stored through the atomic
  :class:`~repro.exec.checkpoint.CheckpointStore`) — duplicate uploads
  are verdict-served at submit time without touching the worker pool,
  counted in ``cache.hit``/``cache.miss`` and with the quota token
  refunded (a hit costs the fleet nothing).

:meth:`RaceCheckService.begin_drain` is the graceful-shutdown valve:
admissions turn into 503 + ``Retry-After`` (:class:`ServiceDraining`),
in-flight analyses settle, and ``stop(preserve_queued=True)`` leaves
whatever did not finish journaled for the next boot instead of failing
it.
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time
from typing import Any, Dict, Optional, Union

from ..exec import CheckpointStore, Job, PersistentPool
from ..runtime.trace import verify_trace_bytes
from .quota import QuotaManager
from .store import SubmissionStore

__all__ = [
    "CorruptTrace",
    "NotReady",
    "QueueFull",
    "QuotaExceeded",
    "RaceCheckService",
    "ServiceDraining",
    "ServiceError",
    "UnknownSubmission",
]

#: serve.latency histogram bounds (seconds): sub-second resolution, the
#: scale a single-trace analysis lives at — the library-wide power-of-two
#: defaults are integer-scaled and would flatten every sample into one
#: bucket.
LATENCY_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


class ServiceError(RuntimeError):
    """Base of all structured service refusals (maps to an HTTP error)."""

    status = 500
    error = "internal"

    def payload(self) -> Dict[str, Any]:
        return {"error": self.error, "detail": str(self)}


class QuotaExceeded(ServiceError):
    status = 429
    error = "quota_exhausted"

    def __init__(self, tenant: str, retry_after: float) -> None:
        super().__init__(f"tenant {tenant!r} is out of submission tokens")
        self.retry_after = retry_after


class QueueFull(ServiceError):
    status = 429
    error = "queue_full"

    def __init__(self, capacity: int, retry_after: float) -> None:
        super().__init__(f"submission queue is full ({capacity} deep)")
        self.retry_after = retry_after


class ServiceDraining(ServiceError):
    """The daemon is shutting down gracefully: no new admissions, but
    in-flight and journaled work is preserved — retry on the next boot."""

    status = 503
    error = "draining"

    def __init__(self, retry_after: float = 5.0) -> None:
        super().__init__("service is draining; retry after restart")
        self.retry_after = retry_after


class CorruptTrace(ServiceError):
    status = 400
    error = "corrupt_trace"


class UnknownSubmission(ServiceError):
    status = 404
    error = "unknown_submission"

    def __init__(self, sid: str) -> None:
        super().__init__(f"no submission {sid!r}")


class NotReady(ServiceError):
    status = 409
    error = "not_ready"

    def __init__(self, sid: str, state: str) -> None:
        super().__init__(f"submission {sid!r} is still {state}")


class RaceCheckService:
    """Everything between an uploaded trace and its verdict."""

    def __init__(
        self,
        spool: str,
        workers: int = 2,
        queue_size: int = 32,
        retries: int = 1,
        mode: str = "batch",
        hot_sites: int = 8,
        quota_tokens: Optional[int] = None,
        quota_refill_per_s: float = 0.0,
        retry_after_s: float = 1.0,
        job_timeout: Optional[float] = None,
        registry: Any = None,
        tracer: Any = None,
        keep_traces: bool = False,
        crash_every: int = 0,
        inline_pool: bool = False,
        journal: Union[None, bool, str] = True,
        journal_fsync: bool = True,
        dedup: bool = True,
        compact_every: int = 256,
    ) -> None:
        if mode not in ("batch", "scalar"):
            raise ValueError(
                f"service analysis mode must be batch or scalar, not {mode!r}"
            )
        from ..obs import MetricsRegistry

        self.registry = registry if registry is not None else MetricsRegistry()
        self.registry.histogram("serve.latency", bounds=LATENCY_BOUNDS)
        self._describe_metrics()
        # Per-(name, tenant) instrument handles: the canonical labeled
        # name is built once per tenant, not once per request.
        self._tenant_counters: Dict[Any, Any] = {}
        self._tenant_latency: Dict[str, Any] = {}
        self.tracer = tracer
        self.mode = mode
        self.hot_sites = hot_sites
        self.queue_size = queue_size
        self.retry_after_s = retry_after_s
        self.crash_every = crash_every
        self.store = SubmissionStore(
            spool,
            keep_traces=keep_traces,
            journal=journal,
            journal_fsync=journal_fsync,
            compact_every=compact_every,
        )
        self.dedup = dedup
        #: Content-addressed verdict cache: SHA-256 of the trace bytes
        #: (plus the analysis parameters, via the synthetic job id) →
        #: the verdict payload, one atomic JSON record each.
        self._verdicts: Optional[CheckpointStore] = (
            CheckpointStore(self.store.spool / "verdicts", fsync=True)
            if dedup
            else None
        )
        self.recovery: Dict[str, Any] = {}
        self.quota = QuotaManager(
            tokens=quota_tokens, refill_per_s=quota_refill_per_s
        )
        self.pool = PersistentPool(
            workers=workers,
            retries=retries,
            timeout=job_timeout,
            registry=self.registry,
            tracer=tracer,
            inline=inline_pool,
        )
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue(
            maxsize=queue_size
        )
        self._slots = threading.Semaphore(max(1, workers))
        self._lock = threading.Lock()
        self._spans: Dict[str, Any] = {}
        self._accepted = 0
        self._started = False
        self._stopping = False
        self._draining = False
        self._preserve = False
        self._paused = threading.Event()
        self._resumed = threading.Event()
        self._resumed.set()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._start_time = time.monotonic()
        self._dispatcher: Optional[threading.Thread] = None

    def _describe_metrics(self) -> None:
        """``# HELP`` text for the serve metric families."""
        for base, text in (
            ("serve.submissions", "submissions offered (accepted or not)"),
            ("serve.accepted", "submissions admitted to the queue"),
            ("serve.completed", "submissions that reached a verdict"),
            ("serve.failed", "submissions that exhausted their retries"),
            ("serve.quota_denied", "submissions refused by tenant quota"),
            ("serve.queue_rejected", "submissions shed by the full queue"),
            ("serve.corrupt_rejected", "uploads failing the CRC walk"),
            ("serve.latency", "queue-to-verdict seconds"),
            ("serve.queue_depth", "submissions waiting for a worker"),
            ("cache.hit", "duplicate uploads verdict-served from cache"),
            ("cache.miss", "uploads analyzed fresh (not in the cache)"),
            ("serve.recovered", "submissions re-enqueued by crash recovery"),
            ("serve.restored", "terminal verdicts restored from the journal"),
            ("serve.lost_trace", "journaled submissions whose trace was lost"),
            ("serve.drain_rejected", "submissions refused while draining"),
        ):
            self.registry.describe(base, text)

    def _tinc(self, name: str, tenant: str, amount: int = 1) -> None:
        """Bump ``name`` twice: the flat fleet total and the per-tenant
        labeled series (handles cached — the label-set canonicalization
        happens once per (name, tenant), not per request)."""
        key = (name, tenant)
        handles = self._tenant_counters.get(key)
        if handles is None:
            handles = (
                self.registry.counter(name),
                self.registry.counter(name, labels={"tenant": tenant}),
            )
            self._tenant_counters[key] = handles
        handles[0].inc(amount)
        handles[1].inc(amount)

    def _observe_latency(self, tenant: str, latency: float) -> None:
        self.registry.observe("serve.latency", latency)
        histogram = self._tenant_latency.get(tenant)
        if histogram is None:
            histogram = self.registry.histogram(
                "serve.latency", bounds=LATENCY_BOUNDS,
                labels={"tenant": tenant},
            )
            self._tenant_latency[tenant] = histogram
        histogram.observe(latency)

    # -- lifecycle ----------------------------------------------------------

    def start(self, recover: bool = True) -> "RaceCheckService":
        """Start the pool and dispatcher, then replay the journal.

        ``recover=True`` (the default) runs crash recovery against the
        spool: terminal submissions are restored, unfinished ones
        re-enqueued, orphans reaped — see
        :meth:`~repro.service.store.SubmissionStore.recover`.
        """
        with self._lock:
            if self._started:
                return self
            self._started = True
        self.pool.start()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._dispatcher.start()
        if recover and self.store.journal is not None:
            self.recovery = self.store.recover()
            for name, key in (
                ("serve.restored", "restored"),
                ("serve.lost_trace", "lost"),
            ):
                if self.recovery[key]:
                    self.registry.inc(name, len(self.recovery[key]))
            if self.recovery["salvaged_bytes"]:
                self.registry.inc(
                    "journal.salvaged_bytes", self.recovery["salvaged_bytes"]
                )
            for sid in self.recovery["resumed"]:
                with self._lock:
                    self._inflight += 1
                self.registry.inc("serve.recovered")
                self._queue.put(sid)
        return self

    def begin_drain(self) -> None:
        """Stop admissions (503 + ``Retry-After``) but keep working:
        the first phase of a graceful shutdown."""
        self._draining = True

    def stop(self, timeout: float = 10.0, preserve_queued: bool = False) -> None:
        """Stop accepting, let in-flight analyses finish, tear down.

        ``preserve_queued=False`` (the default) settles whatever never
        ran as ``failed: ServiceStopped`` so no client polls a
        submission that cannot finish.  ``preserve_queued=True`` is the
        graceful path: unfinished submissions keep their ``accepted``
        journal records and the *next* boot re-enqueues them — nothing
        is failed, nothing is lost.
        """
        with self._lock:
            if not self._started or self._stopping:
                self._stopping = True
                return
            self._stopping = True
            self._preserve = preserve_queued
        self._resumed.set()
        try:
            self._queue.put_nowait(None)
        except queue.Full:
            pass
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
        self.pool.stop(timeout=timeout)
        self.store.close()

    def __enter__(self) -> "RaceCheckService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def pause(self) -> None:
        """Hold the dispatcher (queued work stays queued) — the ops/test
        lever that makes queue-full behaviour reproducible."""
        self._paused.set()
        self._resumed.clear()

    def resume(self) -> None:
        self._paused.clear()
        self._resumed.set()

    # -- admission ----------------------------------------------------------

    def submit(
        self,
        data: bytes,
        tenant: str = "default",
        request_id: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Admit one uploaded trace; returns the ``202`` payload.

        Raises :class:`QuotaExceeded`, :class:`CorruptTrace`,
        :class:`QueueFull` or :class:`ServiceDraining` — each mapping
        to one structured HTTP refusal.  A token is only *kept* when
        the submission actually costs analysis work; refusals
        downstream of the quota — and dedup-cache hits, which cost the
        pool nothing — refund it.
        """
        if self._draining and not self._stopping:
            self._tinc("serve.submissions", tenant)
            self._tinc("serve.drain_rejected", tenant)
            raise ServiceDraining(self.retry_after_s)
        if self._stopping or not self._started:
            raise ServiceError("service is not accepting submissions")
        self._tinc("serve.submissions", tenant)
        if not self.quota.try_acquire(tenant):
            self._tinc("serve.quota_denied", tenant)
            raise QuotaExceeded(tenant, self.quota.retry_after_s())
        try:
            events = verify_trace_bytes(data, name=f"upload:{tenant}")
        except ValueError as exc:
            self.quota.refund(tenant)
            self._tinc("serve.corrupt_rejected", tenant)
            raise CorruptTrace(str(exc)) from None
        sha256 = hashlib.sha256(data).hexdigest()
        cached = self._cached_verdict(sha256)
        with self._lock:
            self._accepted += 1
            if request_id is None or not request_id.strip():
                request_id = f"r{self._accepted:06d}"
        submission = self.store.create(
            tenant, request_id, data, events, sha256=sha256,
            persist=cached is None,
        )
        if cached is not None:
            # Dedup hit: the verdict is already known — serve it
            # without queueing, refund the token, journal the whole
            # lifecycle so a restart still remembers the submission.
            submission.cached = True
            self.quota.refund(tenant)
            self._tinc("cache.hit", tenant)
            self._tinc("serve.accepted", tenant)
            self.store.commit(submission.id)
            with self._lock:
                self._inflight += 1
            self._settle(
                submission.id, result=cached, attempts=0, fold_counters=False
            )
            return {
                "id": submission.id,
                "request_id": request_id,
                "state": submission.state,
                "events": events,
                "cached": True,
            }
        try:
            self._queue.put_nowait(submission.id)
        except queue.Full:
            self.store.discard(submission.id)
            self.quota.refund(tenant)
            self._tinc("serve.queue_rejected", tenant)
            raise QueueFull(self.queue_size, self.retry_after_s) from None
        self.store.commit(submission.id)
        if self.dedup:
            self._tinc("cache.miss", tenant)
        with self._lock:
            self._inflight += 1
        self._tinc("serve.accepted", tenant)
        self.registry.set_gauge("serve.queue_depth", self._queue.qsize())
        if self.tracer is not None:
            span = self.tracer.start_span(
                "serve.submission",
                id=submission.id,
                tenant=tenant,
                request_id=request_id,
            )
            with self._lock:
                self._spans[submission.id] = span
        return {
            "id": submission.id,
            "request_id": request_id,
            "state": submission.state,
            "events": events,
        }

    # -- the verdict dedup cache --------------------------------------------

    def _cache_job(self, sha256: str) -> Job:
        """The synthetic job keying one trace-content + analysis-params
        combination in the verdict cache.  Never executed — only its
        content-hashed ``job_id`` matters, so a mode or hot-sites
        change can never serve a stale-shaped report."""
        return Job(
            fn="repro.service.jobs:analyze_submission",
            config={
                "sha256": sha256,
                "mode": self.mode,
                "hot_sites": self.hot_sites,
            },
            name=f"verdict:{sha256[:12]}",
            group="serve",
        )

    def _cached_verdict(self, sha256: str) -> Optional[Dict[str, Any]]:
        if self._verdicts is None:
            return None
        record = self._verdicts.load(self._cache_job(sha256))
        if record is None:
            return None
        value = record.get("value")
        return value if isinstance(value, dict) else None

    def _store_verdict(self, sha256: str, result: Dict[str, Any]) -> None:
        if self._verdicts is None or not sha256:
            return
        try:
            self._verdicts.store(self._cache_job(sha256), result)
        except OSError:
            # The cache is an optimization; a full disk must not fail
            # the verdict that was already computed.
            self.registry.inc("cache.store_errors")

    # -- dispatch -----------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            self._resumed.wait()
            try:
                sid = self._queue.get(timeout=0.2)
            except queue.Empty:
                if self._stopping:
                    break
                continue
            if sid is None:
                break
            # Re-check the gate after the dequeue: a pause() issued while
            # we were blocked in get() must hold this submission too (it
            # is held here, un-launched, until resume), so "paused" means
            # no new analyses start — deterministically.
            self._resumed.wait()
            self.registry.set_gauge("serve.queue_depth", self._queue.qsize())
            self._slots.acquire()
            if self._stopping:
                self._slots.release()
                self._shutdown_settle(sid)
                continue
            self._launch(sid)
        # Shutdown: whatever is still queued gets a terminal state so no
        # client polls a submission that can never finish — unless the
        # stop is preserving, in which case the journal keeps owing it
        # to the next boot.
        while True:
            try:
                sid = self._queue.get_nowait()
            except queue.Empty:
                return
            if sid is not None:
                self._shutdown_settle(sid)

    def _shutdown_settle(self, sid: str) -> None:
        if self._preserve:
            # Graceful: leave the submission journaled as accepted; the
            # next boot's recovery re-enqueues it.
            with self._lock:
                span = self._spans.pop(sid, None)
                self._inflight -= 1
                self._idle.notify_all()
            if span is not None:
                span.set("state", "journaled")
                self.tracer.end_span(span)
            self.registry.inc("serve.preserved")
            return
        self._settle(sid, error="ServiceStopped: daemon shut down", attempts=0)

    def _launch(self, sid: str) -> None:
        submission = self.store.get(sid)
        if submission is None:
            self._slots.release()
            return
        self.store.mark_running(sid)
        config: Dict[str, Any] = {
            "trace": submission.trace_path,
            "mode": self.mode,
            "hot_sites": self.hot_sites,
        }
        if self.crash_every > 0:
            ordinal = int(sid[1:])
            if ordinal % self.crash_every == 0:
                scars = os.path.join(str(self.store.spool), "scars")
                os.makedirs(scars, exist_ok=True)
                config["inject_fault"] = {
                    "kind": "worker-crash",
                    "scar": os.path.join(scars, f"{sid}.scar"),
                }
                self.registry.inc("serve.chaos_armed")
        job = Job(
            fn="repro.service.jobs:analyze_submission",
            config=config,
            name=sid,
            group="serve",
        )
        self.pool.submit(job, callback=lambda result: self._on_result(
            sid, result
        ))

    def _on_result(self, sid: str, result: Any) -> None:
        self._slots.release()
        if result.ok:
            self._settle(sid, result=result.value, attempts=result.attempts)
        else:
            if self._preserve and "PoolStopped" in (result.error or ""):
                # Preserving stop: the analysis never ran — keep the
                # journaled accepted record for the next boot instead
                # of failing the submission.
                with self._lock:
                    span = self._spans.pop(sid, None)
                    self._inflight -= 1
                    self._idle.notify_all()
                if span is not None:
                    span.set("state", "journaled")
                    self.tracer.end_span(span)
                self.registry.inc("serve.preserved")
                return
            self._settle(sid, error=result.error, attempts=result.attempts)

    def _settle(
        self,
        sid: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        attempts: int = 1,
        fold_counters: bool = True,
    ) -> None:
        if error is None and fold_counters:
            # Store the verdict BEFORE the state flips to terminal: a
            # client that polls /result, sees "done" and instantly
            # re-uploads the same bytes must hit the cache, not race
            # past it into the pool.
            before = self.store.get(sid)
            if before is not None:
                self._store_verdict(before.sha256, result or {})
        submission = self.store.finish(
            sid, result=result, error=error, attempts=attempts
        )
        tenant = submission.tenant
        latency = submission.latency_s()
        if latency is not None:
            self._observe_latency(tenant, latency)
        if error is None:
            self._tinc("serve.completed", tenant)
            verdict = (result or {}).get("verdict", "unknown")
            self._tinc(f"serve.verdict.{verdict}", tenant)
            if fold_counters:
                # Fleet-wide detector totals: every verdict's clean.*
                # counter trail accumulates into the shared registry, so
                # /metrics exposes the same counters a live detector
                # would.  Cache-served verdicts skip this — no detector
                # work actually happened.
                for name, value in (
                    (result or {}).get("counters") or {}
                ).items():
                    self.registry.inc(name, value)
        else:
            self._tinc("serve.failed", tenant)
        with self._lock:
            span = self._spans.pop(sid, None)
            self._inflight -= 1
            self._idle.notify_all()
        if span is not None:
            span.set("state", submission.state)
            span.set("attempts", attempts)
            if error is not None:
                span.set("error", error)
            self.tracer.end_span(span)

    # -- results ------------------------------------------------------------

    def result(self, sid: str) -> Dict[str, Any]:
        """The submission's current state (any lifecycle stage)."""
        payload = self.store.payload(sid)
        if payload is None:
            raise UnknownSubmission(sid)
        return payload

    def report(self, sid: str) -> Dict[str, Any]:
        """The full analysis report; 409 until the verdict is in."""
        submission = self.store.get(sid)
        if submission is None:
            raise UnknownSubmission(sid)
        if not submission.terminal:
            raise NotReady(sid, submission.state)
        return submission.to_payload(full=True)

    def drain(self, timeout: float = 30.0) -> bool:
        """Block until every accepted submission is terminal."""
        deadline = time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
        return True

    def status(self) -> Dict[str, Any]:
        """The ``/status`` document."""
        document = {
            "state": "stopping" if self._stopping else (
                "draining" if self._draining else (
                    "serving" if self._started else "idle"
                )
            ),
            "uptime_s": round(time.monotonic() - self._start_time, 3),
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.queue_size,
                "paused": self._paused.is_set(),
            },
            "submissions": self.store.counts(),
            "pool": self.pool.status_snapshot(),
            "quota": self.quota.snapshot(),
            "durability": {
                "journal": (
                    str(self.store.journal.path)
                    if self.store.journal is not None
                    else None
                ),
                "dedup": self.dedup,
            },
        }
        if self.recovery:
            document["recovery"] = {
                "resumed": len(self.recovery.get("resumed", [])),
                "restored": len(self.recovery.get("restored", [])),
                "lost": len(self.recovery.get("lost", [])),
                "orphan_spools": self.recovery.get("orphan_spools", 0),
                "salvaged_bytes": self.recovery.get("salvaged_bytes", 0),
            }
        return document
