"""Per-tenant admission quotas for the race-checking service.

One token buys one accepted submission.  Each tenant gets an
independent bucket of ``tokens`` capacity; with ``refill_per_s`` > 0
the bucket refills continuously (classic token bucket — sustained rate
``refill_per_s``, burst ``tokens``), with ``refill_per_s == 0`` it is a
hard budget that only :meth:`QuotaManager.refund` can restore — the
deterministic mode the tests use.

Unknown tenants are created on first touch; ``tokens=None`` disables
quotas entirely (every acquire succeeds).  The manager is thread-safe:
the HTTP server hits it from many handler threads at once.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

__all__ = ["QuotaManager"]


class QuotaManager:
    """Token buckets keyed by tenant name."""

    def __init__(
        self,
        tokens: Optional[int] = None,
        refill_per_s: float = 0.0,
    ) -> None:
        if tokens is not None and tokens < 1:
            raise ValueError("quota capacity must be >= 1 (or None)")
        self.capacity = tokens
        self.refill_per_s = max(0.0, float(refill_per_s))
        self._lock = threading.Lock()
        self._levels: Dict[str, float] = {}
        self._stamps: Dict[str, float] = {}
        self._denied: Dict[str, int] = {}

    @property
    def unlimited(self) -> bool:
        return self.capacity is None

    def _refill_locked(self, tenant: str, now: float) -> None:
        if self.refill_per_s <= 0.0:
            return
        elapsed = now - self._stamps[tenant]
        self._levels[tenant] = min(
            float(self.capacity),
            self._levels[tenant] + elapsed * self.refill_per_s,
        )
        self._stamps[tenant] = now

    def try_acquire(self, tenant: str) -> bool:
        """Take one token for ``tenant``; False when the bucket is dry."""
        if self.capacity is None:
            return True
        now = time.monotonic()
        with self._lock:
            if tenant not in self._levels:
                self._levels[tenant] = float(self.capacity)
                self._stamps[tenant] = now
            self._refill_locked(tenant, now)
            if self._levels[tenant] >= 1.0:
                self._levels[tenant] -= 1.0
                return True
            self._denied[tenant] = self._denied.get(tenant, 0) + 1
            return False

    def refund(self, tenant: str) -> None:
        """Return one token (the submission was rejected downstream —
        e.g. a full queue — so it must not burn quota)."""
        if self.capacity is None:
            return
        with self._lock:
            if tenant in self._levels:
                self._levels[tenant] = min(
                    float(self.capacity), self._levels[tenant] + 1.0
                )

    def retry_after_s(self) -> float:
        """Seconds until a dry bucket holds one token again (the 429's
        ``Retry-After``); a hard budget suggests a nominal 1s."""
        if self.capacity is None or self.refill_per_s <= 0.0:
            return 1.0
        return max(1.0 / self.refill_per_s, 0.001)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant levels for ``/status`` (freshly refilled)."""
        if self.capacity is None:
            return {}
        now = time.monotonic()
        with self._lock:
            for tenant in self._levels:
                self._refill_locked(tenant, now)
            return {
                tenant: {
                    "tokens": round(self._levels[tenant], 3),
                    "capacity": float(self.capacity),
                    "denied": self._denied.get(tenant, 0),
                }
                for tenant in sorted(self._levels)
            }
