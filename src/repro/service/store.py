"""The submission store: spooled trace files + in-memory lifecycle.

A :class:`Submission` walks ``queued -> running -> done | failed``.
The store assigns ids (``s000001``, ...), spools each accepted upload
to ``<spool>/<id>.trace`` for the analysis workers to re-open, stamps
monotonic queue/start/finish times (the latency numbers the service
histograms come from), and — unless ``keep_traces`` — deletes the
spooled file once the submission reaches a terminal state, so a
long-running daemon's disk footprint is bounded by the work in flight.

All mutation goes through the store's lock; reads hand out JSON-ready
payload dicts, never live objects.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["Submission", "SubmissionStore"]

#: Submission lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


@dataclass
class Submission:
    """One accepted upload and everything the API serves about it."""

    id: str
    tenant: str
    request_id: str
    size: int
    trace_path: str
    events: int = 0
    state: str = QUEUED
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    attempts: int = 0
    queued_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def latency_s(self) -> Optional[float]:
        """Queue-to-verdict seconds (None until terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.queued_at

    def to_payload(self, full: bool = False) -> Dict[str, Any]:
        """The ``/result`` view; ``full=True`` adds the analysis report
        (the ``/report`` view)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "state": self.state,
            "size_bytes": self.size,
            "events": self.events,
            "attempts": self.attempts,
        }
        if self.terminal:
            latency = self.latency_s()
            payload["latency_s"] = (
                round(latency, 6) if latency is not None else None
            )
        if self.state == FAILED:
            payload["error"] = self.error
        if self.state == DONE and self.result is not None:
            payload["verdict"] = self.result.get("verdict")
            if full:
                payload["report"] = self.result
        return payload


class SubmissionStore:
    """Thread-safe registry of submissions plus their spooled traces."""

    def __init__(self, spool: str, keep_traces: bool = False) -> None:
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.keep_traces = keep_traces
        self._lock = threading.Lock()
        self._items: Dict[str, Submission] = {}
        self._next = 0

    def create(
        self, tenant: str, request_id: str, data: bytes, events: int
    ) -> Submission:
        """Spool ``data`` (already CRC-validated) and register it."""
        with self._lock:
            self._next += 1
            sid = f"s{self._next:06d}"
        path = self.spool / f"{sid}.trace"
        with open(path, "wb") as fh:
            fh.write(data)
        submission = Submission(
            id=sid,
            tenant=tenant,
            request_id=request_id,
            size=len(data),
            trace_path=str(path),
            events=events,
        )
        with self._lock:
            self._items[sid] = submission
        return submission

    def get(self, sid: str) -> Optional[Submission]:
        with self._lock:
            return self._items.get(sid)

    def discard(self, sid: str) -> None:
        """Drop a record whose submission was rejected downstream (full
        queue): the client got a 429 with no id, so nothing may remain."""
        with self._lock:
            submission = self._items.pop(sid, None)
        if submission is not None:
            try:
                os.unlink(submission.trace_path)
            except OSError:
                pass

    def payload(self, sid: str, full: bool = False) -> Optional[Dict[str, Any]]:
        with self._lock:
            submission = self._items.get(sid)
            return submission.to_payload(full=full) if submission else None

    def mark_running(self, sid: str) -> None:
        with self._lock:
            submission = self._items[sid]
            submission.state = RUNNING
            if submission.started_at is None:
                submission.started_at = time.monotonic()

    def finish(
        self,
        sid: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        attempts: int = 1,
    ) -> Submission:
        """Move ``sid`` to its terminal state and reap the spool file."""
        with self._lock:
            submission = self._items[sid]
            submission.finished_at = time.monotonic()
            submission.attempts = attempts
            if error is None:
                submission.state = DONE
                submission.result = result
            else:
                submission.state = FAILED
                submission.error = error
        if not self.keep_traces:
            try:
                os.unlink(submission.trace_path)
            except OSError:
                pass
        return submission

    def counts(self) -> Dict[str, int]:
        """State histogram for ``/status``."""
        with self._lock:
            tally: Dict[str, int] = {
                QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0
            }
            for submission in self._items.values():
                tally[submission.state] += 1
            tally["total"] = len(self._items)
            return tally

    def latencies(self) -> List[float]:
        """Latency of every terminal submission (bench/status use)."""
        with self._lock:
            return [
                s.latency_s()
                for s in self._items.values()
                if s.terminal and s.latency_s() is not None
            ]
