"""The submission store: spooled trace files, lifecycle, durability.

A :class:`Submission` walks ``queued -> running -> done | failed``.
The store assigns ids (``s000001``, ...), spools each accepted upload
to ``<spool>/<id>.trace`` for the analysis workers to re-open, stamps
monotonic queue/start/finish times (the latency numbers the service
histograms come from), and — unless ``keep_traces`` — deletes the
spooled file once the submission reaches a terminal state, so a
long-running daemon's disk footprint is bounded by the work in flight.

**Durability.**  With a :class:`SubmissionJournal` attached, every
lifecycle transition is written through to an append-only, CRC-framed,
fsync'd journal *before* the transition is acknowledged:

* ``accepted`` — the submission is committed (its trace is already
  spooled and fsync'd): after this record hits disk, a crash cannot
  lose the submission;
* ``running`` — an analysis attempt started;
* ``done`` / ``failed`` — the terminal record, carrying the verdict
  payload (or the structured error) so a restart can serve results the
  crashed daemon had already computed.

On restart :meth:`SubmissionStore.recover` replays the journal against
the spool directory: terminal submissions are restored verbatim,
accepted-but-unfinished ones whose spooled trace still passes the CRC
walk are re-queued for analysis, and journal entries whose trace is
missing or corrupt become ``failed: lost_trace`` — *visible* loss, not
silent loss.  Torn final records (the daemon died mid-append) are
salvaged away by frame-level CRC checks: a truncated tail can drop the
final record, never fabricate one.  After recovery — and periodically
at runtime once enough terminal records accumulate — the journal is
*compacted* down to its live (non-terminal) entries, so its size tracks
the work in flight, not the daemon's lifetime.

All mutation goes through the store's lock; reads hand out JSON-ready
payload dicts, never live objects.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..runtime.trace import read_frames, verify_trace, write_frame

__all__ = [
    "JOURNAL_MAGIC",
    "Submission",
    "SubmissionJournal",
    "SubmissionStore",
]

#: Submission lifecycle states.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"

#: Magic bytes opening every submission journal, followed by nothing —
#: the frame stream starts immediately (one version byte is folded into
#: the magic itself).
JOURNAL_MAGIC = b"CLNJRNL1"

_SID_RE = re.compile(r"s(\d{6,})\.trace$")


@dataclass
class Submission:
    """One accepted upload and everything the API serves about it."""

    id: str
    tenant: str
    request_id: str
    size: int
    trace_path: str
    events: int = 0
    sha256: str = ""
    state: str = QUEUED
    error: Optional[str] = None
    result: Optional[Dict[str, Any]] = None
    attempts: int = 0
    #: verdict served from the dedup cache, no analysis dispatched
    cached: bool = False
    #: resurrected by crash recovery (re-analyzed or restored)
    recovered: bool = False
    queued_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def latency_s(self) -> Optional[float]:
        """Queue-to-verdict seconds (None until terminal)."""
        if self.finished_at is None:
            return None
        return self.finished_at - self.queued_at

    def to_payload(self, full: bool = False) -> Dict[str, Any]:
        """The ``/result`` view; ``full=True`` adds the analysis report
        (the ``/report`` view)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "state": self.state,
            "size_bytes": self.size,
            "events": self.events,
            "attempts": self.attempts,
        }
        if self.cached:
            payload["cached"] = True
        if self.recovered:
            payload["recovered"] = True
        if self.terminal:
            latency = self.latency_s()
            payload["latency_s"] = (
                round(latency, 6) if latency is not None else None
            )
        if self.state == FAILED:
            payload["error"] = self.error
        if self.state == DONE and self.result is not None:
            payload["verdict"] = self.result.get("verdict")
            if full:
                payload["report"] = self.result
        return payload


class SubmissionJournal:
    """Append-only write-ahead log of submission lifecycle records.

    One JSON record per CRC frame (:func:`~repro.runtime.trace.write_frame`),
    after a fixed magic header.  Appends are fsync'd by default — an
    acknowledged record survives ``kill -9`` — and :meth:`replay` reads
    the journal back in salvage mode, physically truncating any torn
    tail so the file converges back to a clean prefix.  Thread-safe.
    """

    def __init__(self, path: Union[str, Path], fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._lock = threading.Lock()
        self._fh: Optional[Any] = None
        #: terminal records appended since the last compaction — the
        #: trigger for runtime compaction.
        self.dead_records = 0
        #: bytes of torn tail dropped by the last :meth:`replay`.
        self.salvaged_bytes = 0

    def _open_locked(self) -> Any:
        if self._fh is None or self._fh.closed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._fh = open(self.path, "ab")
            if fresh:
                self._fh.write(JOURNAL_MAGIC)
                self._fh.flush()
                if self.fsync:
                    os.fsync(self._fh.fileno())
        return self._fh

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (fsync'd unless disabled)."""
        payload = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        with self._lock:
            fh = self._open_locked()
            write_frame(fh, payload)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
            if record.get("op") in (DONE, FAILED):
                self.dead_records += 1

    def replay(self, truncate: bool = True) -> List[Dict[str, Any]]:
        """Read every intact record back, salvaging a torn tail.

        ``truncate=True`` (the default) also cuts the file back to its
        last intact record, so the next append lands on a clean prefix.
        Records that decode as frames but not as JSON objects end the
        readable prefix the same way a CRC mismatch does — everything
        past the first damage is untrusted in an append-only log.
        """
        with self._lock:
            self.salvaged_bytes = 0
            try:
                data = self.path.read_bytes()
            except FileNotFoundError:
                return []
            if not data:
                return []
            body = data
            skip = 0
            if body.startswith(JOURNAL_MAGIC):
                skip = len(JOURNAL_MAGIC)
                body = data[skip:]
            elif len(body) < len(JOURNAL_MAGIC) and JOURNAL_MAGIC.startswith(
                body
            ):
                # The crash landed inside the magic itself: an empty
                # journal, not a corrupt one.
                body, skip = b"", len(data)
            payloads, good = read_frames(
                body, name=str(self.path), salvage=True
            )
            records: List[Dict[str, Any]] = []
            kept = 0
            for payload in payloads:
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    record = None
                if not isinstance(record, dict) or "op" not in record:
                    break
                records.append(record)
                kept += len(payload) + 8  # frame header is 8 bytes
            good = min(good, kept)
            self.salvaged_bytes = len(body) - good
            if truncate and self.salvaged_bytes:
                if self._fh is not None and not self._fh.closed:
                    self._fh.close()
                    self._fh = None
                with open(self.path, "r+b") as fh:
                    fh.truncate(skip + good)
                    fh.flush()
                    os.fsync(fh.fileno())
            return records

    def rewrite(self, records: List[Dict[str, Any]]) -> None:
        """Atomically replace the journal with ``records`` (compaction).

        Written to a temporary sibling, fsync'd, then renamed into
        place — a crash mid-compaction leaves either the old journal or
        the new one, never a hybrid.
        """
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
                self._fh = None
            tmp = self.path.with_suffix(".compact")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                fh.write(JOURNAL_MAGIC)
                for record in records:
                    write_frame(
                        fh,
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        ).encode("utf-8"),
                    )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            self.dead_records = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None and not self._fh.closed:
                self._fh.close()
            self._fh = None


class SubmissionStore:
    """Thread-safe registry of submissions plus their spooled traces."""

    def __init__(
        self,
        spool: str,
        keep_traces: bool = False,
        journal: Union[None, bool, str, Path] = None,
        journal_fsync: bool = True,
        compact_every: int = 256,
    ) -> None:
        self.spool = Path(spool)
        self.spool.mkdir(parents=True, exist_ok=True)
        self.keep_traces = keep_traces
        self.compact_every = max(1, compact_every)
        if journal is True:
            journal = self.spool / "journal.clnj"
        self.journal: Optional[SubmissionJournal] = (
            SubmissionJournal(journal, fsync=journal_fsync)
            if journal
            else None
        )
        self._lock = threading.Lock()
        self._items: Dict[str, Submission] = {}
        self._next = 0

    # -- lifecycle ----------------------------------------------------------

    def create(
        self,
        tenant: str,
        request_id: str,
        data: bytes,
        events: int,
        sha256: str = "",
        persist: bool = True,
    ) -> Submission:
        """Spool ``data`` (already CRC-validated) and register it.

        The spool write is flushed and fsync'd when a journal is
        attached: an ``accepted`` journal record must never point at a
        trace the page cache still owed to disk.  The submission is not
        journaled here — :meth:`commit` does that once the service has
        actually admitted it (a queue-full rejection between the two
        leaves nothing to resurrect).  ``persist=False`` skips the
        spool write entirely — the dedup-cache hit path, where the
        verdict is already known and the bytes will never be analyzed.
        """
        with self._lock:
            self._next += 1
            sid = f"s{self._next:06d}"
        path = self.spool / f"{sid}.trace"
        if persist:
            with open(path, "wb") as fh:
                fh.write(data)
                if self.journal is not None:
                    fh.flush()
                    os.fsync(fh.fileno())
        submission = Submission(
            id=sid,
            tenant=tenant,
            request_id=request_id,
            size=len(data),
            trace_path=str(path),
            events=events,
            sha256=sha256,
        )
        with self._lock:
            self._items[sid] = submission
        return submission

    def _accepted_record(self, submission: Submission) -> Dict[str, Any]:
        return {
            "op": "accepted",
            "id": submission.id,
            "tenant": submission.tenant,
            "request_id": submission.request_id,
            "size": submission.size,
            "events": submission.events,
            "sha256": submission.sha256,
            "trace": os.path.basename(submission.trace_path),
        }

    def commit(self, sid: str) -> None:
        """Write-ahead the acceptance: after this returns, a crash
        cannot lose the submission."""
        if self.journal is None:
            return
        with self._lock:
            submission = self._items.get(sid)
        if submission is not None:
            self.journal.append(self._accepted_record(submission))

    def get(self, sid: str) -> Optional[Submission]:
        with self._lock:
            return self._items.get(sid)

    def discard(self, sid: str) -> None:
        """Drop a record whose submission was rejected downstream (full
        queue): the client got a 429 with no id, so nothing may remain —
        neither the registry entry nor the spooled ``.trace`` file."""
        with self._lock:
            submission = self._items.pop(sid, None)
        # Reap the spool file even if the registry entry is already gone
        # (or was never created): a discarded submission must not leak
        # its upload onto the daemon's disk.
        path = (
            submission.trace_path
            if submission is not None
            else str(self.spool / f"{sid}.trace")
        )
        try:
            os.unlink(path)
        except OSError:
            pass

    def payload(self, sid: str, full: bool = False) -> Optional[Dict[str, Any]]:
        with self._lock:
            submission = self._items.get(sid)
            return submission.to_payload(full=full) if submission else None

    def mark_running(self, sid: str) -> None:
        with self._lock:
            submission = self._items[sid]
            submission.state = RUNNING
            if submission.started_at is None:
                submission.started_at = time.monotonic()
        if self.journal is not None:
            self.journal.append({"op": "running", "id": sid})

    def finish(
        self,
        sid: str,
        result: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
        attempts: int = 1,
    ) -> Submission:
        """Move ``sid`` to its terminal state and reap the spool file."""
        with self._lock:
            submission = self._items[sid]
            submission.finished_at = time.monotonic()
            submission.attempts = attempts
            if error is None:
                submission.state = DONE
                submission.result = result
            else:
                submission.state = FAILED
                submission.error = error
        if self.journal is not None:
            record: Dict[str, Any] = {
                "op": submission.state,
                "id": sid,
                "attempts": attempts,
                "latency_s": round(submission.latency_s() or 0.0, 6),
            }
            if error is None:
                record["result"] = result
            else:
                record["error"] = error
            self.journal.append(record)
        if not self.keep_traces:
            try:
                os.unlink(submission.trace_path)
            except OSError:
                pass
        if (
            self.journal is not None
            and self.journal.dead_records >= self.compact_every
        ):
            self.compact()
        return submission

    # -- durability ---------------------------------------------------------

    def compact(self) -> int:
        """Rewrite the journal down to its live entries; returns how
        many submissions stayed journaled.

        Terminal records are dropped: their verdicts live on in memory
        (and, content-addressed, in the dedup cache) — the journal only
        owes the next boot the submissions that still need work.
        """
        if self.journal is None:
            return 0
        with self._lock:
            live = [s for s in self._items.values() if not s.terminal]
            records: List[Dict[str, Any]] = []
            for submission in sorted(live, key=lambda s: s.id):
                records.append(self._accepted_record(submission))
                if submission.state == RUNNING:
                    records.append({"op": "running", "id": submission.id})
        self.journal.rewrite(records)
        return len(live)

    def recover(self, dry_run: bool = False) -> Dict[str, Any]:
        """Replay the journal against the spool directory.

        Classifies every journaled submission:

        * terminal (``done``/``failed`` record present) → **restored**:
          the verdict the crashed daemon already computed is served
          as-is;
        * accepted/running with an intact spooled trace → **resumed**:
          re-queued for analysis (the caller re-enqueues the returned
          ids);
        * accepted/running with a missing or corrupt trace → **lost**:
          terminally ``failed: lost_trace`` — the loss is reported to
          the polling client, never silent.

        Spool files with no journal record (the daemon died between the
        spool write and the ``accepted`` record — the client never got
        its 202) are reaped as orphans.  Unless ``dry_run``, the store
        is populated, lost entries are journaled terminal, and the
        journal is compacted down to the resumed entries.
        """
        report: Dict[str, Any] = {
            "journaled": 0,
            "resumed": [],
            "restored": [],
            "lost": [],
            "orphan_spools": 0,
            "salvaged_bytes": 0,
        }
        if self.journal is None:
            return report
        records = self.journal.replay(truncate=not dry_run)
        report["salvaged_bytes"] = self.journal.salvaged_bytes
        # Pass 1: the set of real submissions is exactly the set of
        # accepted records — state records for unknown ids (impossible
        # in an intact journal, conceivable after salvage) are ignored,
        # never fabricated into submissions.
        entries: Dict[str, Dict[str, Any]] = {}
        for record in records:
            if record.get("op") == "accepted" and "id" in record:
                entries[record["id"]] = {"accepted": record, "terminal": None,
                                         "running": False}
        # Pass 2: lifecycle transitions, in journal order.
        for record in records:
            entry = entries.get(record.get("id"))
            if entry is None:
                continue
            op = record.get("op")
            if op == "running":
                entry["running"] = True
            elif op in (DONE, FAILED):
                entry["terminal"] = record
        report["journaled"] = len(entries)

        highest = 0
        restored: List[Submission] = []
        now = time.monotonic()
        for sid in sorted(entries):
            entry = entries[sid]
            accepted = entry["accepted"]
            try:
                highest = max(highest, int(sid[1:]))
            except ValueError:
                pass
            trace_path = self.spool / str(accepted.get("trace") or
                                          f"{sid}.trace")
            submission = Submission(
                id=sid,
                tenant=str(accepted.get("tenant", "default")),
                request_id=str(accepted.get("request_id", sid)),
                size=int(accepted.get("size", 0)),
                trace_path=str(trace_path),
                events=int(accepted.get("events", 0)),
                sha256=str(accepted.get("sha256", "")),
                recovered=True,
                queued_at=now,
            )
            terminal = entry["terminal"]
            if terminal is not None:
                latency = float(terminal.get("latency_s") or 0.0)
                submission.queued_at = now - latency
                submission.finished_at = now
                submission.attempts = int(terminal.get("attempts", 1))
                if terminal.get("op") == DONE:
                    submission.state = DONE
                    submission.result = terminal.get("result")
                else:
                    submission.state = FAILED
                    submission.error = str(terminal.get("error", "failed"))
                report["restored"].append(sid)
                restored.append(submission)
                continue
            damage: Optional[str] = None
            if not trace_path.exists():
                damage = "spooled trace file is missing"
            else:
                try:
                    verify_trace(trace_path)
                except ValueError as exc:
                    damage = str(exc)
            if damage is None:
                submission.state = QUEUED
                report["resumed"].append(sid)
                restored.append(submission)
            else:
                submission.state = FAILED
                submission.error = f"lost_trace: {damage}"
                submission.finished_at = now
                report["lost"].append(sid)
                restored.append(submission)

        # Orphan spool files: present on disk, absent from the journal.
        known = {os.path.basename(s.trace_path) for s in restored}
        orphans: List[Path] = []
        for path in sorted(self.spool.glob("*.trace")):
            match = _SID_RE.match(path.name)
            if match is not None:
                highest = max(highest, int(match.group(1)))
            if path.name not in known:
                orphans.append(path)
        report["orphan_spools"] = len(orphans)

        if dry_run:
            return report

        for path in orphans:
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self._next = max(self._next, highest)
            for submission in restored:
                self._items[submission.id] = submission
        for sid in report["lost"]:
            # The loss is journaled terminal so a second crash does not
            # rediscover it — but compaction below drops it anyway; the
            # in-memory failed state is what the client polls.
            if not self.keep_traces:
                try:
                    os.unlink(self._items[sid].trace_path)
                except OSError:
                    pass
        self.compact()
        return report

    def close(self) -> None:
        if self.journal is not None:
            self.journal.close()

    # -- views --------------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """State histogram for ``/status``."""
        with self._lock:
            tally: Dict[str, int] = {
                QUEUED: 0, RUNNING: 0, DONE: 0, FAILED: 0
            }
            for submission in self._items.values():
                tally[submission.state] += 1
            tally["total"] = len(self._items)
            return tally

    def latencies(self) -> List[float]:
        """Latency of every terminal submission (bench/status use)."""
        with self._lock:
            return [
                s.latency_s()
                for s in self._items.values()
                if s.terminal and s.latency_s() is not None
            ]
