"""HTTP face of the race-checking service: ``python -m repro serve``.

:class:`ServeDaemon` glues a :class:`~repro.service.service.RaceCheckService`
onto the :class:`~repro.obs.serve.TelemetryServer` router, and owns the
fleet-observability layer: a ring-buffer time-series collector, the SLO
burn-rate engine and the live dashboard.  Endpoints:

``POST /submit``
    Body: one binary trace file.  Headers: ``X-Tenant`` (quota key,
    default ``default``), ``X-Request-Id`` (optional; generated when
    absent and echoed back either way).  Replies ``202`` with
    ``{"id", "request_id", "state"}``; ``400 corrupt_trace`` when the
    CRC walk rejects the body; ``429 quota_exhausted`` /
    ``429 queue_full`` with a ``Retry-After`` header.

    Both identity headers are **sanitized before they touch anything**:
    values must match ``[A-Za-z0-9._-]`` and fit in 64 characters.  An
    out-of-alphabet or oversized ``X-Request-Id`` is dropped and a fresh
    id generated (counted in ``serve.request_id_sanitized``) — client
    bytes never reach spans, store records or log lines unvetted.  A
    bad ``X-Tenant`` falls back to ``default``
    (``serve.tenant_sanitized``) so arbitrary bytes cannot mint
    unbounded label sets.

``GET /result/<id>`` · ``GET /report/<id>``
    The submission's current state (poll this; ``404`` unknown ids) and
    the full analysis report (``409 not_ready`` until terminal).

``GET /metrics`` · ``GET /status`` · ``GET /healthz``
    Prometheus exposition of the shared registry (fleet totals plus
    per-tenant ``{tenant="..."}`` series); the service status document;
    a trivial liveness probe.

``GET /timeseries``
    The collector's ring buffers as JSON
    (:meth:`~repro.obs.timeseries.TimeSeriesStore.to_payload`) — the
    scrape artifact ``repro slo`` re-evaluates offline.

``GET /alerts``
    The SLO burn-rate document
    (:func:`~repro.obs.slo.evaluate_slos`): per-objective window burns
    and the firing set.

``GET /dashboard``
    The self-contained HTML dashboard
    (:func:`~repro.obs.dashboard.render_dashboard`): sparklines,
    per-tenant tables and the alert panel, auto-refreshing.

The collector samples every ``sample_interval_s`` seconds into
``retention`` ring slots and only ever *reads* the registry — verdicts
and counters are byte-identical with it on or off.  ``collect=False``
disables it (the time-series endpoints then serve whatever was sampled
manually, typically nothing).
"""

from __future__ import annotations

import re
from typing import Any, Optional, Sequence

from ..obs.dashboard import render_dashboard
from ..obs.serve import Request, Response, TelemetryServer
from ..obs.slo import Objective, default_slos, evaluate_slos
from ..obs.timeseries import Collector, TimeSeriesStore
from .service import RaceCheckService, ServiceError

__all__ = ["ServeDaemon"]

#: Client-supplied identity headers must fullmatch this: the charset
#: that is safe in log lines, span attributes, file names and metric
#: label values without quoting games.
_IDENT_RE = re.compile(r"[A-Za-z0-9._-]{1,64}")


class ServeDaemon:
    """Owns the HTTP server + observability layer for one service."""

    def __init__(
        self,
        service: RaceCheckService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: Optional[int] = None,
        sample_interval_s: float = 1.0,
        retention: int = 600,
        slos: Optional[Sequence[Objective]] = None,
        collect: bool = True,
        refresh_s: int = 3,
    ) -> None:
        self.service = service
        self.timeseries = TimeSeriesStore(capacity=retention)
        self.slos = list(slos) if slos is not None else default_slos()
        self.refresh_s = refresh_s
        self.collector: Optional[Collector] = (
            Collector(
                self.timeseries, service.registry,
                interval_s=sample_interval_s,
            )
            if collect else None
        )
        kwargs = {} if max_body is None else {"max_body": max_body}
        self.server = TelemetryServer(
            registry=service.registry,
            status_fn=service.status,
            host=host,
            port=port,
            **kwargs,
        )
        self.server.add_route("POST", "/submit", self._submit)
        self.server.add_route("GET", "/result/", self._result)
        self.server.add_route("GET", "/report/", self._report)
        self.server.add_route("GET", "/healthz", self._healthz)
        self.server.add_route("GET", "/timeseries", self._timeseries)
        self.server.add_route("GET", "/alerts", self._alerts)
        self.server.add_route("GET", "/dashboard", self._dashboard)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> int:
        self.service.start()
        if self.collector is not None:
            self.collector.start()
        return self.server.start()

    def stop(self) -> None:
        self.server.stop()
        if self.collector is not None:
            self.collector.stop()
        self.service.stop()

    def drain(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown, phase one: refuse new submissions with
        503 + ``Retry-After`` and settle in-flight work.

        Returns True when everything settled inside ``timeout``.
        Whatever did not settle stays journaled — follow with
        ``service.stop(preserve_queued=True)`` (or :meth:`stop_preserving`)
        so the next boot resurrects it.
        """
        self.service.begin_drain()
        return self.service.drain(timeout=timeout)

    def stop_preserving(self) -> None:
        """Tear down, leaving unfinished submissions journaled for the
        next boot (the ``SIGTERM`` path of ``repro serve``)."""
        self.server.stop()
        if self.collector is not None:
            self.collector.stop()
        self.service.stop(preserve_queued=True)

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- header hygiene ------------------------------------------------------

    def _clean_request_id(self, raw: str) -> Optional[str]:
        """A vetted request id, or None (= "generate one") for empty,
        oversized or out-of-alphabet input."""
        raw = raw.strip()
        if not raw:
            return None
        if _IDENT_RE.fullmatch(raw):
            return raw
        self.service.registry.inc("serve.request_id_sanitized")
        return None

    def _clean_tenant(self, raw: str) -> str:
        raw = raw.strip()
        if not raw:
            return "default"
        if _IDENT_RE.fullmatch(raw):
            return raw
        self.service.registry.inc("serve.tenant_sanitized")
        return "default"

    # -- routes -------------------------------------------------------------

    def _error(self, exc: ServiceError) -> Response:
        headers = {}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(round(retry_after))))
        return Response.json(exc.payload(), status=exc.status, **headers)

    def _submit(self, request: Request) -> Response:
        tenant = self._clean_tenant(request.header("x-tenant", "default"))
        request_id = self._clean_request_id(request.header("x-request-id"))
        try:
            payload = self.service.submit(
                request.body, tenant=tenant, request_id=request_id
            )
        except ServiceError as exc:
            return self._error(exc)
        return Response.json(payload, status=202)

    def _result(self, request: Request) -> Response:
        try:
            return Response.json(self.service.result(request.rest))
        except ServiceError as exc:
            return self._error(exc)

    def _report(self, request: Request) -> Response:
        try:
            return Response.json(self.service.report(request.rest))
        except ServiceError as exc:
            return self._error(exc)

    def _healthz(self, request: Request) -> Response:
        return Response.json({"ok": True})

    def _timeseries(self, request: Request) -> Response:
        return Response.json(self.timeseries.to_payload())

    def _alerts_payload(self) -> Any:
        return evaluate_slos(self.timeseries, self.slos)

    def _alerts(self, request: Request) -> Response:
        return Response.json(self._alerts_payload())

    def _dashboard(self, request: Request) -> Response:
        # One fresh sample before rendering, so the page never lags a
        # full collector interval behind the state it describes.
        if self.collector is not None:
            self.timeseries.sample(self.service.registry)
        html = render_dashboard(
            self.service.status(),
            self.timeseries.to_payload(),
            self._alerts_payload(),
            snapshot=self.service.registry.snapshot(),
            refresh_s=self.refresh_s,
        )
        return Response.text(html, ctype="text/html; charset=utf-8")
