"""HTTP face of the race-checking service: ``python -m repro serve``.

:class:`ServeDaemon` glues a :class:`~repro.service.service.RaceCheckService`
onto the :class:`~repro.obs.serve.TelemetryServer` router.  Endpoints:

``POST /submit``
    Body: one binary trace file.  Headers: ``X-Tenant`` (quota key,
    default ``default``), ``X-Request-Id`` (optional; generated when
    absent and echoed back either way).  Replies ``202`` with
    ``{"id", "request_id", "state"}``; ``400 corrupt_trace`` when the
    CRC walk rejects the body; ``429 quota_exhausted`` /
    ``429 queue_full`` with a ``Retry-After`` header.

``GET /result/<id>``
    The submission's current state — poll this.  ``404`` for unknown
    ids; a terminal payload carries ``verdict``/``error`` and
    ``latency_s``.

``GET /report/<id>``
    The full analysis report (verdict, race details, hot sites,
    ``clean.*`` counters, human-readable one-liner).  ``409 not_ready``
    while the submission is still queued or running.

``GET /metrics`` · ``GET /status`` · ``GET /healthz``
    Prometheus exposition of the shared registry; the service status
    document (queue, pool, quotas, submission histogram); a trivial
    liveness probe.
"""

from __future__ import annotations

from typing import Any, Optional

from ..obs.serve import Request, Response, TelemetryServer
from .service import RaceCheckService, ServiceError

__all__ = ["ServeDaemon"]


class ServeDaemon:
    """Owns the HTTP server for one :class:`RaceCheckService`."""

    def __init__(
        self,
        service: RaceCheckService,
        host: str = "127.0.0.1",
        port: int = 0,
        max_body: Optional[int] = None,
    ) -> None:
        self.service = service
        kwargs = {} if max_body is None else {"max_body": max_body}
        self.server = TelemetryServer(
            registry=service.registry,
            status_fn=service.status,
            host=host,
            port=port,
            **kwargs,
        )
        self.server.add_route("POST", "/submit", self._submit)
        self.server.add_route("GET", "/result/", self._result)
        self.server.add_route("GET", "/report/", self._report)
        self.server.add_route("GET", "/healthz", self._healthz)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> int:
        self.service.start()
        return self.server.start()

    def stop(self) -> None:
        self.server.stop()
        self.service.stop()

    @property
    def port(self) -> int:
        return self.server.port

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- routes -------------------------------------------------------------

    def _error(self, exc: ServiceError) -> Response:
        headers = {}
        retry_after = getattr(exc, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(max(1, int(round(retry_after))))
        return Response.json(exc.payload(), status=exc.status, **headers)

    def _submit(self, request: Request) -> Response:
        tenant = request.header("x-tenant", "default")
        request_id = request.header("x-request-id") or None
        try:
            payload = self.service.submit(
                request.body, tenant=tenant, request_id=request_id
            )
        except ServiceError as exc:
            return self._error(exc)
        return Response.json(payload, status=202)

    def _result(self, request: Request) -> Response:
        try:
            return Response.json(self.service.result(request.rest))
        except ServiceError as exc:
            return self._error(exc)

    def _report(self, request: Request) -> Response:
        try:
            return Response.json(self.service.report(request.rest))
        except ServiceError as exc:
            return self._error(exc)

    def _healthz(self, request: Request) -> Response:
        return Response.json({"ok": True})
