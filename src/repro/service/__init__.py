"""Race-checking as a service: the ``repro serve`` ingestion daemon.

The production face of the reproduction's north star — cheap trace
capture at the edge, detection in a shared backend.  Clients record
binary traces (:mod:`repro.runtime.trace`) wherever the workload runs
and ``POST`` them to a long-lived daemon, which race-checks each one
through the offline analysis lane (:mod:`repro.analysis`) on a pool of
resident worker processes (:class:`~repro.exec.PersistentPool`) and
serves per-submission verdicts and diagnostics.

Layering (each piece testable on its own):

* :class:`~repro.service.quota.QuotaManager` — per-tenant token-bucket
  admission;
* :class:`~repro.service.store.SubmissionStore` — spooled uploads plus
  submission lifecycle (``queued -> running -> done | failed``);
* :func:`~repro.service.jobs.analyze_submission` — the job function the
  workers execute;
* :class:`~repro.service.service.RaceCheckService` — admission, the
  bounded backpressure queue, worker dispatch, completion;
* :class:`~repro.service.daemon.ServeDaemon` — the HTTP layer on the
  :class:`~repro.obs.serve.TelemetryServer` router.

See ``docs/service.md`` for the endpoint reference, the quota and
backpressure semantics, and deployment notes.
"""

from .daemon import ServeDaemon
from .quota import QuotaManager
from .service import (
    CorruptTrace,
    NotReady,
    QueueFull,
    QuotaExceeded,
    RaceCheckService,
    ServiceDraining,
    ServiceError,
    UnknownSubmission,
)
from .store import Submission, SubmissionJournal, SubmissionStore

__all__ = [
    "CorruptTrace",
    "NotReady",
    "QueueFull",
    "QuotaExceeded",
    "QuotaManager",
    "RaceCheckService",
    "ServeDaemon",
    "ServiceDraining",
    "ServiceError",
    "Submission",
    "SubmissionJournal",
    "SubmissionStore",
    "UnknownSubmission",
]
