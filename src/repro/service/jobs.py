"""The job function the service's worker pool executes.

One top-level callable (dotted-path resolvable in any worker process,
per the :class:`~repro.exec.job.Job` contract) that race-analyzes one
spooled trace file through the PR-7 offline lane and returns the
JSON-ready verdict payload the API serves.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["analyze_submission"]


def analyze_submission(
    trace: str,
    mode: str = "batch",
    hot_sites: int = 8,
    inject_fault: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Analyze ``trace`` and return the submission's report payload.

    ``inject_fault`` is the chaos hook: process-level faults
    (``worker-crash``) are delivered by :func:`~repro.exec.job.run_job`
    before this function runs; a leftover ``monitor-raise`` spec
    arrives here and is re-delivered so it raises inside the analysis
    attempt.  Detection itself is untouched either way.
    """
    if inject_fault is not None:
        from ..faults import deliver

        deliver(inject_fault, f"analyze:{trace}")
    from ..analysis import analyze_trace

    report = analyze_trace(trace, mode=mode, hot_sites=hot_sites)
    payload = report.to_payload()
    payload["verdict"] = "racy" if report.racy else "clean"
    race = report.race
    if race is not None:
        payload["text"] = (
            f"race: {race['kind']} at {race['address']:#x} "
            f"(tid {race['accessing_tid']} vs prior writer "
            f"tid {race['prior_writer_tid']})"
        )
    else:
        payload["text"] = (
            f"clean: {report.accesses} accesses, {report.syncs} syncs, "
            f"{report.threads} threads"
        )
    return payload
