"""Race diagnostics: turning a race exception into an actionable report.

The paper motivates CLEAN partly as a development-time tool ("possibly
fast enough to use during development", Section 1) — and a race
exception is only useful to a developer if it says *which two accesses*
conflicted.  The bare exception carries the faulting address and the
epoch of the last write; :class:`RaceContextMonitor` keeps the little
extra provenance a runtime can cheaply maintain — for every address, who
last wrote it, at which per-thread operation index, in which
synchronization-free region — and renders a two-sided report when an
exception fires.

Attach it *before* the CLEAN monitor in the stack, and ask it for
:meth:`report` after a stopped run:

    ctx_monitor = RaceContextMonitor()
    result = program.run(monitors=[ctx_monitor, CleanMonitor(...)])
    if result.race:
        print(ctx_monitor.report(result.race))
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional

from .core.exceptions import RaceException
from .runtime.recovery import RecoveryReport
from .runtime.scheduler import ExecutionMonitor

__all__ = [
    "AccessSite",
    "RaceContextMonitor",
    "RaceReport",
    "render_recovery",
]


def render_recovery(report: RecoveryReport) -> str:
    """Printable summary of a run's recovery actions.

    The counterpart of :meth:`RaceReport.render` for executions that ran
    under a :class:`~repro.runtime.recovery.RecoveryPolicy`: which races
    fired, what recovery did about each (retried / quarantined /
    aborted), and how the run ended.
    """
    if report.clean:
        return f"recovery ({report.policy}): no races, no recovery actions"
    lines = [
        f"recovery ({report.policy}): {report.races} race(s), "
        f"{report.rollbacks} rollback(s), "
        f"{len(report.quarantined)} thread(s) quarantined"
    ]
    for event in report.events:
        lines.append(
            f"  step {event.step}: {event.kind} race at {event.address:#x} "
            f"in thread {event.tid} (SFR #{event.region}) -> {event.action}"
            + (f" (retry {event.retry + 1})" if event.action == "retried" else "")
        )
    if report.quarantined:
        parked = ", ".join(f"T{t}" for t in report.quarantined)
        lines.append(f"  quarantined threads: {parked}")
    if report.deadlocked:
        lines.append(
            "  run ended in a post-quarantine deadlock: surviving threads "
            "waited on a quarantined peer (graceful stop, not a hang)"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class AccessSite:
    """Provenance of one shared access."""

    tid: int
    op_index: int
    region_index: int
    is_write: bool
    address: int
    size: int

    def describe(self) -> str:
        kind = "write" if self.is_write else "read"
        return (
            f"thread {self.tid}, operation #{self.op_index} "
            f"({kind} of {self.size} byte(s) at {self.address:#x}, "
            f"SFR #{self.region_index})"
        )

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict (consumed by the forensics artifacts)."""
        return {
            "tid": self.tid,
            "op_index": self.op_index,
            "region_index": self.region_index,
            "is_write": self.is_write,
            "address": self.address,
            "size": self.size,
        }


@dataclass(frozen=True)
class RaceReport:
    """Both sides of a detected race, ready to print.

    ``hot_site`` is optional hot-site provenance from a
    :class:`~repro.obs.sites.SiteProfiler`: how much detector work this
    address attracted before the exception fired and where it ranks
    among all checked sites — the Fig.-10-style attribution that tells a
    developer whether the racing address is also a hot one.  The keys
    are ``rank``, ``checks``, ``reads``, ``writes``, ``same_epoch`` and
    ``races``.
    """

    kind: str
    address: int
    current: AccessSite
    previous: Optional[AccessSite]
    hot_site: Optional[Dict[str, Any]] = field(default=None)
    #: paths of forensics artifacts describing the same race (Chrome
    #: trace, HB graph, HTML report) — see :meth:`with_artifacts`.
    artifacts: Optional[Dict[str, str]] = field(default=None)

    def with_artifacts(self, artifacts: Dict[str, str]) -> "RaceReport":
        """A copy of this report linking the written forensics bundle."""
        return replace(self, artifacts=dict(artifacts))

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe dict naming the racing pair, plus the rendered text."""
        return {
            "kind": self.kind,
            "address": self.address,
            "current": self.current.to_payload(),
            "previous": (
                self.previous.to_payload() if self.previous is not None else None
            ),
            "hot_site": self.hot_site,
            "artifacts": self.artifacts,
            "text": self.render(),
        }

    def render(self) -> str:
        lines = [
            f"{self.kind} race on address {self.address:#x}",
            f"  second access: {self.current.describe()}",
        ]
        if self.previous is not None:
            lines.append(f"  first access:  {self.previous.describe()}")
            lines.append(
                "  the two accesses are not ordered by any synchronization"
            )
        else:
            lines.append("  first access:  (no recorded shared write)")
        if self.hot_site is not None:
            s = self.hot_site
            lines.append(
                f"  hot-site profile: rank #{s.get('rank', '?')} by "
                f"race-check work ({s.get('checks', 0)} checks, "
                f"{s.get('same_epoch', 0)} same-epoch hits, "
                f"{s.get('races', 0)} race(s) here)"
            )
        if self.artifacts:
            lines.append("  forensics artifacts:")
            for name in sorted(self.artifacts):
                lines.append(f"    {name}: {self.artifacts[name]}")
        return "\n".join(lines)


class RaceContextMonitor(ExecutionMonitor):
    """Tracks per-address last-writer provenance and per-thread progress."""

    def __init__(self) -> None:
        self._op_index: Dict[int, int] = {}
        self._region_index: Dict[int, int] = {}
        self._last_writer: Dict[int, AccessSite] = {}
        self._current: Optional[AccessSite] = None

    # -- progress tracking ----------------------------------------------------

    def on_thread_start(self, tid: int, parent) -> None:
        self._op_index[tid] = 0
        self._region_index[tid] = 0

    def on_sync_commit(self, tid: int, op) -> None:
        self._op_index[tid] = self._op_index.get(tid, 0) + 1
        self._region_index[tid] = self._region_index.get(tid, 0) + 1

    def on_compute(self, tid: int, amount: int) -> None:
        self._op_index[tid] = self._op_index.get(tid, 0) + 1

    def _site(self, tid: int, address: int, size: int, is_write: bool) -> AccessSite:
        self._op_index[tid] = self._op_index.get(tid, 0) + 1
        return AccessSite(
            tid=tid,
            op_index=self._op_index[tid],
            region_index=self._region_index.get(tid, 0),
            is_write=is_write,
            address=address,
            size=size,
        )

    # -- access tracking (runs before CleanMonitor's checks) --------------------

    def before_write(self, tid, address, size, value, private) -> None:
        if private:
            return
        site = self._site(tid, address, size, True)
        self._current = site
        # Record as last writer byte by byte *after* noting current, so a
        # raised exception still sees the previous writer.
        self._pending_write = site

    def after_write(self, tid, address, size, value, private) -> None:
        if private:
            return
        site = self._pending_write
        for a in range(address, address + size):
            self._last_writer[a] = site

    def after_read(self, tid, address, size, value, private) -> None:
        if private:
            return
        self._current = self._site(tid, address, size, False)

    # -- reporting --------------------------------------------------------------

    def report(
        self, exc: RaceException, sites: Optional[Any] = None
    ) -> RaceReport:
        """Build the two-sided report for a raised race exception.

        ``sites`` — a :class:`~repro.obs.sites.SiteProfiler` that
        observed the same run — adds hot-site provenance (rank and
        per-site check counts for the faulting address).
        """
        current = self._current
        if current is None:
            current = AccessSite(exc.accessing_tid, -1, -1,
                                 exc.kind != "RAW", exc.address, exc.size)
        previous = self._last_writer.get(exc.address)
        hot_site = None
        if sites is not None:
            stats = sites.addresses.get(exc.address)
            if stats is not None:
                hot_site = dict(stats)
                hot_site["rank"] = sites.site_rank(exc.address)
        return RaceReport(
            kind=exc.kind,
            address=exc.address,
            current=current,
            previous=previous,
            hot_site=hot_site,
        )

    def render(self, exc: RaceException, sites: Optional[Any] = None) -> str:
        """Shortcut: the printable report text."""
        return self.report(exc, sites=sites).render()
