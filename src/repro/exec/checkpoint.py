"""On-disk checkpointing of job results.

One JSON file per job id under the store root (default
``.cache/experiments/``): flat, human-inspectable, and trivially safe
for concurrent writers because files are written to a temporary name
and atomically renamed into place.  Only *successful* results are ever
stored — a failed job must re-run on the next invocation, which is the
resume semantics an interrupted sweep wants.

Records carry the store format version and the library version; a
mismatch in either invalidates the entry (results produced by older
code are recomputed, never trusted).

Damaged records — unreadable files or non-JSON garbage — are not
silently dropped: they are *quarantined* to ``<root>/quarantine/``
alongside a ``.reason`` file so a flaky disk or a torn write leaves
evidence, and counted in the ``checkpoint.corrupt`` telemetry counter.
Stale records (version/schema/config mismatches) are ordinary cache
misses, not corruption, and stay in place to be overwritten.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__ as _LIBRARY_VERSION
from .job import Job

__all__ = ["CheckpointStore", "FORMAT_VERSION", "QUARANTINE_DIR"]

#: Subdirectory of the store root holding quarantined corrupt records.
QUARANTINE_DIR = "quarantine"

#: Bump when the record schema changes; old entries become cache misses.
#: v2: records may carry a ``telemetry`` payload (metrics snapshot,
#: instrument kinds, span records, hot-site profile) so cache-served
#: jobs replay the telemetry of their original execution.
#: v3: telemetry span records are origin-relative and the payload may
#: carry ``timelines`` (execution-timeline payloads for forensics).
FORMAT_VERSION = 3


class CheckpointStore:
    """One JSON result file per job id under ``root``."""

    def __init__(
        self,
        root: Union[str, Path] = ".cache/experiments",
        fsync: bool = False,
    ) -> None:
        self.root = Path(root)
        #: Flush records to stable storage before renaming them into
        #: place.  Off by default (sweep checkpoints tolerate losing the
        #: last result to a power cut); the service verdict cache turns
        #: it on because a record that vanishes after the client saw a
        #: 202 breaks crash-recovery determinism.
        self.fsync = fsync
        #: Corrupt records hit (and quarantined) by this store instance.
        self.corrupt_records = 0

    def path(self, job_id: str) -> Path:
        """Where ``job_id``'s record lives (whether or not it exists)."""
        return self.root / f"{job_id}.json"

    def quarantine_path(self, job_id: str) -> Path:
        """Where ``job_id``'s record lands if it turns out corrupt."""
        return self.root / QUARANTINE_DIR / f"{job_id}.json"

    def quarantined(self) -> int:
        """How many quarantined records the store currently holds."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return 0
        return sum(1 for _ in qdir.glob("*.json"))

    def _quarantine(self, job: Job, reason: str) -> None:
        """Move ``job``'s damaged record aside and leave a reason file."""
        self.corrupt_records += 1
        src = self.path(job.job_id)
        dst = self.quarantine_path(job.job_id)
        try:
            dst.parent.mkdir(parents=True, exist_ok=True)
            os.replace(src, dst)
            dst.with_suffix(".reason").write_text(reason + "\n", encoding="utf-8")
        except OSError:
            # Quarantine is best-effort forensics; a miss is still a miss.
            pass
        from ..obs.context import current_registry

        registry = current_registry()
        if registry is not None:
            registry.inc("checkpoint.corrupt")

    def load(self, job: Job) -> Optional[Dict[str, Any]]:
        """The stored record for ``job``, or ``None`` on any miss.

        Unreadable or non-JSON files are quarantined (see module docs)
        and counted in :attr:`corrupt_records`; schema/version
        mismatches and (paranoia) records whose fn/config don't match
        the job are plain misses.
        """
        path = self.path(job.job_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(job, f"unreadable checkpoint record: {exc}")
            return None
        except ValueError as exc:
            self._quarantine(job, f"invalid JSON in checkpoint record: {exc}")
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != FORMAT_VERSION
            or record.get("library_version") != _LIBRARY_VERSION
            or record.get("status") != "ok"
            or record.get("fn") != job.fn
            or record.get("config") != job.config
        ):
            return None
        return record

    def store(self, job: Job, value: Any, **extra: Any) -> Path:
        """Persist a successful result for ``job`` (atomic write)."""
        record = {
            "format": FORMAT_VERSION,
            "library_version": _LIBRARY_VERSION,
            "job_id": job.job_id,
            "name": job.label,
            "fn": job.fn,
            "config": job.config,
            "status": "ok",
            "value": value,
        }
        record.update(extra)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(job.job_id)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
                if self.fsync:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def discard(self, job: Job) -> None:
        """Drop ``job``'s record if present."""
        try:
            os.unlink(self.path(job.job_id))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __contains__(self, job: Job) -> bool:
        return self.load(job) is not None
