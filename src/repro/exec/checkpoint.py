"""On-disk checkpointing of job results.

One JSON file per job id under the store root (default
``.cache/experiments/``): flat, human-inspectable, and trivially safe
for concurrent writers because files are written to a temporary name
and atomically renamed into place.  Only *successful* results are ever
stored — a failed job must re-run on the next invocation, which is the
resume semantics an interrupted sweep wants.

Records carry the store format version and the library version; a
mismatch in either invalidates the entry (results produced by older
code are recomputed, never trusted).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import __version__ as _LIBRARY_VERSION
from .job import Job

__all__ = ["CheckpointStore", "FORMAT_VERSION"]

#: Bump when the record schema changes; old entries become cache misses.
#: v2: records may carry a ``telemetry`` payload (metrics snapshot,
#: instrument kinds, span records, hot-site profile) so cache-served
#: jobs replay the telemetry of their original execution.
FORMAT_VERSION = 2


class CheckpointStore:
    """One JSON result file per job id under ``root``."""

    def __init__(self, root: Union[str, Path] = ".cache/experiments") -> None:
        self.root = Path(root)

    def path(self, job_id: str) -> Path:
        """Where ``job_id``'s record lives (whether or not it exists)."""
        return self.root / f"{job_id}.json"

    def load(self, job: Job) -> Optional[Dict[str, Any]]:
        """The stored record for ``job``, or ``None`` on any miss.

        Corrupt files, schema/version mismatches and (paranoia) records
        whose fn/config don't match the job all read as misses.
        """
        path = self.path(job.job_id)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(record, dict)
            or record.get("format") != FORMAT_VERSION
            or record.get("library_version") != _LIBRARY_VERSION
            or record.get("status") != "ok"
            or record.get("fn") != job.fn
            or record.get("config") != job.config
        ):
            return None
        return record

    def store(self, job: Job, value: Any, **extra: Any) -> Path:
        """Persist a successful result for ``job`` (atomic write)."""
        record = {
            "format": FORMAT_VERSION,
            "library_version": _LIBRARY_VERSION,
            "job_id": job.job_id,
            "name": job.label,
            "fn": job.fn,
            "config": job.config,
            "status": "ok",
            "value": value,
        }
        record.update(extra)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(job.job_id)
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def discard(self, job: Job) -> None:
        """Drop ``job``'s record if present."""
        try:
            os.unlink(self.path(job.job_id))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __contains__(self, job: Job) -> bool:
        return self.load(job) is not None
