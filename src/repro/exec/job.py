"""The job abstraction: a pure function plus a JSON config.

A :class:`Job` names its function by dotted path (``pkg.module:attr``)
rather than holding the callable, so a job is (a) picklable into any
worker process regardless of start method and (b) content-addressable:
the job id is a hash of the function path and the canonical JSON of the
config, which is what makes the on-disk checkpoint store safe — the
same computation always maps to the same id, and any change to the
inputs maps to a fresh one.

Job functions must be top-level callables taking keyword arguments
matching the config keys and returning a JSON-serializable value.
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["Job", "resolve", "run_job", "run_job_traced"]


def resolve(path: str) -> Callable[..., Any]:
    """Import and return the callable named ``module.sub:attr``."""
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"job function {path!r} must be a 'package.module:callable' path"
        )
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, attr)
    except AttributeError:
        raise AttributeError(f"{module_name!r} has no attribute {attr!r}")
    if not callable(fn):
        raise TypeError(f"{path!r} is not callable")
    return fn


@dataclass(frozen=True)
class Job:
    """One schedulable unit of work.

    ``fn`` is a dotted ``module:callable`` path; ``config`` its keyword
    arguments (JSON-serializable).  ``name`` and ``group`` are purely
    presentational (display label / result routing) and do not affect
    the job id.  ``timeout`` overrides the runner-wide per-job timeout.

    Setting ``inject_failure`` in the config makes the job raise instead
    of running — the supported way to exercise the failure paths end to
    end (the flag participates in the job id, so injected runs never
    pollute the checkpoint cache of real ones).
    """

    fn: str
    config: Dict[str, Any] = field(default_factory=dict)
    name: str = ""
    group: str = ""
    timeout: Optional[float] = None

    @property
    def job_id(self) -> str:
        """Content hash of (fn, config): stable across processes/runs."""
        canonical = json.dumps(
            {"fn": self.fn, "config": self.config},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @property
    def label(self) -> str:
        """Display name (falls back to ``fn#id``)."""
        return self.name or f"{self.fn}#{self.job_id}"


class InjectedFailure(RuntimeError):
    """Raised by jobs whose config carries ``inject_failure``."""


def run_job(job: Job) -> Any:
    """Execute ``job`` in the current process and return its value.

    A config carrying ``inject_fault`` (a spec dict from
    :mod:`repro.faults`) has that fault delivered at attempt start:
    process-level faults (``worker-crash``, ``worker-hang``) fire right
    here; ``monitor-raise`` is forwarded to the job function, which
    arms it inside the run.  Spent faults (scar present) drop the key,
    so the retry runs clean.  Like ``inject_failure``, the key
    participates in the job id, so injected runs never pollute the
    checkpoint cache of real ones.
    """
    config = dict(job.config)
    if config.pop("inject_failure", False):
        raise InjectedFailure(f"injected failure in {job.label}")
    if "inject_fault" in config:
        from ..faults import deliver

        live = deliver(config.pop("inject_fault"), job.label)
        if live is not None:
            config["inject_fault"] = live
    return resolve(job.fn)(**config)


def run_job_traced(
    job: Job,
    sites: bool = False,
    sample_every: int = 1,
    timelines: bool = False,
) -> Tuple[Any, Dict[str, Any]]:
    """Execute ``job`` inside a fresh telemetry scope.

    Returns ``(value, telemetry)`` where ``telemetry`` is a JSON-ready
    dict carrying everything the job's execution published into the
    ambient scope (see :mod:`repro.obs.context`):

    * ``metrics`` / ``kinds`` — the worker registry's snapshot plus
      instrument kinds, mergeable into a parent registry via
      ``MetricsRegistry.merge_snapshot``;
    * ``spans`` — finished span records, relative to the worker
      tracer's origin (at least the wrapping ``job.run`` span);
    * ``sites`` — the hot-site profile payload when ``sites=True``,
      else ``None``;
    * ``timelines`` — when ``timelines=True``, one
      :meth:`~repro.obs.timeline.TimelineRecorder.to_payload` dict per
      CLEAN run the job executed (execution order), else ``None``.

    Telemetry rides in the worker's result message *and* in the
    checkpoint record, so a cache-served job replays the exact
    telemetry its original execution produced — a resumed report
    aggregates the same totals as the run it resumed.  The timeline
    payloads are logical-clock data, so they survive the checkpoint
    JSON round trip byte-identically.
    """
    from ..obs import MetricsRegistry, SiteProfiler, Tracer, telemetry_scope
    from ..obs.timeline import TimelineSink

    registry = MetricsRegistry()
    tracer = Tracer()
    profiler = SiteProfiler(sample_every=sample_every) if sites else None
    sink = TimelineSink() if timelines else None
    with telemetry_scope(
        registry=registry, tracer=tracer, sites=profiler, timeline=sink
    ):
        with tracer.span("job.run", job=job.label, id=job.job_id):
            value = run_job(job)
    telemetry: Dict[str, Any] = {
        "metrics": registry.snapshot(),
        "kinds": registry.kinds(),
        "spans": [span.to_record(tracer.origin) for span in tracer.finished],
        "sites": profiler.to_payload() if profiler is not None else None,
        "timelines": sink.payloads if sink is not None else None,
    }
    return value, telemetry
