"""The fault-tolerant parallel job runner.

``JobRunner.run(jobs)`` returns one :class:`JobResult` per job **in
submission order**, no matter in which order workers finish — report
tables must not depend on scheduling noise.  Per job it provides:

* checkpointing — a job whose id is already in the
  :class:`~repro.exec.checkpoint.CheckpointStore` is served from disk
  (``cached=True``) without executing;
* isolation — with ``workers >= 2`` (or a timeout configured) each
  attempt runs in its own ``multiprocessing`` process, so a crashing or
  hanging job cannot take the sweep down;
* per-job timeouts — a worker past its deadline is terminated and the
  attempt counts as a (retryable) failure;
* bounded retry — up to ``retries`` re-attempts with exponential
  backoff (``backoff * 2**(attempt-1)`` seconds, capped at
  ``max_backoff``); optional *deterministic* jitter spreads retry
  storms without breaking reproducibility — the jitter factor is seeded
  from the job id and attempt number, so serial and parallel runs (and
  re-runs) compute identical delays;
* stuck-worker detection — with ``watchdog`` set, worker processes
  heartbeat over their result pipe; a worker silent for longer than the
  watchdog window is terminated and the attempt counts as a (retryable)
  failure, so a wedged child cannot stall the sweep forever;
* graceful degradation — a job that exhausts its retries yields a
  structured ``failed`` result (the sweep continues), and if worker
  processes cannot be started at all (restricted sandboxes) the runner
  falls back to in-process execution instead of dying;
* telemetry — one span per job on the :class:`~repro.obs.Tracer` and
  ``runner.*`` counters in the :class:`~repro.obs.MetricsRegistry`;
* cross-process telemetry — with ``job_telemetry`` on (the default)
  every attempt executes inside a fresh telemetry scope
  (:func:`~repro.exec.job.run_job_traced`) and ships its metrics
  snapshot, span records and optional hot-site profile back alongside
  the value; after the run the runner merges the per-job payloads **in
  submission order** into its own registry/tracer/:attr:`sites`, so a
  ``--jobs 4`` sweep aggregates exactly the totals of the serial one.
  Telemetry also rides in the checkpoint record, so cache-served jobs
  replay the telemetry of their original execution;
* live status — when :attr:`JobRunner.status` is set to a
  :class:`~repro.obs.StatusFile`, progress (totals, currently running
  jobs, ETA) is atomically republished as the sweep advances, and
  :meth:`JobRunner.status_snapshot` serves the same dict to the
  ``/status`` HTTP endpoint.

With ``workers <= 1`` and no timeout, jobs execute in-process (fast,
no pickling constraints beyond the job model itself).
"""

from __future__ import annotations

import multiprocessing
import random
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .checkpoint import CheckpointStore
from .job import Job, run_job, run_job_traced

__all__ = ["JobResult", "JobRunner", "PersistentPool", "PoolTicket"]


@dataclass
class JobResult:
    """Outcome of one job: value or structured failure, never an exception.

    ``telemetry`` is the job's cross-process telemetry payload (metrics
    snapshot + instrument kinds + span records + optional hot-site
    profile) when the runner collects it — see
    :func:`~repro.exec.job.run_job_traced` — else ``None``.
    """

    job: Job
    status: str  # "ok" | "failed"
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    duration_s: float = 0.0
    cpu_s: float = 0.0
    cached: bool = False
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _worker_wedged() -> bool:
    """True when fault injection has wedged this worker (see repro.faults).

    Looked up dynamically so the runner keeps zero dependency on the
    fault-injection module in normal operation.
    """
    faults = sys.modules.get("repro.faults")
    return bool(faults is not None and faults.is_wedged())


def _worker_main(
    fn: str,
    config: Dict[str, Any],
    conn,
    telemetry: bool = True,
    sites: bool = False,
    sample_every: int = 1,
    timelines: bool = False,
    heartbeat: float = 0.0,
) -> None:
    """Child-process entry: run the job, ship (status, ...) back.

    Telemetry options arrive as extra process args — never through the
    job config, which is content-hashed into the job id.  With
    ``heartbeat`` > 0, a daemon thread sends ``("hb",)`` over the pipe
    every ``heartbeat`` seconds so the parent's watchdog can tell a
    slow worker from a wedged one.
    """
    send_lock = threading.Lock()
    stop_beat = threading.Event()
    if heartbeat > 0:

        def _beat() -> None:
            while not stop_beat.wait(heartbeat):
                if _worker_wedged():
                    # An injected hang swallows heartbeats too: the whole
                    # point is to look dead so the watchdog must act.
                    continue
                try:
                    with send_lock:
                        conn.send(("hb",))
                except OSError:
                    return

        threading.Thread(target=_beat, daemon=True).start()
    cpu0 = time.process_time()
    try:
        job = Job(fn=fn, config=config)
        if telemetry:
            value, telem = run_job_traced(
                job, sites=sites, sample_every=sample_every, timelines=timelines
            )
        else:
            value, telem = run_job(job), None
    except BaseException as exc:  # noqa: BLE001 - everything is a job failure
        stop_beat.set()
        try:
            with send_lock:
                conn.send(
                    (
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        traceback.format_exc(),
                        time.process_time() - cpu0,
                    )
                )
        finally:
            conn.close()
        return
    stop_beat.set()
    try:
        with send_lock:
            conn.send(("ok", value, time.process_time() - cpu0, telem))
    finally:
        conn.close()


class _Active:
    """Book-keeping for one in-flight worker process."""

    __slots__ = (
        "index", "attempt", "process", "conn", "start", "deadline", "last_beat",
    )

    def __init__(self, index, attempt, process, conn, start, deadline):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.start = start
        self.deadline = deadline
        self.last_beat = start


@dataclass
class JobRunner:
    """Runs :class:`Job` batches with caching, retries and timeouts."""

    workers: int = 1
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.25
    #: ceiling on any single backoff delay, jitter included
    max_backoff: float = 30.0
    #: relative jitter width (0 = none); deterministic per (job id, attempt)
    backoff_jitter: float = 0.0
    #: seconds a worker may stay silent (no heartbeat, no result) before
    #: the watchdog declares it stuck; ``None`` disables the watchdog
    watchdog: Optional[float] = None
    #: seconds between worker heartbeats when the watchdog is armed
    heartbeat_every: float = 0.0
    store: Optional[CheckpointStore] = None
    registry: Any = None  # MetricsRegistry-compatible (duck-typed)
    tracer: Any = None  # Tracer-compatible (duck-typed)
    mp_context: Optional[str] = None  # "fork"/"spawn"/None = platform pick
    #: collect per-job telemetry payloads and merge them post-run
    job_telemetry: bool = True
    #: attribute detector work to addresses/SFRs (fills :attr:`sites`)
    profile_sites: bool = False
    #: hot-site sampling period (1 = exact)
    sample_every: int = 1
    #: record per-run execution timelines in every job (fills
    #: :attr:`timelines`) — see :class:`~repro.obs.timeline.TimelineRecorder`
    record_timelines: bool = False
    #: StatusFile-compatible sink for live progress (duck-typed)
    status: Any = None
    #: minimum seconds between status-file rewrites
    status_interval: float = 0.5
    #: per-run tallies, reset by each :meth:`run` call
    stats: Dict[str, Any] = field(default_factory=dict)
    #: merged SiteProfiler after a run with ``profile_sites`` (else None)
    sites: Any = field(default=None, repr=False)
    #: after a run with ``record_timelines``: submission-ordered
    #: ``{"job": label, "timelines": [payload, ...]}`` entries
    timelines: List[Dict[str, Any]] = field(default_factory=list, repr=False)

    # -- public API ---------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute ``jobs``; results come back in submission order."""
        jobs = list(jobs)
        self.stats = {
            "submitted": len(jobs),
            "executed": 0,
            "cache_hits": 0,
            "retries": 0,
            "timeouts": 0,
            "stuck": 0,
            "failures": 0,
            "corrupt_checkpoints": 0,
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
            "degraded": False,
        }
        self._run_start = time.perf_counter()
        self._running: Dict[int, str] = {}
        self._done = 0
        self._ok = 0
        self._last_status = 0.0
        self._total = len(jobs)
        self._publish_status(state="starting", force=True)
        if self.registry is not None:
            self.registry.inc("runner.submitted", len(jobs))
            self.registry.set_gauge("runner.workers", self.workers)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        to_run: List[int] = []
        corrupt_before = (
            self.store.corrupt_records if self.store is not None else 0
        )
        for i, job in enumerate(jobs):
            record = self.store.load(job) if self.store is not None else None
            if record is not None:
                results[i] = JobResult(
                    job=job,
                    status="ok",
                    value=record["value"],
                    attempts=int(record.get("attempts", 1)),
                    duration_s=float(record.get("duration_s", 0.0)),
                    cpu_s=float(record.get("cpu_s", 0.0)),
                    cached=True,
                    telemetry=record.get("telemetry"),
                )
                self._tally("cache_hits")
                self._done += 1
                self._ok += 1
                if self.tracer is not None:
                    self.tracer.event(
                        "runner.job", job=job.label, id=job.job_id, cached=True
                    )
            else:
                to_run.append(i)
        if self.store is not None:
            hit = self.store.corrupt_records - corrupt_before
            if hit:
                # The store already moved the damaged records to its
                # quarantine directory and bumped ``checkpoint.corrupt``;
                # here we just surface the count in the run's stats.
                self.stats["corrupt_checkpoints"] = hit
        self._publish_status(state="running", force=True)
        if to_run:
            if self.workers <= 1 and self.timeout is None and not any(
                jobs[i].timeout for i in to_run
            ):
                self._run_inline(jobs, to_run, results)
            else:
                self._run_pool(jobs, to_run, results)
        assert all(r is not None for r in results)
        self._merge_telemetry(results)
        self._running = {}
        self._publish_status(state="done", force=True)
        return results  # type: ignore[return-value]

    def status_snapshot(self, state: Optional[str] = None) -> Dict[str, Any]:
        """The live progress dict (also what :attr:`status` publishes)."""
        if state is None:
            state = getattr(self, "_state", "idle")
        s = self.stats or {}
        total = getattr(self, "_total", 0)
        done = getattr(self, "_done", 0)
        elapsed = time.perf_counter() - getattr(
            self, "_run_start", time.perf_counter()
        )
        executed = s.get("executed", 0)
        remaining = max(0, total - done)
        eta_s: Optional[float] = None
        if executed > 0 and remaining and state != "done":
            # Cache hits are ~free; pace on executed jobs only.
            eta_s = s.get("wall_seconds", 0.0) / executed * remaining / max(
                1, min(self.workers, remaining)
            )
        return {
            "state": state,
            "total": total,
            "done": done,
            "ok": getattr(self, "_ok", 0),
            "failed": s.get("failures", 0),
            "cached": s.get("cache_hits", 0),
            "executed": executed,
            "retries": s.get("retries", 0),
            "timeouts": s.get("timeouts", 0),
            "stuck": s.get("stuck", 0),
            "corrupt_checkpoints": s.get("corrupt_checkpoints", 0),
            "workers": self.workers,
            "degraded": bool(s.get("degraded")),
            "running": sorted(getattr(self, "_running", {}).values()),
            "elapsed_s": round(elapsed, 3),
            "eta_s": round(eta_s, 3) if eta_s is not None else None,
        }

    def _publish_status(
        self, state: Optional[str] = None, force: bool = False
    ) -> None:
        if state is not None:
            self._state = state
        if self.status is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_status < self.status_interval:
            return
        self._last_status = now
        self.status.write(self.status_snapshot(state=state))

    def _merge_telemetry(self, results: Sequence[Optional[JobResult]]) -> None:
        """Fold per-job payloads into registry/tracer/sites, submission order."""
        self.sites = None
        self.timelines = []
        if self.profile_sites:
            from ..obs.sites import SiteProfiler

            self.sites = SiteProfiler(sample_every=self.sample_every)
        # Worker span records are relative to the *worker* tracer's
        # origin (≈ attempt start); shifting each job's records by the
        # parent-side start of its ``runner.job`` span puts every
        # process on one ordered axis.
        offsets: Dict[str, float] = {}
        if self.tracer is not None:
            origin = getattr(self.tracer, "origin", 0.0)
            for span in getattr(self.tracer, "finished", []) or []:
                if span.name == "runner.job" and "id" in span.attrs:
                    offsets[span.attrs["id"]] = span.start - origin
        for result in results:
            if result is None or not result.telemetry:
                continue
            telem = result.telemetry
            if self.registry is not None and telem.get("metrics"):
                self.registry.merge_snapshot(
                    telem["metrics"], kinds=telem.get("kinds")
                )
            if self.tracer is not None and telem.get("spans"):
                self.tracer.ingest(
                    telem["spans"],
                    at=offsets.get(result.job.job_id),
                    job=result.job.label,
                )
            if self.sites is not None and telem.get("sites"):
                self.sites.merge_payload(telem["sites"])
            if telem.get("timelines"):
                self.timelines.append(
                    {"job": result.job.label, "timelines": telem["timelines"]}
                )

    # -- shared result plumbing --------------------------------------------

    def _tally(self, key: str, amount: float = 1) -> None:
        self.stats[key] += amount
        if self.registry is not None:
            self.registry.inc(f"runner.{key}", amount)

    def _job_timeout(self, job: Job) -> Optional[float]:
        return job.timeout if job.timeout is not None else self.timeout

    def _finish(
        self,
        results: List[Optional[JobResult]],
        index: int,
        result: JobResult,
        span=None,
    ) -> None:
        results[index] = result
        self._tally("executed")
        self._tally("wall_seconds", result.duration_s)
        self._tally("cpu_seconds", result.cpu_s)
        self._done += 1
        if result.ok:
            self._ok += 1
        else:
            self._tally("failures")
        self._running.pop(index, None)
        if self.store is not None and result.ok:
            extra: Dict[str, Any] = {}
            if result.telemetry is not None:
                extra["telemetry"] = result.telemetry
            self.store.store(
                result.job,
                result.value,
                attempts=result.attempts,
                duration_s=result.duration_s,
                cpu_s=result.cpu_s,
                **extra,
            )
        self._publish_status()
        if span is not None:
            span.set("status", result.status)
            span.set("attempts", result.attempts)
            if result.error:
                span.set("error", result.error)
            self.tracer.end_span(span)

    def _backoff_delay(self, attempt: int, job_id: str = "") -> float:
        """Delay before retry ``attempt + 1``: capped exponential, with
        optional jitter that is a pure function of (job id, attempt) —
        the same job retries after the same delay whether the sweep runs
        serially, in parallel, or is re-run tomorrow."""
        delay = min(self.max_backoff, self.backoff * (2 ** (attempt - 1)))
        if self.backoff_jitter:
            rng = random.Random(f"{job_id}:{attempt}")
            delay *= 1.0 + self.backoff_jitter * (rng.random() - 0.5)
        return max(0.0, min(self.max_backoff, delay))

    # -- in-process execution ----------------------------------------------

    def _run_inline(
        self,
        jobs: Sequence[Job],
        to_run: Sequence[int],
        results: List[Optional[JobResult]],
    ) -> None:
        for index in to_run:
            job = jobs[index]
            span = (
                self.tracer.start_span(
                    "runner.job", job=job.label, id=job.job_id, cached=False
                )
                if self.tracer is not None
                else None
            )
            self._running[index] = job.label
            self._publish_status()
            start = time.perf_counter()
            cpu0 = time.process_time()
            attempt = 0
            while True:
                attempt += 1
                try:
                    if self.job_telemetry:
                        value, telem = run_job_traced(
                            job,
                            sites=self.profile_sites,
                            sample_every=self.sample_every,
                            timelines=self.record_timelines,
                        )
                    else:
                        value, telem = run_job(job), None
                except BaseException as exc:  # noqa: BLE001
                    if attempt <= self.retries:
                        self._tally("retries")
                        time.sleep(self._backoff_delay(attempt, job.job_id))
                        continue
                    result = JobResult(
                        job=job,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        duration_s=time.perf_counter() - start,
                        cpu_s=time.process_time() - cpu0,
                    )
                    break
                result = JobResult(
                    job=job,
                    status="ok",
                    value=value,
                    attempts=attempt,
                    duration_s=time.perf_counter() - start,
                    cpu_s=time.process_time() - cpu0,
                    telemetry=telem,
                )
                break
            self._finish(results, index, result, span)

    # -- multiprocessing execution -----------------------------------------

    def _context(self):
        if self.mp_context is not None:
            return multiprocessing.get_context(self.mp_context)
        methods = multiprocessing.get_all_start_methods()
        # fork skips re-import of the (already warm) library in every
        # worker; fall back to the platform default elsewhere.
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _run_pool(
        self,
        jobs: Sequence[Job],
        to_run: Sequence[int],
        results: List[Optional[JobResult]],
    ) -> None:
        ctx = self._context()
        workers = max(1, self.workers)
        heartbeat = self.heartbeat_every
        if self.watchdog is not None and heartbeat <= 0:
            # Default: beat a few times per watchdog window.
            heartbeat = max(0.05, self.watchdog / 4.0)
        pending: List[int] = list(to_run)
        ready_at: Dict[int, float] = {i: 0.0 for i in pending}
        attempts: Dict[int, int] = {i: 0 for i in pending}
        started: Dict[int, float] = {}
        spans: Dict[int, Any] = {}
        active: List[_Active] = []
        degraded: List[int] = []

        def resolve_attempt(
            entry: _Active, error: Optional[str], value, cpu_s, telemetry=None
        ):
            """One attempt ended (ok, error, crash or timeout)."""
            index = entry.index
            duration = time.perf_counter() - started[index]
            if error is None:
                self._finish(
                    results,
                    index,
                    JobResult(
                        job=jobs[index],
                        status="ok",
                        value=value,
                        attempts=entry.attempt,
                        duration_s=duration,
                        cpu_s=cpu_s,
                        telemetry=telemetry,
                    ),
                    spans.pop(index, None),
                )
            elif entry.attempt <= self.retries:
                self._tally("retries")
                self._running.pop(index, None)
                ready_at[index] = time.perf_counter() + self._backoff_delay(
                    entry.attempt, jobs[index].job_id
                )
                pending.append(index)
            else:
                self._finish(
                    results,
                    index,
                    JobResult(
                        job=jobs[index],
                        status="failed",
                        error=error,
                        attempts=entry.attempt,
                        duration_s=duration,
                        cpu_s=cpu_s,
                    ),
                    spans.pop(index, None),
                )

        while pending or active:
            now = time.perf_counter()
            # -- launch ready jobs into free worker slots
            launchable = [i for i in pending if ready_at[i] <= now]
            while launchable and len(active) < workers:
                index = launchable.pop(0)
                pending.remove(index)
                job = jobs[index]
                attempts[index] += 1
                if attempts[index] == 1:
                    started[index] = time.perf_counter()
                    if self.tracer is not None:
                        spans[index] = self.tracer.start_span(
                            "runner.job",
                            job=job.label,
                            id=job.job_id,
                            cached=False,
                        )
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        job.fn,
                        job.config,
                        child_conn,
                        self.job_telemetry,
                        self.profile_sites,
                        self.sample_every,
                        self.record_timelines,
                        heartbeat if self.watchdog is not None else 0.0,
                    ),
                    daemon=True,
                )
                try:
                    process.start()
                except BaseException:  # noqa: BLE001 - sandboxed environments
                    parent_conn.close()
                    child_conn.close()
                    self.stats["degraded"] = True
                    if self.registry is not None:
                        self.registry.inc("runner.degraded")
                    attempts[index] -= 1
                    degraded.append(index)
                    continue
                child_conn.close()
                self._running[index] = job.label
                self._publish_status()
                timeout = self._job_timeout(job)
                attempt_start = time.perf_counter()
                active.append(
                    _Active(
                        index,
                        attempts[index],
                        process,
                        parent_conn,
                        attempt_start,
                        attempt_start + timeout if timeout else None,
                    )
                )
            if self.stats["degraded"] and not active:
                break  # drain remaining work in-process below
            if not active:
                # everything pending is in backoff: sleep to the earliest
                time.sleep(
                    max(0.0, min(ready_at[i] for i in pending) - now)
                )
                continue
            # -- wait for a result/heartbeat, the next deadline, the next
            # backoff, or the next watchdog expiry
            wait_for = [entry.conn for entry in active]
            deadlines = [e.deadline for e in active if e.deadline is not None]
            wake: List[float] = list(deadlines)
            if self.watchdog is not None:
                wake.extend(e.last_beat + self.watchdog for e in active)
            if pending and len(active) < workers:
                wake.append(min(ready_at[i] for i in pending))
            timeout = max(0.0, min(wake) - now) if wake else None
            ready = _wait_connections(wait_for, timeout)
            now = time.perf_counter()
            still_active: List[_Active] = []
            for entry in active:
                if entry.conn in ready:
                    try:
                        message = entry.conn.recv()
                    except (EOFError, OSError):
                        entry.process.join()
                        code = entry.process.exitcode
                        resolve_attempt(
                            entry,
                            f"WorkerCrash: worker exited with code {code} "
                            "before reporting a result",
                            None,
                            0.0,
                        )
                    else:
                        if message[0] == "hb":
                            entry.last_beat = now
                            still_active.append(entry)
                            continue
                        entry.process.join()
                        if message[0] == "ok":
                            _, value, cpu_s, telem = message
                            resolve_attempt(entry, None, value, cpu_s, telem)
                        else:
                            _, error, _tb, cpu_s = message
                            resolve_attempt(entry, error, None, cpu_s)
                    entry.conn.close()
                elif (
                    self.watchdog is not None
                    and now - entry.last_beat >= self.watchdog
                ):
                    entry.process.terminate()
                    entry.process.join()
                    entry.conn.close()
                    self._tally("stuck")
                    resolve_attempt(
                        entry,
                        f"Stuck: worker silent for {now - entry.last_beat:.1f}s "
                        f"(watchdog {self.watchdog:.1f}s, "
                        f"attempt {entry.attempt})",
                        None,
                        0.0,
                    )
                elif entry.deadline is not None and now >= entry.deadline:
                    entry.process.terminate()
                    entry.process.join()
                    entry.conn.close()
                    self._tally("timeouts")
                    limit = self._job_timeout(jobs[entry.index])
                    resolve_attempt(
                        entry,
                        f"Timeout: job exceeded {limit:.1f}s "
                        f"(attempt {entry.attempt})",
                        None,
                        0.0,
                    )
                else:
                    still_active.append(entry)
            active = still_active
        if self.stats["degraded"]:
            leftovers = sorted(
                set(degraded)
                | {i for i in to_run if results[i] is None}
            )
            for index in leftovers:
                span = spans.pop(index, None)
                if span is not None:
                    span.set("degraded", True)
                    self.tracer.end_span(span)
            self._run_inline(jobs, leftovers, results)

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        """One-line human summary of the last :meth:`run`."""
        s = self.stats or {}
        return (
            f"jobs={s.get('submitted', 0)} "
            f"executed={s.get('executed', 0)} "
            f"cached={s.get('cache_hits', 0)} "
            f"retries={s.get('retries', 0)} "
            f"timeouts={s.get('timeouts', 0)} "
            f"failed={s.get('failures', 0)} "
            f"job_seconds={s.get('wall_seconds', 0.0):.1f}"
            + (
                f" stuck={s['stuck']}" if s.get("stuck") else ""
            )
            + (
                f" corrupt_checkpoints={s['corrupt_checkpoints']}"
                if s.get("corrupt_checkpoints")
                else ""
            )
            + (" degraded=yes" if s.get("degraded") else "")
        )


# -- the persistent pool -------------------------------------------------------


def _pool_worker_main(
    conn,
    telemetry: bool = True,
    sites: bool = False,
    sample_every: int = 1,
) -> None:
    """Child-process entry for the persistent pool: serve jobs forever.

    Receives ``(seq, fn, config)`` tuples, replies ``("ok", seq, value,
    cpu_s, telem)`` or ``("error", seq, message, cpu_s)``.  A ``None``
    message (or EOF on the pipe) is the shutdown signal.  One worker
    runs many jobs over its lifetime — that is the point of the pool.
    """
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            try:
                conn.close()
            except OSError:
                pass
            return
        seq, fn, config = message
        cpu0 = time.process_time()
        try:
            job = Job(fn=fn, config=config)
            if telemetry:
                value, telem = run_job_traced(
                    job, sites=sites, sample_every=sample_every
                )
            else:
                value, telem = run_job(job), None
        except BaseException as exc:  # noqa: BLE001 - job failures are data
            try:
                conn.send(
                    (
                        "error",
                        seq,
                        f"{type(exc).__name__}: {exc}",
                        time.process_time() - cpu0,
                    )
                )
            except OSError:
                return
            continue
        try:
            conn.send(("ok", seq, value, time.process_time() - cpu0, telem))
        except OSError:
            return


class PoolTicket:
    """Handle for one job submitted to a :class:`PersistentPool`."""

    __slots__ = ("seq", "job", "result", "_event")

    def __init__(self, seq: int, job: Job) -> None:
        self.seq = seq
        self.job = job
        self.result: Optional[JobResult] = None
        self._event = threading.Event()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[JobResult]:
        """Block for the result; ``None`` if not done within ``timeout``."""
        if self._event.wait(timeout):
            return self.result
        return None

    def _deliver(self, result: JobResult) -> None:
        self.result = result
        self._event.set()


class _PoolWorker:
    """One persistent child process and its duplex pipe."""

    __slots__ = ("process", "conn", "inflight")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.inflight: Optional[int] = None  # seq of the job it is running


class _PoolEntry:
    """Parent-side book-keeping for one submitted job."""

    __slots__ = ("ticket", "callback", "attempt", "start", "deadline")

    def __init__(self, ticket: PoolTicket, callback) -> None:
        self.ticket = ticket
        self.callback = callback
        self.attempt = 0
        self.start = time.perf_counter()
        self.deadline: Optional[float] = None


@dataclass
class PersistentPool:
    """A worker pool that outlives a single batch — jobs stream in.

    Where :class:`JobRunner` forks one process per attempt and winds
    everything down when its batch completes, the pool keeps
    ``workers`` long-lived child processes and feeds them jobs as they
    arrive: the execution backend for the ``repro serve`` daemon, where
    submissions trickle in over hours and a fork per analysis would
    dominate latency.  :meth:`submit` returns a :class:`PoolTicket`
    immediately; jobs complete out of order; an optional ``callback``
    fires (on the dispatcher thread) with the finished
    :class:`JobResult`.

    The runner's resilience carries over:

    * a worker that **crashes** mid-job is respawned and the job
      retried, up to ``retries`` times, then failed structurally
      (``JobResult.status == "failed"`` — never an exception);
    * consecutive respawns back off exponentially
      (``respawn_backoff`` doubling per cycle, capped at 1s), and a
      **respawn storm** — ``respawn_limit`` cycles without any worker
      delivering a result — stops the forking altogether: the pool
      degrades to inline threads and increments ``pool.respawn_storm``
      rather than thrash forever against a poisoned environment;
    * a job past ``timeout`` seconds (``job.timeout`` overrides) has
      its worker terminated and respawned, same retry policy;
    * if child processes cannot be spawned at all (restricted
      sandboxes) the pool **degrades** to in-process threads —
      ``degraded`` flips in :meth:`status_snapshot` and timeouts
      become best-effort;
    * per-job telemetry payloads (metrics + spans) merge into
      ``registry``/``tracer`` as each job completes, and ``pool.*``
      counters track submissions, completions, failures, crashes,
      timeouts, retries and respawns.
    """

    workers: int = 2
    timeout: Optional[float] = None
    retries: int = 1
    job_telemetry: bool = True
    registry: Any = None  # MetricsRegistry-compatible (duck-typed)
    tracer: Any = None  # Tracer-compatible (duck-typed)
    mp_context: Optional[str] = None
    #: force in-process (threaded) execution — tests and sandboxes
    inline: bool = False
    #: consecutive crash→respawn cycles (with no worker delivering a
    #: single result in between) tolerated before the pool stops
    #: burning forks and degrades to inline threads
    respawn_limit: int = 8
    #: base of the exponential backoff between consecutive respawns
    #: (doubles per cycle, capped at one second)
    respawn_backoff: float = 0.05

    def __post_init__(self) -> None:
        self.workers = max(1, self.workers)
        self._lock = threading.Lock()
        self._started = False
        self._stopping = False
        self._degraded = False
        self._seq = 0
        self._queue: List[int] = []
        self._entries: Dict[int, _PoolEntry] = {}
        self._workers: List[_PoolWorker] = []
        self._inline_busy = 0
        self._thread: Optional[threading.Thread] = None
        self._wake_r = None
        self._wake_w = None
        self._wake_lock = threading.Lock()
        #: consecutive respawns since a worker last delivered a result
        self._respawn_streak = 0
        #: no worker slot is refilled before this perf_counter instant
        self._respawn_at: Optional[float] = None
        self._counts = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "retries": 0,
            "crashes": 0,
            "timeouts": 0,
            "respawns": 0,
            "respawn_storm": 0,
        }

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "PersistentPool":
        with self._lock:
            if self._started:
                return self
            self._started = True
            self._stopping = False
            ctx = (
                multiprocessing.get_context(self.mp_context)
                if self.mp_context is not None
                else multiprocessing.get_context(
                    "fork"
                    if "fork" in multiprocessing.get_all_start_methods()
                    else None
                )
            )
            self._ctx = ctx
            self._wake_r, self._wake_w = ctx.Pipe(duplex=False)
            if not self.inline:
                for _ in range(self.workers):
                    worker = self._spawn_worker()
                    if worker is None:
                        break
                    self._workers.append(worker)
                if not self._workers:
                    self._degraded = True
            if self.registry is not None:
                self.registry.set_gauge(
                    "pool.workers", len(self._workers) or self.workers
                )
            self._thread = threading.Thread(
                target=self._loop, name="repro-pool-dispatch", daemon=True
            )
            self._thread.start()
        return self

    def _spawn_worker(self) -> Optional[_PoolWorker]:
        """Fork one persistent worker; ``None`` on failure (sandbox)."""
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn, self.job_telemetry),
            daemon=True,
        )
        try:
            process.start()
        except BaseException:  # noqa: BLE001 - restricted sandboxes
            parent_conn.close()
            child_conn.close()
            self._degraded = True
            if self.registry is not None:
                self.registry.inc("pool.degraded")
            return None
        child_conn.close()
        return _PoolWorker(process, parent_conn)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain nothing: fail queued jobs, let in-flight ones finish
        (up to ``timeout`` seconds), then tear the workers down.
        Idempotent."""
        with self._lock:
            if not self._started or self._stopping:
                thread = None
                if self._started and self._thread is not None:
                    thread = self._thread
            else:
                self._stopping = True
                thread = self._thread
        if thread is None:
            return
        self._notify()
        thread.join(timeout=timeout)
        leftovers: List[int] = []
        with self._lock:
            workers, self._workers = self._workers, []
            leftovers = [s for s in self._entries]
            self._queue = []
        for worker in workers:
            try:
                worker.conn.send(None)
            except OSError:
                pass
        for worker in workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        for seq in leftovers:
            self._resolve(seq, error="PoolStopped: pool shut down", cpu_s=0.0,
                          retryable=False)

    def __enter__(self) -> "PersistentPool":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submission ---------------------------------------------------------

    def submit(self, job: Job, callback=None) -> PoolTicket:
        """Enqueue ``job``; returns immediately with a ticket.

        ``callback(result)``, when given, runs on the dispatcher thread
        right after the ticket resolves — keep it quick and don't block
        in it.
        """
        with self._lock:
            if not self._started:
                raise RuntimeError("PersistentPool.submit before start()")
            if self._stopping:
                raise RuntimeError("PersistentPool.submit after stop()")
            self._seq += 1
            seq = self._seq
            ticket = PoolTicket(seq, job)
            self._entries[seq] = _PoolEntry(ticket, callback)
            self._queue.append(seq)
            self._counts["submitted"] += 1
        if self.registry is not None:
            self.registry.inc("pool.submitted")
            self.registry.set_gauge("pool.pending", self.pending())
        self._notify()
        return ticket

    def pending(self) -> int:
        """Jobs waiting for a worker slot (not yet dispatched)."""
        with self._lock:
            return len(self._queue)

    def busy(self) -> int:
        """Jobs currently executing (process workers + inline threads)."""
        with self._lock:
            return (
                sum(1 for w in self._workers if w.inflight is not None)
                + self._inline_busy
            )

    def status_snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = dict(self._counts)
            return {
                "workers": len(self._workers) or (
                    self.workers if (self.inline or self._degraded) else 0
                ),
                "busy": sum(
                    1 for w in self._workers if w.inflight is not None
                ) + self._inline_busy,
                "pending": len(self._queue),
                "inflight": len(self._entries) - len(self._queue),
                "degraded": self._degraded or self.inline,
                **counts,
            }

    # -- dispatcher ---------------------------------------------------------

    def _notify(self) -> None:
        with self._wake_lock:
            if self._wake_w is not None:
                try:
                    self._wake_w.send(None)
                except OSError:
                    pass

    def _loop(self) -> None:
        while True:
            with self._lock:
                self._assign_locked()
                conns = [
                    w.conn for w in self._workers if w.inflight is not None
                ]
                idle_conns = [
                    w.conn for w in self._workers if w.inflight is None
                ]
                wake = self._next_deadline_locked()
                finished = self._stopping and not self._entries
            if finished:
                return
            timeout = None
            if wake is not None:
                timeout = max(0.0, wake - time.perf_counter())
            # Idle workers' conns are watched too: a spontaneous child
            # death shows up as EOF and triggers a respawn.
            ready = _wait_connections(
                conns + idle_conns + [self._wake_r], timeout
            )
            if self._wake_r in ready:
                while self._wake_r.poll():
                    try:
                        self._wake_r.recv()
                    except (EOFError, OSError):
                        break
            for worker in list(self._workers):
                if worker.conn in ready:
                    self._drain_worker(worker)
            self._check_deadlines()

    def _assign_locked(self) -> None:
        """Hand queued jobs to idle workers (or inline threads). Caller
        holds the lock."""
        if self._stopping:
            return
        self._refill_workers_locked()
        for worker in self._workers:
            if not self._queue:
                break
            if worker.inflight is not None:
                continue
            seq = self._queue.pop(0)
            entry = self._entries[seq]
            entry.attempt += 1
            job = entry.ticket.job
            limit = job.timeout if job.timeout is not None else self.timeout
            entry.deadline = (
                time.perf_counter() + limit if limit else None
            )
            try:
                worker.conn.send((seq, job.fn, job.config))
            except (OSError, ValueError):
                # The child died between jobs; requeue and respawn.
                self._queue.insert(0, seq)
                entry.attempt -= 1
                self._replace_worker_locked(worker)
                continue
            worker.inflight = seq
        if (self.inline or self._degraded) and not self._workers:
            while self._queue and self._inline_busy < self.workers:
                seq = self._queue.pop(0)
                entry = self._entries[seq]
                entry.attempt += 1
                entry.deadline = None  # threads cannot be killed
                self._inline_busy += 1
                threading.Thread(
                    target=self._run_inline,
                    args=(seq,),
                    name=f"repro-pool-inline-{seq}",
                    daemon=True,
                ).start()
        if self.registry is not None:
            self.registry.set_gauge("pool.pending", len(self._queue))
            self.registry.set_gauge(
                "pool.busy",
                sum(1 for w in self._workers if w.inflight is not None)
                + self._inline_busy,
            )

    def _next_deadline_locked(self) -> Optional[float]:
        deadlines = [
            e.deadline
            for e in self._entries.values()
            if e.deadline is not None
        ]
        if (
            self._respawn_at is not None
            and not (self.inline or self._degraded or self._stopping)
            and len(self._workers) < self.workers
        ):
            deadlines.append(self._respawn_at)
        return min(deadlines) if deadlines else None

    def _replace_worker_locked(self, worker: _PoolWorker) -> None:
        """Retire a dead worker; the dispatcher refills the slot after
        the respawn backoff window passes. Caller holds the lock."""
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker in self._workers:
            self._workers.remove(worker)
        if self._stopping:
            return
        self._counts["respawns"] += 1
        if self.registry is not None:
            self.registry.inc("pool.respawns")
        self._respawn_streak += 1
        if self._respawn_streak > self.respawn_limit:
            # Respawn storm: fresh workers keep dying before any of
            # them delivers a single result (poisoned job mix, broken
            # interpreter, hostile sandbox).  Stop burning forks; once
            # the last slot is gone the pool degrades to inline threads
            # so the service keeps answering instead of thrashing.
            if not self._workers and not self._degraded:
                self._degraded = True
                self._counts["respawn_storm"] += 1
                if self.registry is not None:
                    self.registry.inc("pool.respawn_storm")
                    self.registry.set_gauge("pool.workers", self.workers)
            return
        delay = min(
            self.respawn_backoff * (2 ** (self._respawn_streak - 1)), 1.0
        )
        self._respawn_at = time.perf_counter() + delay

    def _refill_workers_locked(self) -> None:
        """Top retired worker slots back up once the respawn backoff
        window has passed. Caller holds the lock."""
        if (
            self.inline
            or self._degraded
            or self._stopping
            or not self._started
        ):
            return
        missing = self.workers - len(self._workers)
        if missing <= 0:
            self._respawn_at = None
            return
        if (
            self._respawn_at is not None
            and time.perf_counter() < self._respawn_at
        ):
            return
        self._respawn_at = None
        for _ in range(missing):
            fresh = self._spawn_worker()
            if fresh is None:
                break
            self._workers.append(fresh)
        if self.registry is not None and self._workers:
            self.registry.set_gauge("pool.workers", len(self._workers))

    def _drain_worker(self, worker: _PoolWorker) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            with self._lock:
                seq = worker.inflight
                worker.inflight = None
                self._replace_worker_locked(worker)
                if seq is not None:
                    self._counts["crashes"] += 1
            if seq is not None:
                if self.registry is not None:
                    self.registry.inc("pool.crashes")
                code = worker.process.exitcode
                self._resolve(
                    seq,
                    error=(
                        f"WorkerCrash: worker exited with code {code} "
                        "before reporting a result"
                    ),
                    cpu_s=0.0,
                )
            return
        kind = message[0]
        with self._lock:
            worker.inflight = None
            # Any delivered message — success or a clean job error —
            # proves workers can survive a job: the storm is over.
            self._respawn_streak = 0
        if kind == "ok":
            _, seq, value, cpu_s, telem = message
            self._resolve(seq, value=value, cpu_s=cpu_s, telemetry=telem)
        else:
            _, seq, error, cpu_s = message
            self._resolve(seq, error=error, cpu_s=cpu_s)

    def _check_deadlines(self) -> None:
        now = time.perf_counter()
        expired: List[Tuple[_PoolWorker, int]] = []
        with self._lock:
            for worker in list(self._workers):
                seq = worker.inflight
                if seq is None:
                    continue
                entry = self._entries.get(seq)
                if entry is None or entry.deadline is None:
                    continue
                if now >= entry.deadline:
                    worker.inflight = None
                    self._replace_worker_locked(worker)
                    self._counts["timeouts"] += 1
                    expired.append((worker, seq))
        for worker, seq in expired:
            if self.registry is not None:
                self.registry.inc("pool.timeouts")
            entry = self._entries.get(seq)
            limit = None
            if entry is not None:
                job = entry.ticket.job
                limit = job.timeout if job.timeout is not None else self.timeout
            self._resolve(
                seq,
                error=(
                    f"Timeout: job exceeded "
                    f"{limit if limit is not None else 0.0:.1f}s"
                ),
                cpu_s=0.0,
            )

    def _run_inline(self, seq: int) -> None:
        """Degraded path: one job on one parent-process thread."""
        with self._lock:
            entry = self._entries.get(seq)
        if entry is None:
            with self._lock:
                self._inline_busy -= 1
            return
        job = entry.ticket.job
        cpu0 = time.process_time()
        try:
            if self.job_telemetry:
                value, telem = run_job_traced(job)
            else:
                value, telem = run_job(job), None
        except BaseException as exc:  # noqa: BLE001
            with self._lock:
                self._inline_busy -= 1
            self._resolve(
                seq,
                error=f"{type(exc).__name__}: {exc}",
                cpu_s=time.process_time() - cpu0,
            )
            self._notify()
            return
        with self._lock:
            self._inline_busy -= 1
        self._resolve(
            seq, value=value, cpu_s=time.process_time() - cpu0, telemetry=telem
        )
        self._notify()

    # -- completion ---------------------------------------------------------

    def _resolve(
        self,
        seq: int,
        value: Any = None,
        error: Optional[str] = None,
        cpu_s: float = 0.0,
        telemetry: Optional[Dict[str, Any]] = None,
        retryable: bool = True,
    ) -> None:
        """One attempt ended; retry or deliver the final JobResult."""
        with self._lock:
            entry = self._entries.get(seq)
            if entry is None:
                return
            if (
                error is not None
                and retryable
                and entry.attempt <= self.retries
                and not self._stopping
            ):
                self._counts["retries"] += 1
                self._queue.append(seq)
                requeued = True
            else:
                del self._entries[seq]
                requeued = False
                result = JobResult(
                    job=entry.ticket.job,
                    status="ok" if error is None else "failed",
                    value=value,
                    error=error,
                    attempts=max(1, entry.attempt),
                    duration_s=time.perf_counter() - entry.start,
                    cpu_s=cpu_s,
                    telemetry=telemetry,
                )
                if error is None:
                    self._counts["completed"] += 1
                else:
                    self._counts["failed"] += 1
        if requeued:
            if self.registry is not None:
                self.registry.inc("pool.retries")
            self._notify()
            return
        if self.registry is not None:
            self.registry.inc(
                "pool.completed" if error is None else "pool.failed"
            )
        if telemetry:
            if self.registry is not None and telemetry.get("metrics"):
                self.registry.merge_snapshot(
                    telemetry["metrics"], kinds=telemetry.get("kinds")
                )
            if self.tracer is not None and telemetry.get("spans"):
                self.tracer.ingest(
                    telemetry["spans"], job=entry.ticket.job.label
                )
        if entry.callback is not None:
            try:
                entry.callback(result)
            except Exception:  # noqa: BLE001 - callbacks must not kill
                # the dispatcher; the ticket still resolves below.
                if self.registry is not None:
                    self.registry.inc("pool.callback_errors")
        entry.ticket._deliver(result)
