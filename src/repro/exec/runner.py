"""The fault-tolerant parallel job runner.

``JobRunner.run(jobs)`` returns one :class:`JobResult` per job **in
submission order**, no matter in which order workers finish — report
tables must not depend on scheduling noise.  Per job it provides:

* checkpointing — a job whose id is already in the
  :class:`~repro.exec.checkpoint.CheckpointStore` is served from disk
  (``cached=True``) without executing;
* isolation — with ``workers >= 2`` (or a timeout configured) each
  attempt runs in its own ``multiprocessing`` process, so a crashing or
  hanging job cannot take the sweep down;
* per-job timeouts — a worker past its deadline is terminated and the
  attempt counts as a (retryable) failure;
* bounded retry — up to ``retries`` re-attempts with exponential
  backoff (``backoff * 2**(attempt-1)`` seconds);
* graceful degradation — a job that exhausts its retries yields a
  structured ``failed`` result (the sweep continues), and if worker
  processes cannot be started at all (restricted sandboxes) the runner
  falls back to in-process execution instead of dying;
* telemetry — one span per job on the :class:`~repro.obs.Tracer` and
  ``runner.*`` counters in the :class:`~repro.obs.MetricsRegistry`.

With ``workers <= 1`` and no timeout, jobs execute in-process (fast,
no pickling constraints beyond the job model itself).
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _wait_connections
from typing import Any, Dict, List, Optional, Sequence

from .checkpoint import CheckpointStore
from .job import Job, run_job

__all__ = ["JobResult", "JobRunner"]


@dataclass
class JobResult:
    """Outcome of one job: value or structured failure, never an exception."""

    job: Job
    status: str  # "ok" | "failed"
    value: Any = None
    error: Optional[str] = None
    attempts: int = 0
    duration_s: float = 0.0
    cpu_s: float = 0.0
    cached: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def _worker_main(fn: str, config: Dict[str, Any], conn) -> None:
    """Child-process entry: run the job, ship (status, ...) back."""
    cpu0 = time.process_time()
    try:
        value = run_job(Job(fn=fn, config=config))
    except BaseException as exc:  # noqa: BLE001 - everything is a job failure
        try:
            conn.send(
                (
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    traceback.format_exc(),
                    time.process_time() - cpu0,
                )
            )
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", value, time.process_time() - cpu0))
    finally:
        conn.close()


class _Active:
    """Book-keeping for one in-flight worker process."""

    __slots__ = ("index", "attempt", "process", "conn", "start", "deadline")

    def __init__(self, index, attempt, process, conn, start, deadline):
        self.index = index
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.start = start
        self.deadline = deadline


@dataclass
class JobRunner:
    """Runs :class:`Job` batches with caching, retries and timeouts."""

    workers: int = 1
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.25
    store: Optional[CheckpointStore] = None
    registry: Any = None  # MetricsRegistry-compatible (duck-typed)
    tracer: Any = None  # Tracer-compatible (duck-typed)
    mp_context: Optional[str] = None  # "fork"/"spawn"/None = platform pick
    #: per-run tallies, reset by each :meth:`run` call
    stats: Dict[str, Any] = field(default_factory=dict)

    # -- public API ---------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[JobResult]:
        """Execute ``jobs``; results come back in submission order."""
        jobs = list(jobs)
        self.stats = {
            "submitted": len(jobs),
            "executed": 0,
            "cache_hits": 0,
            "retries": 0,
            "timeouts": 0,
            "failures": 0,
            "wall_seconds": 0.0,
            "cpu_seconds": 0.0,
            "degraded": False,
        }
        if self.registry is not None:
            self.registry.inc("runner.submitted", len(jobs))
            self.registry.set_gauge("runner.workers", self.workers)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        to_run: List[int] = []
        for i, job in enumerate(jobs):
            record = self.store.load(job) if self.store is not None else None
            if record is not None:
                results[i] = JobResult(
                    job=job,
                    status="ok",
                    value=record["value"],
                    attempts=int(record.get("attempts", 1)),
                    duration_s=float(record.get("duration_s", 0.0)),
                    cpu_s=float(record.get("cpu_s", 0.0)),
                    cached=True,
                )
                self._tally("cache_hits")
                if self.tracer is not None:
                    self.tracer.event(
                        "runner.job", job=job.label, id=job.job_id, cached=True
                    )
            else:
                to_run.append(i)
        if to_run:
            if self.workers <= 1 and self.timeout is None and not any(
                jobs[i].timeout for i in to_run
            ):
                self._run_inline(jobs, to_run, results)
            else:
                self._run_pool(jobs, to_run, results)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- shared result plumbing --------------------------------------------

    def _tally(self, key: str, amount: float = 1) -> None:
        self.stats[key] += amount
        if self.registry is not None:
            self.registry.inc(f"runner.{key}", amount)

    def _job_timeout(self, job: Job) -> Optional[float]:
        return job.timeout if job.timeout is not None else self.timeout

    def _finish(
        self,
        results: List[Optional[JobResult]],
        index: int,
        result: JobResult,
        span=None,
    ) -> None:
        results[index] = result
        self._tally("executed")
        self._tally("wall_seconds", result.duration_s)
        self._tally("cpu_seconds", result.cpu_s)
        if not result.ok:
            self._tally("failures")
        if self.store is not None and result.ok:
            self.store.store(
                result.job,
                result.value,
                attempts=result.attempts,
                duration_s=result.duration_s,
                cpu_s=result.cpu_s,
            )
        if span is not None:
            span.set("status", result.status)
            span.set("attempts", result.attempts)
            if result.error:
                span.set("error", result.error)
            self.tracer.end_span(span)

    def _backoff_delay(self, attempt: int) -> float:
        return self.backoff * (2 ** (attempt - 1))

    # -- in-process execution ----------------------------------------------

    def _run_inline(
        self,
        jobs: Sequence[Job],
        to_run: Sequence[int],
        results: List[Optional[JobResult]],
    ) -> None:
        for index in to_run:
            job = jobs[index]
            span = (
                self.tracer.start_span(
                    "runner.job", job=job.label, id=job.job_id, cached=False
                )
                if self.tracer is not None
                else None
            )
            start = time.perf_counter()
            cpu0 = time.process_time()
            attempt = 0
            while True:
                attempt += 1
                try:
                    value = run_job(job)
                except BaseException as exc:  # noqa: BLE001
                    if attempt <= self.retries:
                        self._tally("retries")
                        time.sleep(self._backoff_delay(attempt))
                        continue
                    result = JobResult(
                        job=job,
                        status="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempt,
                        duration_s=time.perf_counter() - start,
                        cpu_s=time.process_time() - cpu0,
                    )
                    break
                result = JobResult(
                    job=job,
                    status="ok",
                    value=value,
                    attempts=attempt,
                    duration_s=time.perf_counter() - start,
                    cpu_s=time.process_time() - cpu0,
                )
                break
            self._finish(results, index, result, span)

    # -- multiprocessing execution -----------------------------------------

    def _context(self):
        if self.mp_context is not None:
            return multiprocessing.get_context(self.mp_context)
        methods = multiprocessing.get_all_start_methods()
        # fork skips re-import of the (already warm) library in every
        # worker; fall back to the platform default elsewhere.
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _run_pool(
        self,
        jobs: Sequence[Job],
        to_run: Sequence[int],
        results: List[Optional[JobResult]],
    ) -> None:
        ctx = self._context()
        workers = max(1, self.workers)
        pending: List[int] = list(to_run)
        ready_at: Dict[int, float] = {i: 0.0 for i in pending}
        attempts: Dict[int, int] = {i: 0 for i in pending}
        started: Dict[int, float] = {}
        spans: Dict[int, Any] = {}
        active: List[_Active] = []
        degraded: List[int] = []

        def resolve_attempt(entry: _Active, error: Optional[str], value, cpu_s):
            """One attempt ended (ok, error, crash or timeout)."""
            index = entry.index
            duration = time.perf_counter() - started[index]
            if error is None:
                self._finish(
                    results,
                    index,
                    JobResult(
                        job=jobs[index],
                        status="ok",
                        value=value,
                        attempts=entry.attempt,
                        duration_s=duration,
                        cpu_s=cpu_s,
                    ),
                    spans.pop(index, None),
                )
            elif entry.attempt <= self.retries:
                self._tally("retries")
                ready_at[index] = (
                    time.perf_counter() + self._backoff_delay(entry.attempt)
                )
                pending.append(index)
            else:
                self._finish(
                    results,
                    index,
                    JobResult(
                        job=jobs[index],
                        status="failed",
                        error=error,
                        attempts=entry.attempt,
                        duration_s=duration,
                        cpu_s=cpu_s,
                    ),
                    spans.pop(index, None),
                )

        while pending or active:
            now = time.perf_counter()
            # -- launch ready jobs into free worker slots
            launchable = [i for i in pending if ready_at[i] <= now]
            while launchable and len(active) < workers:
                index = launchable.pop(0)
                pending.remove(index)
                job = jobs[index]
                attempts[index] += 1
                if attempts[index] == 1:
                    started[index] = time.perf_counter()
                    if self.tracer is not None:
                        spans[index] = self.tracer.start_span(
                            "runner.job",
                            job=job.label,
                            id=job.job_id,
                            cached=False,
                        )
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(job.fn, job.config, child_conn),
                    daemon=True,
                )
                try:
                    process.start()
                except BaseException:  # noqa: BLE001 - sandboxed environments
                    parent_conn.close()
                    child_conn.close()
                    self.stats["degraded"] = True
                    if self.registry is not None:
                        self.registry.inc("runner.degraded")
                    attempts[index] -= 1
                    degraded.append(index)
                    continue
                child_conn.close()
                timeout = self._job_timeout(job)
                attempt_start = time.perf_counter()
                active.append(
                    _Active(
                        index,
                        attempts[index],
                        process,
                        parent_conn,
                        attempt_start,
                        attempt_start + timeout if timeout else None,
                    )
                )
            if self.stats["degraded"] and not active:
                break  # drain remaining work in-process below
            if not active:
                # everything pending is in backoff: sleep to the earliest
                time.sleep(
                    max(0.0, min(ready_at[i] for i in pending) - now)
                )
                continue
            # -- wait for a result, the next deadline or the next backoff
            wait_for = [entry.conn for entry in active]
            deadlines = [e.deadline for e in active if e.deadline is not None]
            wake: List[float] = list(deadlines)
            if pending and len(active) < workers:
                wake.append(min(ready_at[i] for i in pending))
            timeout = max(0.0, min(wake) - now) if wake else None
            ready = _wait_connections(wait_for, timeout)
            now = time.perf_counter()
            still_active: List[_Active] = []
            for entry in active:
                if entry.conn in ready:
                    try:
                        message = entry.conn.recv()
                    except (EOFError, OSError):
                        entry.process.join()
                        code = entry.process.exitcode
                        resolve_attempt(
                            entry,
                            f"WorkerCrash: worker exited with code {code} "
                            "before reporting a result",
                            None,
                            0.0,
                        )
                    else:
                        entry.process.join()
                        if message[0] == "ok":
                            _, value, cpu_s = message
                            resolve_attempt(entry, None, value, cpu_s)
                        else:
                            _, error, _tb, cpu_s = message
                            resolve_attempt(entry, error, None, cpu_s)
                    entry.conn.close()
                elif entry.deadline is not None and now >= entry.deadline:
                    entry.process.terminate()
                    entry.process.join()
                    entry.conn.close()
                    self._tally("timeouts")
                    limit = self._job_timeout(jobs[entry.index])
                    resolve_attempt(
                        entry,
                        f"Timeout: job exceeded {limit:.1f}s "
                        f"(attempt {entry.attempt})",
                        None,
                        0.0,
                    )
                else:
                    still_active.append(entry)
            active = still_active
        if self.stats["degraded"]:
            leftovers = sorted(
                set(degraded)
                | {i for i in to_run if results[i] is None}
            )
            for index in leftovers:
                span = spans.pop(index, None)
                if span is not None:
                    span.set("degraded", True)
                    self.tracer.end_span(span)
            self._run_inline(jobs, leftovers, results)

    # -- reporting ----------------------------------------------------------

    def summary(self) -> str:
        """One-line human summary of the last :meth:`run`."""
        s = self.stats or {}
        return (
            f"jobs={s.get('submitted', 0)} "
            f"executed={s.get('executed', 0)} "
            f"cached={s.get('cache_hits', 0)} "
            f"retries={s.get('retries', 0)} "
            f"timeouts={s.get('timeouts', 0)} "
            f"failed={s.get('failures', 0)} "
            f"job_seconds={s.get('wall_seconds', 0.0):.1f}"
            + (" degraded=yes" if s.get("degraded") else "")
        )
