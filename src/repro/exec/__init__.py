"""Fault-tolerant parallel job execution for the experiment harnesses.

The paper's evaluation is an embarrassingly parallel sweep over
independent benchmark runs; this package gives the reproduction the
measurement harness such a sweep deserves:

* :class:`~repro.exec.job.Job` — a pure function (named by dotted path
  so any worker process can resolve it) plus a JSON-serializable config,
  content-hashed into a stable job id;
* :class:`~repro.exec.checkpoint.CheckpointStore` — one JSON result
  file per job id, so an interrupted sweep resumes instead of
  recomputing;
* :class:`~repro.exec.runner.JobRunner` — fans jobs out across
  ``multiprocessing`` workers with per-job timeouts, bounded retry with
  exponential backoff, graceful degradation to in-process execution,
  deterministic (submission-order) results, and a cross-process
  telemetry pipeline: each job executes inside a fresh telemetry scope
  (:func:`~repro.exec.job.run_job_traced`) and its metrics/spans/
  hot-site payload is merged back in submission order, so parallel and
  serial sweeps report identical telemetry totals;
* :class:`~repro.exec.runner.PersistentPool` — the streaming sibling of
  the runner for long-lived services (``repro serve``): ``workers``
  resident child processes that jobs are fed to one at a time, with the
  same crash/timeout/retry/degradation semantics, ticket-based results
  (:class:`~repro.exec.runner.PoolTicket`) and per-completion telemetry
  merging.

See ``docs/experiment_runner.md`` for the job model, the cache layout
and the failure semantics.
"""

from .checkpoint import CheckpointStore
from .job import Job, resolve, run_job, run_job_traced
from .runner import JobResult, JobRunner, PersistentPool, PoolTicket

__all__ = [
    "CheckpointStore",
    "Job",
    "JobResult",
    "JobRunner",
    "PersistentPool",
    "PoolTicket",
    "resolve",
    "run_job",
    "run_job_traced",
]
