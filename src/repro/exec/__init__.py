"""Fault-tolerant parallel job execution for the experiment harnesses.

The paper's evaluation is an embarrassingly parallel sweep over
independent benchmark runs; this package gives the reproduction the
measurement harness such a sweep deserves:

* :class:`~repro.exec.job.Job` — a pure function (named by dotted path
  so any worker process can resolve it) plus a JSON-serializable config,
  content-hashed into a stable job id;
* :class:`~repro.exec.checkpoint.CheckpointStore` — one JSON result
  file per job id, so an interrupted sweep resumes instead of
  recomputing;
* :class:`~repro.exec.runner.JobRunner` — fans jobs out across
  ``multiprocessing`` workers with per-job timeouts, bounded retry with
  exponential backoff, graceful degradation to in-process execution,
  and deterministic (submission-order) results.

See ``docs/experiment_runner.md`` for the job model, the cache layout
and the failure semantics.
"""

from .checkpoint import CheckpointStore
from .job import Job, resolve
from .runner import JobResult, JobRunner

__all__ = ["CheckpointStore", "Job", "JobResult", "JobRunner", "resolve"]
