"""The CLEAN system: detector + deterministic synchronization, assembled.

This is the library's front door.  :class:`CleanMonitor` adapts the
runtime's event stream to the :class:`~repro.core.CleanDetector` — the
software-only CLEAN of Section 4, with the Section-4.3 ordering (write
checks before the store, read checks right after the load) guaranteed by
the monitor hook placement.  :func:`clean_stack` builds the full monitor
stack (race detection + Kendo gate), and :func:`run_clean` runs a program
under it.

Example
-------
    from repro.clean import run_clean
    from repro.runtime import Program

    result = run_clean(Program(main))
    if result.race is not None:
        print("stopped by", result.race)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .core.detector import CleanDetector
from .core.events import AccessEvent, DetectorBackend
from .core.epoch import DEFAULT_LAYOUT, EpochLayout
from .core.rollover import RolloverPolicy
from .determinism.counters import PreciseCounter
from .determinism.kendo import KendoGate
from .obs import MetricsRegistry, publish_detector_metrics
from .obs.context import current_registry, current_sites, current_timeline
from .obs.sites import SiteProfiler
from .obs.timeline import TimelineRecorder
from .runtime.ops import Op
from .runtime.program import Program
from .runtime.scheduler import (
    ExecutionMonitor,
    ExecutionResult,
    SchedulingPolicy,
)
from .runtime.sync import Barrier, Condition, Lock, Semaphore

__all__ = ["CleanMonitor", "clean_stack", "run_clean"]


class CleanMonitor(ExecutionMonitor):
    """Adapter: runtime events -> detector backend checks and VC upkeep.

    This is the *only* bridge between the runtime and a detector: the
    CLEAN detector and every baseline implement the same
    :class:`~repro.core.events.DetectorBackend` protocol and plug in
    here unchanged.  Memory traffic arrives as
    :class:`~repro.core.events.AccessEvent` objects through the fused
    scheduler dispatch; the Section-4.3 ordering (write checks before
    the store, read checks right after the load) is guaranteed by
    checking writes in :meth:`before_access` and reads in
    :meth:`after_access`.

    Private (stack-like) accesses are skipped, mirroring the conservative
    shared-access estimate of Section 4.1.  A rollover policy, if given,
    resets all metadata at synchronization commits — under the Kendo gate
    these commits are globally ordered, so the reset point is the
    deterministic one Section 4.5 requires.

    When the backend declares ``same_epoch_filter`` (CLEAN does; the
    baselines do not, because their reads mutate metadata), the monitor
    keeps, per thread, the set of addresses that thread has written in
    its current epoch; an access wholly inside that set provably cannot
    race and cannot change metadata, so the full check is skipped and
    only the backend's statistics mirror
    (:meth:`~repro.core.events.DetectorBackend.note_same_epoch`) runs.
    The set is invalidated whenever the thread's clock can advance (any
    sync commit, spawn/join, barrier departure, condition wake) and
    globally on rollover resets.  ``fastpath=False`` disables the filter
    (used by the verdict-equivalence property tests).
    """

    def __init__(
        self,
        detector: Optional[DetectorBackend] = None,
        rollover: Optional[RolloverPolicy] = None,
        max_threads: int = 64,
        layout: EpochLayout = DEFAULT_LAYOUT,
        instrument_private_fraction: float = 0.0,
        registry: Optional[MetricsRegistry] = None,
        fastpath: bool = True,
        sites: Optional[SiteProfiler] = None,
    ) -> None:
        if not 0.0 <= instrument_private_fraction <= 1.0:
            raise ValueError("instrument_private_fraction must be in [0, 1]")
        self.detector = (
            detector
            if detector is not None
            else CleanDetector(max_threads=max_threads, layout=layout)
        )
        self.rollover = rollover
        self.instrument_private_fraction = instrument_private_fraction
        self.registry = registry
        # Hot-site attribution: explicit profiler, else whatever the
        # ambient telemetry scope carries (None outside a scope — the
        # hot path then pays a single attribute test).
        self.sites = sites if sites is not None else current_sites()
        self._sync_index = 0
        self._fastpath = bool(fastpath) and bool(
            getattr(self.detector, "same_epoch_filter", False)
        )
        #: tid -> addresses written by that thread in its current epoch.
        self._epoch_writes: Dict[int, Set[int]] = {}
        self.fastpath_hits = 0
        self.fastpath_misses = 0

    @property
    def fastpath_enabled(self) -> bool:
        """Whether the same-epoch filter is active for this backend."""
        return self._fastpath

    def _invalidate(self, tid: int) -> None:
        writes = self._epoch_writes.get(tid)
        if writes:
            writes.clear()

    def _invalidate_all(self) -> None:
        self._epoch_writes.clear()

    def _instrument(self, private: bool, address: int) -> bool:
        """Whether this access gets a race check.

        Shared accesses always do.  ``instrument_private_fraction``
        models how conservative the compiler's shared-access estimate is
        (Section 4.1): 0.0 is a perfect escape analysis, 1.0 instruments
        every stack access whose privacy it could not prove.  The choice
        is a deterministic hash of the address, standing in for the
        static classification of the variable.
        """
        if not private:
            return True
        if not self.instrument_private_fraction:
            return False
        return (address * 2654435761 % 1000) < self.instrument_private_fraction * 1000

    # -- thread lifecycle -------------------------------------------------

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self._invalidate(tid)
        if parent is None:
            root = self.detector.spawn_root()
            if root != tid:
                raise RuntimeError(
                    f"scheduler root tid {tid} != detector root tid {root}"
                )

    def on_spawn(self, parent: int, child: int) -> None:
        self._invalidate(parent)
        self._invalidate(child)
        self.detector.fork(parent, child)

    def on_join(self, parent: int, child: int) -> None:
        self._invalidate(parent)
        self._invalidate(child)
        self.detector.join(parent, child)

    # -- memory (the Figure-2 checks, ordered per Section 4.3) ---------------

    def before_access(self, event: AccessEvent) -> None:
        if not event.is_write:
            return
        address = event.address
        if not self._instrument(event.private, address):
            return
        tid = event.tid
        size = event.size
        sites = self.sites
        if self._fastpath:
            written = self._epoch_writes.get(tid)
            if written is not None and (
                address in written
                if size == 1
                else all(address + o in written for o in range(size))
            ):
                self.fastpath_hits += 1
                self.detector.note_same_epoch(tid, address, size, is_read=False)
                if sites is not None:
                    sites.note_same_epoch(tid, address, is_write=True)
                return
            self.fastpath_misses += 1
            if sites is not None:
                sites.note_check(tid, address, is_write=True)
            self.detector.check_write(tid, address, size)
            if written is None:
                written = self._epoch_writes.setdefault(tid, set())
            written.update(range(address, address + size))
        else:
            if sites is not None:
                sites.note_check(tid, address, is_write=True)
            self.detector.check_write(tid, address, size)

    def after_access(self, event: AccessEvent) -> None:
        if event.is_write:
            return
        address = event.address
        if not self._instrument(event.private, address):
            return
        tid = event.tid
        size = event.size
        sites = self.sites
        if self._fastpath:
            written = self._epoch_writes.get(tid)
            if written is not None and (
                address in written
                if size == 1
                else all(address + o in written for o in range(size))
            ):
                self.fastpath_hits += 1
                self.detector.note_same_epoch(tid, address, size, is_read=True)
                if sites is not None:
                    sites.note_same_epoch(tid, address, is_write=False)
                return
            self.fastpath_misses += 1
        if sites is not None:
            sites.note_check(tid, address, is_write=False)
        self.detector.check_read(tid, address, size)

    # -- the batch lane (replay / analysis) ---------------------------------

    #: Below this many accesses the scalar loop beats the numpy setup.
    BATCH_MIN = 16

    def on_access_block(self, tid: int, events: Sequence[AccessEvent]) -> None:
        """Scheduler batch-lane hook: one thread's in-order access run."""
        self.check_block(
            tid,
            [(e.is_write, e.address, e.size, e.private) for e in events],
        )

    def check_block(
        self, tid: int, block: Sequence[Tuple[bool, int, int, bool]]
    ) -> None:
        """Drive a whole in-order access block through the adapter.

        ``block`` items are ``(is_write, address, size, private)`` —
        one synchronization-free run of a single thread's accesses, as
        streaming replay and the batch scheduler lane produce them.
        Semantics are identical to the per-event hooks: same verdicts,
        same fast-path hit/miss counts, same ``note_same_epoch`` /
        SiteProfiler / shadow accounting, and on a race the same
        exception with the same counter trail.

        The same-epoch classification of the *whole* block is resolved
        in one vectorized pass (a byte is covered at access ``i`` iff it
        was in the written-this-epoch set before the block or an earlier
        write in the block covered it), then hit runs collapse into one
        aggregate accounting call and miss runs go to the backend's
        vectorized :meth:`~repro.core.events.DetectorBackend.check_block`.

        ``block`` may also arrive columnar — a 4-tuple of equal-length
        numpy arrays ``(is_write, address, size, private)`` — which the
        offline analysis engine hands over straight from its decoded
        trace columns, skipping every per-event tuple.
        """
        columnar = (
            type(block) is tuple
            and len(block) == 4
            and isinstance(block[0], np.ndarray)
        )
        if columnar and not self.instrument_private_fraction:
            w_col, a_col, s_col, p_col = block
            keep = ~np.asarray(p_col, dtype=bool)
            is_write = np.asarray(w_col, dtype=bool)[keep]
            addr = np.asarray(a_col, dtype=np.int64)[keep]
            size = np.asarray(s_col, dtype=np.int64)[keep]
            n = int(addr.size)
            items = None
        else:
            if columnar:
                w_col, a_col, s_col, p_col = block
                block = list(
                    zip(
                        w_col.tolist(), a_col.tolist(),
                        s_col.tolist(), p_col.tolist(),
                    )
                )
            if self.instrument_private_fraction:
                items = [
                    (w, a, s)
                    for (w, a, s, p) in block
                    if self._instrument(p, a)
                ]
            else:
                items = [(w, a, s) for (w, a, s, p) in block if not p]
            n = len(items)
        if not n:
            return
        # The profiler's sampling tick is order-sensitive, and without
        # the fast path there is no classification to batch: replay the
        # exact scalar hook bodies.
        if self.sites is not None or not self._fastpath or n < self.BATCH_MIN:
            if items is None:
                items = list(
                    zip(is_write.tolist(), addr.tolist(), size.tolist())
                )
            for is_write_, address, size_ in items:
                self._check_one(tid, is_write_, address, size_)
            return

        if items is not None:
            is_write = np.fromiter((a[0] for a in items), dtype=bool, count=n)
            addr = np.fromiter((a[1] for a in items), dtype=np.int64, count=n)
            size = np.fromiter((a[2] for a in items), dtype=np.int64, count=n)
        if int(size.min()) < 1:
            if items is None:
                items = list(
                    zip(is_write.tolist(), addr.tolist(), size.tolist())
                )
            for is_write_, address, size_ in items:
                self._check_one(tid, is_write_, address, size_)
            return

        # Byte expansion and the written-this-epoch coverage overlay.
        total = int(size.sum())
        acc_idx = np.repeat(np.arange(n), size)
        seg_starts = np.cumsum(size) - size
        baddr = np.repeat(addr, size) + (
            np.arange(total) - np.repeat(seg_starts, size)
        )
        unique, inv = np.unique(baddr, return_inverse=True)
        written = self._epoch_writes.get(tid)
        if written:
            covered0 = np.fromiter(
                (int(u) in written for u in unique),
                dtype=bool,
                count=len(unique),
            )
        else:
            covered0 = np.zeros(len(unique), dtype=bool)
        first_write = np.full(len(unique), n, dtype=np.int64)
        byte_is_write = is_write[acc_idx]
        np.minimum.at(first_write, inv[byte_is_write], acc_idx[byte_is_write])
        byte_covered = covered0[inv] | (first_write[inv] < acc_idx)
        hit = np.ones(n, dtype=bool)
        np.logical_and.at(hit, acc_idx, byte_covered)

        # One detector call for the whole miss subsequence, one aggregate
        # accounting call for every hit.  Squeezing the hits out is
        # sound: a hit's bytes already carry the thread's current epoch
        # (that is what made it a hit), so removing it changes neither
        # the detector's effective-epoch overlay nor any verdict — and
        # hits never touch the shadow on the scalar fast path either.
        # First-touch workloads alternate hit/miss at access grain, so
        # per-run dispatch would degenerate into thousands of length-1
        # scalar calls.
        detector = self.detector
        miss_idx = np.flatnonzero(~hit)
        if miss_idx.size:
            try:
                detector.check_block(
                    tid,
                    (is_write[miss_idx], addr[miss_idx], size[miss_idx]),
                )
            except Exception:
                # The scalar loop counts every hit and miss before the
                # raising access (and applies the misses' earlier writes
                # to the written set), then stops.
                done = int(getattr(detector, "block_progress", 0))
                raiser = int(miss_idx[done])
                self.fastpath_misses += done + 1
                pre_hits = np.flatnonzero(hit[:raiser])
                if pre_hits.size:
                    self.fastpath_hits += int(pre_hits.size)
                    detector.note_same_epoch_block(
                        tid,
                        (is_write[pre_hits], addr[pre_hits], size[pre_hits]),
                    )
                if written is None:
                    written = self._epoch_writes.setdefault(tid, set())
                processed = np.zeros(n, dtype=bool)
                processed[miss_idx[:done]] = True
                done_mask = processed[acc_idx] & byte_is_write
                written.update(baddr[done_mask].tolist())
                raise
            self.fastpath_misses += int(miss_idx.size)
            if written is None:
                written = self._epoch_writes.setdefault(tid, set())
            miss_mask = ~hit[acc_idx] & byte_is_write
            written.update(baddr[miss_mask].tolist())
        n_hits = n - int(miss_idx.size)
        if n_hits:
            self.fastpath_hits += n_hits
            detector.note_same_epoch_block(
                tid, (is_write[hit], addr[hit], size[hit])
            )

    def _check_one(
        self, tid: int, is_write: bool, address: int, size: int
    ) -> None:
        """One (already instrument-filtered) access, exact hook body."""
        sites = self.sites
        if self._fastpath:
            written = self._epoch_writes.get(tid)
            if written is not None and (
                address in written
                if size == 1
                else all(address + o in written for o in range(size))
            ):
                self.fastpath_hits += 1
                self.detector.note_same_epoch(
                    tid, address, size, is_read=not is_write
                )
                if sites is not None:
                    sites.note_same_epoch(tid, address, is_write=is_write)
                return
            self.fastpath_misses += 1
            if sites is not None:
                sites.note_check(tid, address, is_write=is_write)
            if is_write:
                self.detector.check_write(tid, address, size)
                if written is None:
                    written = self._epoch_writes.setdefault(tid, set())
                written.update(range(address, address + size))
            else:
                self.detector.check_read(tid, address, size)
            return
        if sites is not None:
            sites.note_check(tid, address, is_write=is_write)
        if is_write:
            self.detector.check_write(tid, address, size)
        else:
            self.detector.check_read(tid, address, size)

    # -- synchronization (vector-clock maintenance) ----------------------------

    def on_acquire(self, tid: int, lock: Lock) -> None:
        self.detector.acquire(tid, lock)

    def on_release(self, tid: int, lock: Lock) -> None:
        self.detector.release(tid, lock)

    def on_barrier_arrive(self, tid: int, barrier: Barrier, generation: int) -> None:
        self.detector.release(tid, (barrier, generation))

    def on_barrier_depart(self, tid: int, barrier: Barrier, generation: int) -> None:
        self._invalidate(tid)
        self.detector.acquire(tid, (barrier, generation))

    def on_cond_signal(self, tid: int, cond: Condition) -> None:
        self.detector.release(tid, cond)

    def on_cond_wake(self, tid: int, cond: Condition) -> None:
        self._invalidate(tid)
        self.detector.acquire(tid, cond)

    def on_sem_post(self, tid: int, sem: Semaphore) -> None:
        self.detector.release(tid, sem)

    def on_sem_wait(self, tid: int, sem: Semaphore) -> None:
        self.detector.acquire(tid, sem)

    # -- rollover -----------------------------------------------------------------

    def on_rollback(self, tid: int) -> None:
        # Recovery discarded ``tid``'s open SFR: the epochs its buffered
        # writes installed were scrubbed, so the written-this-epoch set
        # no longer describes shadow state.
        self._invalidate(tid)

    def on_sync_commit(self, tid: int, op: Op) -> None:
        self._invalidate(tid)
        if self.sites is not None:
            self.sites.note_sync(tid)
        self._sync_index += 1
        if self.rollover is not None and self.rollover.should_reset(self.detector):
            self.rollover.perform_reset(self.detector, self._sync_index)
            # A reset wipes every location's metadata: no thread's
            # written-this-epoch set says anything about shadow state
            # any more.
            self._invalidate_all()

    # -- telemetry ----------------------------------------------------------------

    def on_finish(self, result: ExecutionResult) -> None:
        if self.registry is not None:
            self.publish_metrics(self.registry)
        if self.sites is not None and result.race is not None:
            self.sites.note_race(result.race.address)
        ambient = current_registry()
        if ambient is not None:
            self.accumulate_metrics(ambient)

    def accumulate_metrics(self, registry: MetricsRegistry) -> None:
        """Add this run's detector totals to ``registry`` (``clean.*``).

        Unlike :meth:`publish_metrics` — an idempotent absolute mirror
        (``set_to``) of *one* detector's stats struct — this family
        *accumulates*: a worker job that executes twenty detector runs
        sums them, and the parent process sums worker snapshots again
        via :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`.
        That is what makes ``clean.checks`` totals identical between a
        serial and a ``--jobs N`` report.
        """
        stats = getattr(self.detector, "stats", None)
        if stats is not None:
            accesses = getattr(stats, "accesses", None)
            if isinstance(accesses, (int, float)):
                registry.inc("clean.checks", accesses)
            for field in (
                "reads", "writes", "epoch_comparisons", "epoch_updates",
                "cas_failures", "races_raised", "rollovers",
            ):
                value = getattr(stats, field, None)
                if isinstance(value, (int, float)) and value:
                    registry.inc(f"clean.{field}", value)
        shadow = getattr(self.detector, "shadow", None)
        if shadow is not None:
            # Shadow traffic stays exact under batch operations (the
            # batch paths account loads/stores explicitly), so the fast
            # path is observable from the profile output.
            for field in ("loads", "stores", "resets"):
                value = getattr(shadow, field, None)
                if isinstance(value, (int, float)) and value:
                    registry.inc(f"clean.shadow.{field}", value)
        if self._fastpath:
            registry.inc("clean.same_epoch.hits", self.fastpath_hits)
            registry.inc("clean.same_epoch.misses", self.fastpath_misses)
        registry.inc("clean.runs")

    def publish_metrics(self, registry: MetricsRegistry) -> None:
        """Mirror the detector's counters into ``registry``.

        Runs automatically at the end of every execution when the
        monitor was built with a ``registry``; callable at any point for
        a mid-run snapshot.  Works for the CLEAN detector and for any
        baseline plugged through this adapter (duck-typed publishing).
        """
        publish_detector_metrics(self.detector, registry)
        if self._fastpath:
            registry.counter("detector.fastpath.hits").set_to(self.fastpath_hits)
            registry.counter("detector.fastpath.misses").set_to(self.fastpath_misses)
        if self.rollover is not None:
            registry.counter("detector.rollover.resets").set_to(self.rollover.count)


def clean_stack(
    detect: bool = True,
    deterministic: bool = True,
    detector: Optional[DetectorBackend] = None,
    rollover: Optional[RolloverPolicy] = None,
    max_threads: int = 64,
    layout: EpochLayout = DEFAULT_LAYOUT,
    extra: Optional[List[ExecutionMonitor]] = None,
    registry: Optional[MetricsRegistry] = None,
    fastpath: bool = True,
) -> Tuple[List[ExecutionMonitor], Optional[CleanMonitor], Optional[KendoGate]]:
    """Build the CLEAN monitor stack.

    Returns ``(monitors, clean_monitor, kendo_gate)`` — the latter two are
    ``None`` when the corresponding mechanism is disabled, letting
    callers measure each mechanism in isolation as Figure 6 does.  A
    ``registry`` makes the monitor publish its detector's counters there
    at the end of every run (see :mod:`repro.obs`).
    """
    monitors: List[ExecutionMonitor] = []
    clean: Optional[CleanMonitor] = None
    gate: Optional[KendoGate] = None
    if detect:
        clean = CleanMonitor(
            detector=detector,
            rollover=rollover,
            max_threads=max_threads,
            layout=layout,
            registry=registry,
            fastpath=fastpath,
        )
        monitors.append(clean)
    if deterministic:
        gate = KendoGate()
        monitors.append(gate)
    if extra:
        monitors.extend(extra)
    return monitors, clean, gate


def run_clean(
    program: Program,
    detect: bool = True,
    deterministic: bool = True,
    policy: Optional[SchedulingPolicy] = None,
    detector: Optional[DetectorBackend] = None,
    rollover: Optional[RolloverPolicy] = None,
    max_threads: int = 64,
    layout: EpochLayout = DEFAULT_LAYOUT,
    counter_cost: Optional[Callable] = None,
    extra_monitors: Optional[List[ExecutionMonitor]] = None,
    raise_on_race: bool = False,
    registry: Optional[MetricsRegistry] = None,
    fastpath: bool = True,
    recovery: Optional[object] = None,
    timeline: Optional[TimelineRecorder] = None,
) -> ExecutionResult:
    """Run ``program`` under CLEAN and return its execution result.

    The returned result's ``race`` field carries the
    :class:`~repro.core.exceptions.RaceException` if the execution was
    stopped; ``raise_on_race=True`` re-raises it instead.

    ``recovery`` — a mode string (``"abort"``, ``"quarantine"``,
    ``"rollback-retry"``) or a
    :class:`~repro.runtime.recovery.RecoveryPolicy` — makes the
    scheduler buffer SFR writes and *survive* race exceptions instead of
    stopping; the result's ``recovery`` field then carries the
    :class:`~repro.runtime.recovery.RecoveryReport`.

    ``timeline`` — a :class:`~repro.obs.timeline.TimelineRecorder` —
    records the run's execution timeline (SFRs, sync ops, happens-before
    edges) for the forensics exporters.  When no recorder is passed but
    the ambient telemetry scope carries a
    :class:`~repro.obs.timeline.TimelineSink`, one is created per run
    and its payload is delivered to the sink — that is how ``--jobs N``
    workers ship timelines back to the parent.  Either way a
    :class:`~repro.diagnostics.RaceContextMonitor` rides along and, if
    the run races, its :class:`~repro.diagnostics.RaceReport` payload is
    attached to the recorder as ``race_report`` so every forensics
    artifact names the same racing SFR pair as ``RaceReport.render()``.
    """
    from .diagnostics import RaceContextMonitor

    sink = None
    recorder = timeline
    if recorder is None:
        sink = current_timeline()
        if sink is not None:
            recorder = TimelineRecorder(label=program.main.__name__)
    context: Optional[RaceContextMonitor] = None
    monitors, _clean, _gate = clean_stack(
        detect=detect,
        deterministic=deterministic,
        detector=detector,
        rollover=rollover,
        max_threads=max_threads,
        layout=layout,
        extra=extra_monitors,
        registry=registry,
        fastpath=fastpath,
    )
    if recorder is not None:
        # Provenance must be recorded before the CLEAN monitor raises.
        context = RaceContextMonitor()
        monitors.insert(0, context)
    result = program.run(
        policy=policy,
        monitors=monitors,
        max_threads=max_threads,
        counter_cost=counter_cost if counter_cost is not None else PreciseCounter(),
        raise_on_race=False if recorder is not None else raise_on_race,
        recovery=recovery,
        timeline=recorder,
    )
    if recorder is not None:
        if result.race is not None and context is not None:
            recorder.race_report = context.report(
                result.race, sites=current_sites()
            ).to_payload()
        if sink is not None:
            sink.add(recorder.to_payload())
        if raise_on_race and result.race is not None:
            raise result.race
    return result
