"""The CLEAN race detector: precise WAW and RAW detection via epochs.

This module implements the paper's core mechanism (Sections 3.2 and 4):

* one epoch word per shared byte, holding the last write's
  ``(tid, clock)`` pair;
* per-thread and per-lock vector clocks, updated only on synchronization
  and thread create/join;
* the Figure-2 check on every shared access: a WAW or RAW race occurred
  iff the saved epoch's clock exceeds the accessing thread's vector-clock
  element for the saved epoch's thread;
* write-side epoch update via compare-and-swap, so concurrent write
  checks cannot silently lose a WAW race (Section 4.3);
* the multi-byte fast path of Section 4.4: when all bytes of an access
  share one epoch, a single comparison (and a single wide update)
  suffices;
* the clock-rollover procedure of Section 4.5: when a clock is about to
  exceed its representation, every epoch and vector clock is reset at a
  deterministic synchronization boundary.

WAR races are *never* checked — that is the point of CLEAN: reads do not
update any metadata, and writes are only compared against the last write.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .epoch import DEFAULT_LAYOUT, EpochLayout
from .events import DetectorBackend, stable_sync_id
from .exceptions import (
    MetadataError,
    RawRaceException,
    TooManyThreadsError,
    WawRaceException,
)
from .shadow import FlatShadow, SparseShadow
from .vector_clock import VectorClock

__all__ = ["AccessStats", "CleanDetector", "ThreadState"]


@dataclass
class AccessStats:
    """Counters describing the detector's dynamic behaviour.

    These feed the software cost model (Figure 6/8) and the reproduction
    of the paper's measured access properties: the fraction of accesses
    that are >= 4 bytes wide and the fraction of multi-byte accesses whose
    bytes all share one epoch (Section 6.2.3).
    """

    reads: int = 0
    writes: int = 0
    read_bytes: int = 0
    written_bytes: int = 0
    accesses_ge_4_bytes: int = 0
    multibyte_accesses: int = 0
    multibyte_uniform_epoch: int = 0
    epoch_comparisons: int = 0
    epoch_updates: int = 0
    cas_failures: int = 0
    sync_ops: int = 0
    rollovers: int = 0
    races_raised: int = 0

    @property
    def accesses(self) -> int:
        """Total checked accesses."""
        return self.reads + self.writes

    @property
    def fraction_wide(self) -> float:
        """Fraction of accesses that are 4 or more bytes wide."""
        if not self.accesses:
            return 0.0
        return self.accesses_ge_4_bytes / self.accesses

    @property
    def fraction_uniform_epoch(self) -> float:
        """Fraction of multi-byte accesses with one epoch for all bytes."""
        if not self.multibyte_accesses:
            return 0.0
        return self.multibyte_uniform_epoch / self.multibyte_accesses


@dataclass
class ThreadState:
    """Per-thread detector state: the tid and its vector clock."""

    tid: int
    vc: VectorClock
    alive: bool = True
    children: Set[int] = field(default_factory=set)


class CleanDetector(DetectorBackend):
    """Precise WAW/RAW race detector with deterministic rollover resets.

    Parameters
    ----------
    max_threads:
        Arity of every vector clock; also bounds concurrently-live
        threads.  Thread ids of joined threads are reused (Section 4.5).
    layout:
        Epoch bit layout.  The default is the paper's 23-bit-clock
        configuration; pass :data:`~repro.core.epoch.WIDE_CLOCK_LAYOUT`
        for the 28-bit Table-1 configuration.
    shadow:
        Epoch store; defaults to a fresh :class:`FlatShadow` (the flat
        array table the batch path vectorizes over).  Pass a
        :class:`SparseShadow` for the paper's pay-as-you-go hash map or
        a :class:`DenseShadow` for a fixed window.
    vectorized:
        Enable the Section-4.4 multi-byte fast path.  Disabling it forces
        one check per byte — the "without vectorization" bar of Figure 8.
    auto_rollover:
        Reset metadata automatically when a clock is about to overflow.
        The runtime integration performs the reset at a globally
        deterministic synchronization point; standalone use resets at the
        offending synchronization operation, which in a cooperative
        execution is itself an SFR boundary.
    """

    def __init__(
        self,
        max_threads: int = 8,
        layout: EpochLayout = DEFAULT_LAYOUT,
        shadow: Optional[SparseShadow] = None,
        vectorized: bool = True,
        auto_rollover: bool = True,
    ) -> None:
        if max_threads < 1:
            raise ValueError("need at least one thread")
        if max_threads - 1 > layout.max_tid:
            raise TooManyThreadsError(
                f"{max_threads} threads need more than {layout.tid_bits} tid bits"
            )
        self.layout = layout
        self.max_threads = max_threads
        self.shadow = shadow if shadow is not None else FlatShadow()
        self.vectorized = vectorized
        self.auto_rollover = auto_rollover
        self.stats = AccessStats()
        self.rollover_pending = False
        self._threads: Dict[int, ThreadState] = {}
        self._free_tids: List[int] = list(range(max_threads - 1, -1, -1))
        self._lock_vcs: Dict[object, VectorClock] = {}

    # -- thread lifecycle --------------------------------------------------

    def spawn_root(self) -> int:
        """Create the initial (main) thread; returns its tid (always 0)."""
        if self._threads:
            raise MetadataError("root thread already exists")
        tid = self._free_tids.pop()
        self._threads[tid] = ThreadState(tid, VectorClock(self.max_threads, self.layout))
        self._threads[tid].vc.increment(tid)
        return tid

    def fork(self, parent_tid: int, child_tid: Optional[int] = None) -> int:
        """Create a child thread; establishes parent-happens-before-child.

        The child inherits the parent's vector clock (so everything the
        parent did so far happens-before everything the child will do),
        then both advance their own clocks.  ``child_tid`` pins the id
        (it must be free) so an external thread manager — the runtime
        scheduler — and the detector agree on thread naming; left to
        ``None``, ids are allocated LIFO from the free list.
        """
        parent = self._thread(parent_tid)
        if not self._free_tids:
            raise TooManyThreadsError(
                f"more than {self.max_threads} concurrently live threads"
            )
        if child_tid is None:
            tid = self._free_tids.pop()
        else:
            if child_tid not in self._free_tids:
                raise MetadataError(f"requested child tid {child_tid} is not free")
            self._free_tids.remove(child_tid)
            tid = child_tid
        child_vc = parent.vc.copy()
        self._threads[tid] = ThreadState(tid, child_vc)
        parent.children.add(tid)
        self._advance(self._threads[tid])
        self._advance(parent)
        return tid

    def join(self, parent_tid: int, child_tid: int) -> None:
        """Join ``child_tid``; establishes child-happens-before-parent.

        The child's tid becomes reusable afterwards.
        """
        parent = self._thread(parent_tid)
        child = self._thread(child_tid)
        self._advance(child)
        parent.vc.join(child.vc)
        child.alive = False
        parent.children.discard(child_tid)
        del self._threads[child_tid]
        self._free_tids.append(child_tid)

    def live_threads(self) -> List[int]:
        """Tids of all currently live threads."""
        return sorted(self._threads)

    def thread_vc(self, tid: int) -> VectorClock:
        """The vector clock of thread ``tid`` (live view, do not mutate)."""
        return self._thread(tid).vc

    # -- synchronization ---------------------------------------------------

    def release(self, tid: int, sync_key: object) -> None:
        """Lock release / condition signal / barrier arrival by ``tid``.

        Joins the thread's vector clock into the sync object's and
        advances the thread's own clock, as in standard vector-clock
        detectors (Section 2.3).  Sync vector clocks are keyed by
        :func:`~repro.core.events.stable_sync_id`, not object identity.
        """
        thread = self._thread(tid)
        key = stable_sync_id(sync_key)
        vc = self._lock_vcs.get(key)
        if vc is None:
            vc = VectorClock(self.max_threads, self.layout)
            self._lock_vcs[key] = vc
        vc.join(thread.vc)
        self._advance(thread)
        self.stats.sync_ops += 1

    def acquire(self, tid: int, sync_key: object) -> None:
        """Lock acquire / condition wait return / barrier departure."""
        thread = self._thread(tid)
        vc = self._lock_vcs.get(stable_sync_id(sync_key))
        if vc is not None:
            thread.vc.join(vc)
        self.stats.sync_ops += 1

    # -- the race check (Figure 2) ------------------------------------------

    def check_read(self, tid: int, address: int, size: int = 1) -> None:
        """Race-check a ``size``-byte read at ``address`` by ``tid``.

        Raises :class:`RawRaceException` iff the read races with the last
        write to any accessed byte.  Reads never update metadata.
        """
        self._check_access(tid, address, size, is_read=True)
        self.stats.reads += 1
        self.stats.read_bytes += size
        self._note_width(size)

    def check_write(self, tid: int, address: int, size: int = 1) -> None:
        """Race-check a ``size``-byte write and update the epochs.

        Raises :class:`WawRaceException` iff the write races with the
        last write to any accessed byte (including the case where the
        epoch CAS observes a concurrent update, Section 4.3).
        """
        self._check_access(tid, address, size, is_read=False)
        self.stats.writes += 1
        self.stats.written_bytes += size
        self._note_width(size)

    #: The adapter's same-epoch fast path is verdict-invariant for CLEAN:
    #: a byte whose epoch equals the accessing thread's current epoch can
    #: only have been written by that thread in its current SFR, so the
    #: Figure-2 comparison cannot fire and a write's CAS is a no-op.
    same_epoch_filter = True

    def note_same_epoch(
        self, tid: int, address: int, size: int, is_read: bool
    ) -> None:
        """Account an access the same-epoch fast path proved race-free.

        Mirrors exactly the counters :meth:`check_read`/:meth:`check_write`
        would have recorded for an access whose bytes all carry the
        thread's current epoch (one comparison on the vectorized fast
        path, one per byte otherwise; never an epoch update), so the
        software cost model and every figure built on ``stats`` are
        invariant under the filter.
        """
        stats = self.stats
        if size > 1:
            stats.multibyte_accesses += 1
            stats.multibyte_uniform_epoch += 1
        stats.epoch_comparisons += 1 if (self.vectorized and size > 1) else size
        if is_read:
            stats.reads += 1
            stats.read_bytes += size
        else:
            stats.writes += 1
            stats.written_bytes += size
        self._note_width(size)

    def note_same_epoch_block(
        self, tid: int, block: Sequence[Tuple[bool, int, int]]
    ) -> None:
        """Aggregate :meth:`note_same_epoch` over a batch of accesses.

        Pure counter arithmetic — the batched totals are exactly the sum
        of the per-access calls, computed without a Python-level loop.
        ``block`` items are ``(is_write, address, size)``.
        """
        stats = self.stats
        if (
            type(block) is tuple
            and len(block) == 3
            and isinstance(block[2], np.ndarray)
        ):
            is_write = np.asarray(block[0], dtype=bool)
            size = np.asarray(block[2], dtype=np.int64)
            n = int(size.size)
        else:
            n = len(block)
            if n:
                size = np.fromiter(
                    (a[2] for a in block), dtype=np.int64, count=n
                )
                is_write = np.fromiter(
                    (a[0] for a in block), dtype=bool, count=n
                )
        if not n:
            return
        multi = size > 1
        n_multi = int(multi.sum())
        stats.multibyte_accesses += n_multi
        stats.multibyte_uniform_epoch += n_multi
        if self.vectorized:
            stats.epoch_comparisons += n_multi + int(size[~multi].sum())
        else:
            stats.epoch_comparisons += int(size.sum())
        n_writes = int(is_write.sum())
        stats.writes += n_writes
        stats.reads += n - n_writes
        stats.written_bytes += int(size[is_write].sum())
        stats.read_bytes += int(size[~is_write].sum())
        stats.accesses_ge_4_bytes += int((size >= 4).sum())

    def _check_access(self, tid: int, address: int, size: int, is_read: bool) -> None:
        if size < 1:
            raise ValueError("access size must be positive")
        thread = self._thread(tid)
        new_epoch = thread.vc.element(tid)

        epochs = self.shadow.load_range(address, size)
        if size > 1:
            self.stats.multibyte_accesses += 1

        if self.vectorized and size > 1 and epochs.count(epochs[0]) == size:
            # Fast path (Section 4.4): all bytes share one epoch, so the
            # race outcome is identical for every byte — one comparison,
            # and (for writes) one wide update.
            self.stats.multibyte_uniform_epoch += 1
            self._compare(epochs[0], thread, address, size, is_read)
            if not is_read and epochs[0] != new_epoch:
                self._update_wide(address, size, epochs[0], new_epoch, thread)
            return

        if size > 1 and epochs.count(epochs[0]) == size:
            # Record uniformity even when vectorization is off, so the
            # Figure-8 "without vectorization" run still measures it.
            self.stats.multibyte_uniform_epoch += 1

        for i, epoch in enumerate(epochs):
            self._compare(epoch, thread, address + i, 1, is_read)
            if not is_read and epoch != new_epoch:
                self._cas_update(address + i, epoch, new_epoch, thread, 1)

    def _compare(
        self, epoch: int, thread: ThreadState, address: int, size: int, is_read: bool
    ) -> None:
        """Line 3 of Figure 2: compare epoch clock with the thread's VC."""
        self.stats.epoch_comparisons += 1
        layout = self.layout
        writer_tid = layout.tid(epoch)
        writer_clock = layout.clock(epoch)
        if writer_clock > thread.vc.clock_of(writer_tid):
            self.stats.races_raised += 1
            exc = RawRaceException if is_read else WawRaceException
            raise exc(address, thread.tid, writer_tid, writer_clock, size)

    def _cas_update(
        self, address: int, expected: int, new_epoch: int, thread: ThreadState, size: int
    ) -> None:
        """Line 6 of Figure 2, via CAS so a concurrent update is a WAW race."""
        if self.shadow.compare_and_swap(address, expected, new_epoch):
            self.stats.epoch_updates += 1
            return
        self.stats.cas_failures += 1
        self.stats.races_raised += 1
        actual = self.shadow.load(address)
        raise WawRaceException(
            address, thread.tid, self.layout.tid(actual), self.layout.clock(actual), size
        )

    def _update_wide(
        self, address: int, size: int, expected: int, new_epoch: int, thread: ThreadState
    ) -> None:
        """Wide-CAS update of all epochs of a uniform multi-byte access."""
        for i in range(size):
            self._cas_update(address + i, expected, new_epoch, thread, size)

    # -- the batch check ------------------------------------------------------

    #: Below this many accesses the scalar loop beats the numpy setup cost.
    BATCH_MIN = 8

    def check_block(
        self, tid: int, block: Sequence[Tuple[bool, int, int]]
    ) -> None:
        """Vectorized batch check of one thread's in-order access block.

        Semantics are *identical* to looping :meth:`check_read` /
        :meth:`check_write` over ``block`` — same verdicts, same
        exception at the same access, and figure-exact ``stats`` and
        shadow counters — but the race-free majority is resolved in a
        handful of numpy passes over flat epoch tables.

        The trick is the *effective epoch* overlay: within one block the
        only metadata mutation is this thread's writes installing its
        current epoch, so byte ``b`` at access ``i`` carries the
        thread's epoch if an earlier write in the block covered ``b``,
        and its pre-block epoch otherwise.  That makes every per-byte
        Figure-2 comparison computable in one vectorized pass.  The
        first access whose predicate fires (the conflict minority) is
        re-run through the genuine scalar path, which raises with the
        exact counters and exception the scalar loop would have
        produced; the remaining suffix is re-screened the same way.
        """
        columnar = (
            type(block) is tuple
            and len(block) == 3
            and isinstance(block[1], np.ndarray)
        )
        n = int(block[1].size) if columnar else len(block)
        if (
            n < self.BATCH_MIN
            or not self.vectorized
            or not hasattr(self.shadow, "gather")
        ):
            return DetectorBackend.check_block(self, tid, block)

        thread = self._thread(tid)
        new_epoch = thread.vc.element(tid)

        if columnar:
            is_write = np.asarray(block[0], dtype=bool)
            addr = np.asarray(block[1], dtype=np.int64)
            size = np.asarray(block[2], dtype=np.int64)
        else:
            is_write = np.fromiter((a[0] for a in block), dtype=bool, count=n)
            addr = np.fromiter((a[1] for a in block), dtype=np.int64, count=n)
            size = np.fromiter((a[2] for a in block), dtype=np.int64, count=n)
        if int(size.min()) < 1:
            return DetectorBackend.check_block(self, tid, block)

        # Expand accesses into their constituent byte addresses.
        total = int(size.sum())
        acc_idx = np.repeat(np.arange(n), size)
        seg_starts = np.cumsum(size) - size
        baddr = np.repeat(addr, size) + (np.arange(total) - np.repeat(seg_starts, size))

        unique, inv = np.unique(baddr, return_inverse=True)
        e0 = self.shadow.gather(unique).astype(np.uint32)

        # Effective-epoch overlay: first write index covering each byte.
        first_write = np.full(len(unique), n, dtype=np.int64)
        byte_is_write = is_write[acc_idx]
        np.minimum.at(first_write, inv[byte_is_write], acc_idx[byte_is_write])
        eff = np.where(
            first_write[inv] < acc_idx, np.uint32(new_epoch), e0[inv]
        )

        # The Figure-2 predicate, per byte, in one pass.
        e_tid = (eff >> np.uint32(self.layout.clock_bits)).astype(np.int64)
        e_tid &= self.layout.max_tid
        e_clk = (eff & np.uint32(self.layout.clock_max)).astype(np.int64)
        vc_clk = np.fromiter(
            (thread.vc.clock_of(t) for t in range(self.max_threads)),
            dtype=np.int64,
            count=self.max_threads,
        )
        in_range = e_tid < self.max_threads
        racy_byte = ~in_range  # foreign tids re-checked via the scalar path
        racy_byte |= e_clk > vc_clk[np.where(in_range, e_tid, 0)]

        racy_acc = np.zeros(n, dtype=bool)
        np.logical_or.at(racy_acc, acc_idx, racy_byte)
        danger = int(np.argmax(racy_acc)) if bool(racy_acc.any()) else n

        if danger > 0:
            stats = self.stats
            psz = size[:danger]
            pw = is_write[:danger]
            prefix_bytes = acc_idx < danger

            stats.reads += int((~pw).sum())
            stats.writes += int(pw.sum())
            stats.read_bytes += int(psz[~pw].sum())
            stats.written_bytes += int(psz[pw].sum())
            stats.accesses_ge_4_bytes += int((psz >= 4).sum())
            multi = psz > 1
            stats.multibyte_accesses += int(multi.sum())
            same_as_first = (eff == eff[seg_starts][acc_idx]).astype(np.int64)
            uniform = np.add.reduceat(same_as_first, seg_starts) == size
            stats.multibyte_uniform_epoch += int((multi & uniform[:danger]).sum())
            stats.epoch_comparisons += int(
                np.where(multi & uniform[:danger], 1, psz).sum()
            )

            # Shadow traffic the scalar loop would have generated: one
            # load per checked byte, one (always-successful — the block
            # runs unpreempted) CAS per first foreign-epoch write byte.
            updated = prefix_bytes & byte_is_write & (eff != np.uint32(new_epoch))
            n_updated = int(updated.sum())
            stats.epoch_updates += n_updated
            self.shadow.loads += int(psz.sum())
            self.shadow.stores += n_updated
            written = np.unique(baddr[prefix_bytes & byte_is_write])
            self.shadow.scatter(written, new_epoch)

        if danger < n:
            # Conflict minority: the genuine scalar path reproduces the
            # exact counter trail and exception the loop would have.
            try:
                if is_write[danger]:
                    self.check_write(tid, int(addr[danger]), int(size[danger]))
                else:
                    self.check_read(tid, int(addr[danger]), int(size[danger]))
            except Exception:
                self.block_progress = danger
                raise
            # Only reached when the predicate was conservative (foreign
            # tid); re-screen the rest of the block.
            try:
                self.check_block(
                    tid,
                    (
                        is_write[danger + 1 :],
                        addr[danger + 1 :],
                        size[danger + 1 :],
                    ),
                )
            except Exception:
                self.block_progress += danger + 1
                raise

    # -- recovery hooks -------------------------------------------------------
    #
    # Race-exception recovery (repro.runtime.recovery) leans on two
    # operations the epoch scheme makes cheap.  Both are conservative in
    # the missed-race direction only — exactly the trade the paper's own
    # rollover reset already makes — and neither touches the access-
    # statistics counters, so the cost model stays faithful to the
    # checks actually performed.

    def rollback_writes(self, tid: int, addresses: Iterable[int]) -> int:
        """Forget ``tid``'s open-epoch write metadata at ``addresses``.

        Called when recovery discards an SFR whose buffered stores never
        became visible: any epoch still carrying the faulting thread's
        current ``(tid, clock)`` pair describes a write that no longer
        exists.  Scrubbed locations read as epoch 0 afterwards (like a
        never-written byte).  Returns how many epochs were scrubbed.
        """
        thread = self._threads.get(tid)
        if thread is None:
            return 0
        mine = thread.vc.element(tid)
        shadow = self.shadow
        scrubbed = 0
        for address in addresses:
            if shadow.peek(address) == mine:
                shadow.clear(address)
                scrubbed += 1
        return scrubbed

    def absorb_epoch(self, tid: int, writer_tid: int, writer_clock: int) -> None:
        """Order a prior write before everything ``tid`` does from now on.

        Recovery *serializes* the two sides of a detected race: after the
        faulting SFR is discarded, the retried SFR must be ordered after
        the conflicting write, or the deterministic re-execution would
        re-raise the very same exception.  Joining the writer's clock
        into ``tid``'s vector clock is precisely the effect an acquire of
        a lock released by the writer would have had.
        """
        thread = self._threads.get(tid)
        if thread is None:
            return
        if thread.vc.clock_of(writer_tid) < writer_clock:
            thread.vc.set_clock(writer_tid, writer_clock)

    # -- rollover (Section 4.5) ---------------------------------------------

    def _advance(self, thread: ThreadState) -> None:
        """Advance a thread's own clock, handling imminent rollover."""
        if self.layout.would_rollover(thread.vc.clock_of(thread.tid)):
            self.rollover_pending = True
            if self.auto_rollover:
                self.reset_metadata()
            else:
                raise OverflowError(
                    f"thread {thread.tid} clock rollover pending and "
                    "auto_rollover is disabled; call reset_metadata()"
                )
        thread.vc.increment(thread.tid)

    def rollover_imminent(self, slack: int = 1) -> bool:
        """Whether any live thread is within ``slack`` ticks of rollover."""
        limit = self.layout.clock_max - slack
        return any(
            t.vc.clock_of(t.tid) >= limit for t in self._threads.values()
        )

    def reset_metadata(self) -> None:
        """Deterministic global reset of all epochs and vector clocks.

        The paper performs this when all threads are at synchronization
        operations; races spanning the reset are missed, but SFR
        isolation, write-atomicity and determinism are preserved because
        the reset lands on a deterministic SFR boundary.
        """
        self.shadow.reset()
        for thread in self._threads.values():
            thread.vc.reset()
            thread.vc.increment(thread.tid)
        for vc in self._lock_vcs.values():
            vc.reset()
        self.rollover_pending = False
        self.stats.rollovers += 1

    # -- helpers -------------------------------------------------------------

    def _thread(self, tid: int) -> ThreadState:
        try:
            return self._threads[tid]
        except KeyError:
            raise MetadataError(f"unknown or dead thread id {tid}") from None

    def _note_width(self, size: int) -> None:
        if size >= 4:
            self.stats.accesses_ge_4_bytes += 1
