"""Fixed-width epochs: the metadata word CLEAN keeps per shared byte.

An *epoch* packs the identity of the last write to a memory location into
one machine word (paper, Section 2.3 and 4.1):

    [ expanded : 1 ][ tid : T ][ clock : C ]

* ``clock`` is the *main element* of the writing thread's vector clock at
  the time of the write.
* ``tid`` is the writing thread's (reusable) identifier.
* ``expanded`` is a single bit used only by the hardware implementation
  (Section 5.3) to mark that the epoch's data line is in the *expanded*
  metadata state.  Software CLEAN leaves it zero.

The paper's default configuration is a 32-bit epoch with a 23-bit clock,
an 8-bit tid and the 1 reserved hardware bit.  The evaluation also uses a
28-bit-clock configuration (Table 1) and hypothetical 8-bit epochs
(Figure 11), so the layout is parametric.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "EpochLayout",
    "DEFAULT_LAYOUT",
    "WIDE_CLOCK_LAYOUT",
    "TINY_LAYOUT",
]


@dataclass(frozen=True)
class EpochLayout:
    """Bit-level layout of an epoch word.

    Parameters
    ----------
    clock_bits:
        Width of the scalar-clock component.  Clocks that would exceed
        ``clock_max`` trigger the rollover procedure (Section 4.5).
    tid_bits:
        Width of the thread-id component.  Bounds the number of threads
        that may run concurrently; ids of joined threads are reusable.
    reserve_expanded_bit:
        Whether one extra (highest) bit is reserved for the hardware
        compact/expanded line state (Section 5.3).
    """

    clock_bits: int = 23
    tid_bits: int = 8
    reserve_expanded_bit: bool = True

    def __post_init__(self) -> None:
        if self.clock_bits < 1:
            raise ValueError("clock_bits must be positive")
        if self.tid_bits < 1:
            raise ValueError("tid_bits must be positive")

    @property
    def width_bits(self) -> int:
        """Total width of the epoch word in bits."""
        return self.clock_bits + self.tid_bits + (1 if self.reserve_expanded_bit else 0)

    @property
    def width_bytes(self) -> int:
        """Width of the epoch word rounded up to whole bytes."""
        return (self.width_bits + 7) // 8

    @property
    def clock_max(self) -> int:
        """Largest representable clock value."""
        return (1 << self.clock_bits) - 1

    @property
    def max_tid(self) -> int:
        """Largest representable thread id."""
        return (1 << self.tid_bits) - 1

    @property
    def expanded_mask(self) -> int:
        """Bit mask of the hardware expanded bit (0 if not reserved)."""
        if not self.reserve_expanded_bit:
            return 0
        return 1 << (self.clock_bits + self.tid_bits)

    # -- packing ---------------------------------------------------------

    def pack(self, tid: int, clock: int) -> int:
        """Build an epoch word for ``tid`` at ``clock`` (expanded bit clear).

        This is the paper's ``EPOCH(tid, clock)`` macro.
        """
        if not 0 <= tid <= self.max_tid:
            raise ValueError(f"tid {tid} does not fit in {self.tid_bits} bits")
        if not 0 <= clock <= self.clock_max:
            raise ValueError(f"clock {clock} does not fit in {self.clock_bits} bits")
        return (tid << self.clock_bits) | clock

    def tid(self, epoch: int) -> int:
        """Extract the thread-id component (the paper's ``TID`` macro)."""
        return (epoch >> self.clock_bits) & self.max_tid

    def clock(self, epoch: int) -> int:
        """Extract the clock component (the paper's ``CLOCK`` macro)."""
        return epoch & self.clock_max

    def is_expanded(self, epoch: int) -> bool:
        """Whether the hardware expanded bit is set in ``epoch``."""
        return bool(epoch & self.expanded_mask)

    def set_expanded(self, epoch: int) -> int:
        """Return ``epoch`` with the expanded bit set."""
        if not self.reserve_expanded_bit:
            raise ValueError("layout reserves no expanded bit")
        return epoch | self.expanded_mask

    def clear_expanded(self, epoch: int) -> int:
        """Return ``epoch`` with the expanded bit cleared."""
        return epoch & ~self.expanded_mask

    def would_rollover(self, clock: int) -> bool:
        """Whether incrementing a clock at ``clock`` exceeds the layout."""
        return clock >= self.clock_max


#: The paper's default 32-bit epoch: 23-bit clock, 8-bit tid, 1 hw bit.
DEFAULT_LAYOUT = EpochLayout(clock_bits=23, tid_bits=8, reserve_expanded_bit=True)

#: The 28-bit-clock configuration used in the Table 1 rollover study.
WIDE_CLOCK_LAYOUT = EpochLayout(clock_bits=28, tid_bits=3, reserve_expanded_bit=True)

#: A hypothetical 8-bit epoch (Figure 11 upper-bound design).
TINY_LAYOUT = EpochLayout(clock_bits=5, tid_bits=3, reserve_expanded_bit=False)
