"""Vector clocks with epoch-valued elements.

CLEAN keeps one vector clock per running thread and per lock (Section
3.2); these are updated only on synchronization and thread create/join,
exactly as in classical vector-clock race detectors.

Following the software implementation described in Section 4.1, every
element of a vector clock is stored as an *epoch*: the element at index
``i`` holds ``EPOCH(i, clock_i)``.  The tid bits are redundant (the index
already identifies the thread) but they make an element directly
comparable with a location's epoch word — the single-comparison check at
lines 3 and 5 of Figure 2.
"""

from __future__ import annotations

from typing import Iterator, List

from .epoch import DEFAULT_LAYOUT, EpochLayout

__all__ = ["VectorClock"]


class VectorClock:
    """A fixed-arity vector of epoch-encoded scalar clocks."""

    __slots__ = ("layout", "_elems")

    def __init__(self, size: int, layout: EpochLayout = DEFAULT_LAYOUT) -> None:
        if size < 1:
            raise ValueError("vector clock needs at least one element")
        if size - 1 > layout.max_tid:
            raise ValueError(
                f"{size} threads do not fit in {layout.tid_bits} tid bits"
            )
        self.layout = layout
        self._elems: List[int] = [layout.pack(i, 0) for i in range(size)]

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elems)

    def __iter__(self) -> Iterator[int]:
        return iter(self._elems)

    def element(self, tid: int) -> int:
        """The epoch-encoded element for thread ``tid``."""
        return self._elems[tid]

    def clock_of(self, tid: int) -> int:
        """The scalar clock this vector holds for thread ``tid``."""
        return self.layout.clock(self._elems[tid])

    def clocks(self) -> List[int]:
        """All scalar clocks, by thread index."""
        return [self.layout.clock(e) for e in self._elems]

    # -- mutation ----------------------------------------------------------

    def set_clock(self, tid: int, clock: int) -> None:
        """Set thread ``tid``'s scalar clock to ``clock``."""
        self._elems[tid] = self.layout.pack(tid, clock)

    def increment(self, tid: int) -> int:
        """Advance thread ``tid``'s scalar clock by one; return the new clock.

        Raises :class:`OverflowError` if the clock no longer fits the
        layout — callers (the rollover controller) must reset metadata
        *before* this happens (Section 4.5).
        """
        new_clock = self.clock_of(tid) + 1
        if new_clock > self.layout.clock_max:
            raise OverflowError(
                f"clock of thread {tid} exceeded {self.layout.clock_bits} bits"
            )
        self._elems[tid] = self.layout.pack(tid, new_clock)
        return new_clock

    def join(self, other: "VectorClock") -> None:
        """Element-wise maximum (by clock component) with ``other``."""
        if other.layout is not self.layout and other.layout != self.layout:
            raise ValueError("cannot join vector clocks with different layouts")
        if len(other) != len(self):
            raise ValueError("cannot join vector clocks of different sizes")
        layout = self.layout
        for i, their in enumerate(other._elems):
            if layout.clock(their) > layout.clock(self._elems[i]):
                self._elems[i] = their

    def reset(self) -> None:
        """Zero every clock (used by the deterministic rollover reset)."""
        self._elems = [self.layout.pack(i, 0) for i in range(len(self._elems))]

    def copy(self) -> "VectorClock":
        """An independent copy of this vector clock."""
        dup = VectorClock.__new__(VectorClock)
        dup.layout = self.layout
        dup._elems = list(self._elems)
        return dup

    # -- comparison --------------------------------------------------------

    def happens_before(self, other: "VectorClock") -> bool:
        """Whether every clock in ``self`` is <= its counterpart in ``other``."""
        layout = self.layout
        return all(
            layout.clock(mine) <= layout.clock(theirs)
            for mine, theirs in zip(self._elems, other._elems)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return self.layout == other.layout and self._elems == other._elems

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.layout, tuple(self._elems)))

    def __repr__(self) -> str:
        return f"VectorClock({self.clocks()})"
