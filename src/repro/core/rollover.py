"""Clock-rollover policy and accounting (Section 4.5).

The clock component of an epoch is narrow (23 bits by default), and it is
incremented on every synchronization operation, so long-running programs
*will* exhaust it.  CLEAN prevents the resulting correctness problem by
halting the execution at the next *globally deterministic point* — when
every thread is at a synchronization operation — resetting all epochs and
vector clocks, and resuming.

This module provides the policy side: when a reset should be requested,
and a record of every reset so the Table-1 experiment (rollovers per
second, cost of resets) can be regenerated.  The mechanism side (actually
zeroing metadata) lives in
:meth:`repro.core.detector.CleanDetector.reset_metadata`; the
coordination side (waiting for all threads to reach synchronization)
lives in the runtime integration, where synchronization operations are
already the only points at which the deterministic scheduler commits
sync order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .detector import CleanDetector

__all__ = ["RolloverEvent", "RolloverPolicy"]


@dataclass(frozen=True)
class RolloverEvent:
    """One metadata reset: when it happened and what it cost.

    ``sync_index`` is the global ordinal of the synchronization operation
    at which the reset landed (a deterministic quantity under Kendo);
    ``wait_cost`` and ``reset_cost`` are the modelled costs, in the cost
    model's abstract time units, of draining threads to the deterministic
    point and of remapping the epoch pages.
    """

    sync_index: int
    wait_cost: float
    reset_cost: float


@dataclass
class RolloverPolicy:
    """Decides when to request a deterministic metadata reset.

    Parameters
    ----------
    slack:
        Request a reset once any thread's clock is within ``slack``
        increments of the maximum.  A slack larger than the number of
        threads guarantees no increment can overflow while the request
        propagates to the next globally deterministic point.
    reset_cost:
        Modelled cost of one reset (page remapping is cheap; the paper
        measures the total impact at <= 2.4% of execution time).
    wait_cost_per_thread:
        Modelled cost of draining one thread to the deterministic point.
    """

    slack: int = 16
    reset_cost: float = 100.0
    wait_cost_per_thread: float = 50.0
    events: List[RolloverEvent] = field(default_factory=list)

    def should_reset(self, detector: CleanDetector) -> bool:
        """Whether the detector is close enough to rollover to reset now."""
        return detector.rollover_pending or detector.rollover_imminent(self.slack)

    def perform_reset(self, detector: CleanDetector, sync_index: int) -> RolloverEvent:
        """Reset the detector's metadata and record the event."""
        n_threads = len(detector.live_threads())
        detector.reset_metadata()
        event = RolloverEvent(
            sync_index=sync_index,
            wait_cost=self.wait_cost_per_thread * n_threads,
            reset_cost=self.reset_cost,
        )
        self.events.append(event)
        return event

    @property
    def total_cost(self) -> float:
        """Total modelled cost of all resets so far."""
        return sum(e.wait_cost + e.reset_cost for e in self.events)

    @property
    def count(self) -> int:
        """Number of resets performed."""
        return len(self.events)
