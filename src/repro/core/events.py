"""The unified access-event core of the hot path.

Every experiment funnels through the same pipeline — scheduler ->
monitor hooks -> detector check — and this module is its shared
vocabulary:

* :class:`AccessEvent` — one compact, slotted record per memory
  operation, built **once** by the scheduler and handed to every
  event-aware monitor (instead of each monitor re-deriving tid /
  address / size / privacy from positional hook arguments).  It also
  carries the per-thread SFR ordinal and the thread's deterministic
  clock, so region trackers and tracers no longer maintain parallel
  bookkeeping.
* :class:`DetectorBackend` — the protocol every race-detection engine
  implements (CLEAN and all three baselines), so the runtime needs
  exactly one adapter (:class:`~repro.clean.CleanMonitor`) regardless
  of which engine is plugged in.
* :class:`VectorClockBackend` — the thread/lock vector-clock lifecycle
  (fork/join/acquire/release) every happens-before engine shares;
  previously duplicated between the CLEAN detector and
  ``baselines/common.py``.
* :func:`stable_sync_id` — stable, identity-free keys for per-sync
  vector clocks, so record/replay and pickled traces cannot alias (or
  lose) a lock just because the object was reconstructed.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .epoch import DEFAULT_LAYOUT, EpochLayout
from .exceptions import MetadataError, TooManyThreadsError
from .vector_clock import VectorClock

__all__ = [
    "AccessEvent",
    "DetectorBackend",
    "VectorClockBackend",
    "block_items",
    "stable_sync_id",
]


def block_items(block: object) -> Sequence[Tuple[bool, int, int]]:
    """Normalize an access block to per-item ``(is_write, address, size)``.

    Blocks travel in two shapes: a sequence of per-access tuples, or
    *columnar* — a 3-tuple of equal-length numpy arrays, the zero-copy
    form the batch lane hands between monitor and backend.  Scalar code
    paths call this at their boundary; tuple sequences pass through
    untouched.
    """
    if (
        type(block) is tuple
        and len(block) == 3
        and hasattr(block[0], "tolist")
    ):
        is_write, address, size = block
        return list(zip(is_write.tolist(), address.tolist(), size.tolist()))
    return block


class AccessEvent:
    """One memory operation, as observed by the monitor stack.

    Built by the scheduler exactly once per completed ``Read``/``Write``
    (and once per half of an ``AtomicRMW``), then passed to every
    monitor that overrides the event hooks
    (:meth:`~repro.runtime.scheduler.ExecutionMonitor.before_access` /
    :meth:`~repro.runtime.scheduler.ExecutionMonitor.after_access`).

    The instance is mutable only so the scheduler can fill ``value`` in
    between the *before* and *after* phases of a read; monitors must
    treat it as read-only and must not retain it past the hook call —
    copy the fields out if you need them later.
    """

    __slots__ = ("tid", "address", "size", "is_write", "private", "value",
                 "region", "clock")

    def __init__(
        self,
        tid: int,
        address: int,
        size: int,
        is_write: bool,
        private: bool,
        value: Optional[int] = None,
        region: int = 0,
        clock: int = 0,
    ) -> None:
        self.tid = tid
        self.address = address
        self.size = size
        self.is_write = is_write
        self.private = private
        #: Loaded/stored integer value; ``None`` before a read completes.
        self.value = value
        #: Per-thread SFR ordinal (bumps at every sync commit); pair it
        #: with ``tid`` for a globally unique region id.
        self.region = region
        #: The thread's deterministic counter when the event fired.
        self.clock = clock

    def __repr__(self) -> str:  # debugging aid only; never on the hot path
        kind = "W" if self.is_write else "R"
        return (
            f"AccessEvent({kind} tid={self.tid} addr={self.address:#x} "
            f"size={self.size} private={self.private} region={self.region})"
        )


def stable_sync_id(sync_key: object) -> Hashable:
    """A stable, identity-free key for a synchronization object.

    Runtime sync objects (:class:`~repro.runtime.sync.Lock` and friends)
    carry a stable ``name``; that name is the key.  Tuples (barrier
    episodes are keyed ``(barrier, generation)``) map element-wise.
    Plain hashable tokens (strings, ints) — the form unit tests and
    standalone detector users pass — are already stable and pass
    through unchanged.
    """
    name = getattr(sync_key, "name", None)
    if isinstance(name, str):
        return name
    if isinstance(sync_key, tuple):
        return tuple(stable_sync_id(part) for part in sync_key)
    return sync_key


class DetectorBackend:
    """Protocol of a pluggable race-detection engine.

    The runtime adapter (:class:`~repro.clean.CleanMonitor`) drives any
    backend through exactly this surface: thread lifecycle
    (:meth:`spawn_root` / :meth:`fork` / :meth:`join`), happens-before
    edges (:meth:`acquire` / :meth:`release`) and the per-access checks
    (:meth:`check_read` / :meth:`check_write`).  A backend signals a
    race by raising :class:`~repro.core.exceptions.RaceException` from a
    check (or records it, in ``record_only`` engines).
    """

    #: Whether the adapter's same-epoch fast path is verdict-invariant
    #: for this backend: a re-access of bytes the same thread wrote in
    #: its current epoch may skip :meth:`check_read`/:meth:`check_write`
    #: entirely (the engine's :meth:`note_same_epoch` keeps statistics
    #: exact).  Only engines whose checks neither update metadata nor
    #: change verdicts on such accesses may set this.
    same_epoch_filter = False

    #: After :meth:`check_block` raises: how many leading accesses of
    #: that block completed before the raising one.  Batch adapters use
    #: it to keep their own per-access accounting exact across a race.
    block_progress = 0

    # -- thread lifecycle ---------------------------------------------------

    def spawn_root(self) -> int:
        """Create the initial thread; returns its tid."""
        raise NotImplementedError

    def fork(self, parent_tid: int, child_tid: Optional[int] = None) -> int:
        """Create a child ordered after the parent's past; returns its tid."""
        raise NotImplementedError

    def join(self, parent_tid: int, child_tid: int) -> None:
        """Join the child; its past is ordered before the parent's future."""
        raise NotImplementedError

    # -- synchronization ----------------------------------------------------

    def release(self, tid: int, sync_key: object) -> None:
        """Publish the thread's past into the sync object's vector clock."""
        raise NotImplementedError

    def acquire(self, tid: int, sync_key: object) -> None:
        """Order the thread after the sync object's published past."""
        raise NotImplementedError

    # -- the per-access checks ----------------------------------------------

    def check_read(self, tid: int, address: int, size: int = 1) -> None:
        """Race-check a ``size``-byte read at ``address`` by ``tid``."""
        raise NotImplementedError

    def check_write(self, tid: int, address: int, size: int = 1) -> None:
        """Race-check (and record) a ``size``-byte write by ``tid``."""
        raise NotImplementedError

    def note_same_epoch(
        self, tid: int, address: int, size: int, is_read: bool
    ) -> None:
        """Account an access the same-epoch fast path skipped.

        Backends that opt into ``same_epoch_filter`` override this to
        mirror exactly the statistics the full check would have
        recorded, so cost models and figures are invariant under the
        filter.  The default is a no-op (and the filter stays off).
        """

    def note_same_epoch_block(
        self, tid: int, block: Sequence[Tuple[bool, int, int]]
    ) -> None:
        """Account a batch of accesses the same-epoch fast path skipped.

        ``block`` items are ``(is_write, address, size)`` — per-access
        tuples or the columnar form (see :func:`block_items`).  The
        default loops :meth:`note_same_epoch`; backends with counter
        arithmetic cheap enough to aggregate override this.
        """
        note = self.note_same_epoch
        for is_write, address, size in block_items(block):
            note(tid, address, size, is_read=not is_write)

    def check_block(
        self, tid: int, block: Sequence[Tuple[bool, int, int]]
    ) -> None:
        """Race-check a batch of same-thread accesses in program order.

        ``block`` is a sequence of ``(is_write, address, size)`` tuples
        or the columnar array form (see :func:`block_items`) — typically
        one synchronization-free region's worth of accesses.  The
        default simply loops over :meth:`check_read` /
        :meth:`check_write`, so every backend is batch-correct for free;
        engines with a vectorized batch path override this.  Semantics
        are identical to the scalar loop: checks happen in order and the
        first race raises out of the block.
        """
        self.block_progress = 0
        check_read = self.check_read
        check_write = self.check_write
        for index, (is_write, address, size) in enumerate(block_items(block)):
            try:
                if is_write:
                    check_write(tid, address, size)
                else:
                    check_read(tid, address, size)
            except Exception:
                self.block_progress = index
                raise


class VectorClockBackend(DetectorBackend):
    """Thread/lock vector clocks plus the fork/join/acquire/release rules.

    Every precise dynamic detector keeps this same state and differs
    only in its per-location metadata and check (paper Section 2.3); the
    CLEAN detector and all three baselines build on it.  Per-sync vector
    clocks are keyed by :func:`stable_sync_id`, never by object
    identity.
    """

    def __init__(
        self, max_threads: int = 8, layout: EpochLayout = DEFAULT_LAYOUT
    ) -> None:
        if max_threads - 1 > layout.max_tid:
            raise TooManyThreadsError(
                f"{max_threads} threads need more than {layout.tid_bits} tid bits"
            )
        self.layout = layout
        self.max_threads = max_threads
        self._vcs: Dict[int, VectorClock] = {}
        self._free_tids: List[int] = list(range(max_threads - 1, -1, -1))
        self._lock_vcs: Dict[Hashable, VectorClock] = {}
        self.sync_ops = 0

    # -- thread lifecycle ---------------------------------------------------

    def spawn_root(self) -> int:
        """Create the initial thread (tid 0)."""
        if self._vcs:
            raise MetadataError("root thread already exists")
        tid = self._free_tids.pop()
        self._vcs[tid] = VectorClock(self.max_threads, self.layout)
        self._vcs[tid].increment(tid)
        return tid

    def fork(self, parent_tid: int, child_tid: Optional[int] = None) -> int:
        """Create a child ordered after the parent's past."""
        parent = self.vc(parent_tid)
        if not self._free_tids:
            raise TooManyThreadsError(
                f"more than {self.max_threads} concurrently live threads"
            )
        if child_tid is None:
            tid = self._free_tids.pop()
        else:
            if child_tid not in self._free_tids:
                raise MetadataError(f"requested child tid {child_tid} is not free")
            self._free_tids.remove(child_tid)
            tid = child_tid
        child = parent.copy()
        self._vcs[tid] = child
        child.increment(tid)
        parent.increment(parent_tid)
        return tid

    def join(self, parent_tid: int, child_tid: int) -> None:
        """Join the child; its past is ordered before the parent's future."""
        parent = self.vc(parent_tid)
        child = self.vc(child_tid)
        child.increment(child_tid)
        parent.join(child)
        del self._vcs[child_tid]
        self._free_tids.append(child_tid)

    # -- synchronization ----------------------------------------------------

    def release(self, tid: int, sync_key: object) -> None:
        """Merge the thread's VC into the sync object's; advance the thread."""
        key = stable_sync_id(sync_key)
        vc = self._lock_vcs.get(key)
        if vc is None:
            vc = VectorClock(self.max_threads, self.layout)
            self._lock_vcs[key] = vc
        thread_vc = self.vc(tid)
        vc.join(thread_vc)
        thread_vc.increment(tid)
        self.sync_ops += 1

    def acquire(self, tid: int, sync_key: object) -> None:
        """Merge the sync object's VC into the thread's."""
        vc = self._lock_vcs.get(stable_sync_id(sync_key))
        if vc is not None:
            self.vc(tid).join(vc)
        self.sync_ops += 1

    # -- accessors ----------------------------------------------------------

    def vc(self, tid: int) -> VectorClock:
        """The vector clock of live thread ``tid``."""
        try:
            return self._vcs[tid]
        except KeyError:
            raise MetadataError(f"unknown or dead thread id {tid}") from None

    def epoch_of(self, tid: int) -> int:
        """The thread's current epoch ``EPOCH(tid, vc[tid])``."""
        return self.vc(tid).element(tid)

    def live_threads(self) -> List[int]:
        """Tids of all live threads."""
        return sorted(self._vcs)
