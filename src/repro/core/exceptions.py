"""Exception vocabulary of the CLEAN execution model.

CLEAN's defining behaviour is to *stop* an execution with a race
exception if and only if a write-after-write (WAW) or a read-after-write
(RAW) race occurs (Section 3.1).  Write-after-read (WAR) races are, by
design, never reported.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CleanError",
    "RaceException",
    "WawRaceException",
    "RawRaceException",
    "WarRaceException",
    "MetadataError",
    "TooManyThreadsError",
    "DeadlockError",
]


class CleanError(Exception):
    """Base class for every error raised by this library."""


class RaceException(CleanError):
    """A WAW or RAW data race was detected; the execution must stop.

    Attributes mirror what a hardware race exception would report: the
    faulting address, the access that trapped, and the epoch of the
    conflicting prior write.
    """

    #: ``"WAW"`` or ``"RAW"`` — set by the concrete subclasses.
    kind: str = "?"

    def __init__(
        self,
        address: int,
        accessing_tid: int,
        prior_writer_tid: int,
        prior_writer_clock: int,
        size: int = 1,
        region_id: Optional[int] = None,
    ) -> None:
        self.address = address
        self.accessing_tid = accessing_tid
        self.prior_writer_tid = prior_writer_tid
        self.prior_writer_clock = prior_writer_clock
        self.size = size
        self.region_id = region_id
        super().__init__(
            f"{self.kind} race at address {address:#x} (size {size}): thread "
            f"{accessing_tid} conflicts with write by thread {prior_writer_tid} "
            f"at clock {prior_writer_clock}"
        )


class WawRaceException(RaceException):
    """A write raced with a prior write it is not ordered after."""

    kind = "WAW"


class RawRaceException(RaceException):
    """A read raced with a prior write it is not ordered after."""

    kind = "RAW"


class WarRaceException(RaceException):
    """A write raced with a prior read (reported only by the *baseline*
    precise detectors — CLEAN deliberately never detects WAR races)."""

    kind = "WAR"


class MetadataError(CleanError):
    """Internal inconsistency in epoch metadata (never expected)."""


class TooManyThreadsError(CleanError):
    """More live threads than the epoch tid field can represent."""


class DeadlockError(CleanError):
    """The cooperative scheduler found every runnable thread blocked."""

    def __init__(self, blocked: dict) -> None:
        self.blocked = dict(blocked)
        detail = ", ".join(f"T{t}: {why}" for t, why in sorted(self.blocked.items()))
        super().__init__(f"deadlock: all threads blocked ({detail})")
