"""CLEAN's core contribution: precise WAW/RAW race detection via epochs.

Public surface:

* :class:`~repro.core.epoch.EpochLayout` and the stock layouts
  (:data:`DEFAULT_LAYOUT`, :data:`WIDE_CLOCK_LAYOUT`, :data:`TINY_LAYOUT`)
* :class:`~repro.core.vector_clock.VectorClock`
* :class:`~repro.core.shadow.SparseShadow` / :class:`DenseShadow`
* :class:`~repro.core.detector.CleanDetector` — the Figure-2 check
* :class:`~repro.core.rollover.RolloverPolicy`
* the exception vocabulary (:class:`RaceException` and friends)
"""

from .detector import AccessStats, CleanDetector, ThreadState
from .epoch import DEFAULT_LAYOUT, TINY_LAYOUT, WIDE_CLOCK_LAYOUT, EpochLayout
from .events import (
    AccessEvent,
    DetectorBackend,
    VectorClockBackend,
    stable_sync_id,
)
from .exceptions import (
    CleanError,
    DeadlockError,
    MetadataError,
    RaceException,
    RawRaceException,
    TooManyThreadsError,
    WawRaceException,
)
from .rollover import RolloverEvent, RolloverPolicy
from .shadow import DenseShadow, SparseShadow
from .vector_clock import VectorClock

__all__ = [
    "AccessEvent",
    "AccessStats",
    "CleanDetector",
    "DetectorBackend",
    "VectorClockBackend",
    "stable_sync_id",
    "ThreadState",
    "EpochLayout",
    "DEFAULT_LAYOUT",
    "WIDE_CLOCK_LAYOUT",
    "TINY_LAYOUT",
    "VectorClock",
    "SparseShadow",
    "DenseShadow",
    "RolloverPolicy",
    "RolloverEvent",
    "CleanError",
    "RaceException",
    "RawRaceException",
    "WawRaceException",
    "MetadataError",
    "TooManyThreadsError",
    "DeadlockError",
]
