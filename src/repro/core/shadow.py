"""Epoch shadow memory: one epoch word per shared program byte.

Software CLEAN (Section 4.2) reserves a fixed region of the address space
and places the epoch for data byte ``x`` at ``epochs_base + 4 * x``.  The
layout is fixed because CLEAN never inflates an epoch into a vector clock,
so ``EPOCH_ADDRESS`` is a single shift-and-add.

Two interchangeable stores are provided:

* :class:`SparseShadow` — a hash map, pay-as-you-go, mirroring the paper's
  "only accessed epochs are ever backed by physical memory" property.
* :class:`DenseShadow` — a flat :mod:`numpy` array over a fixed address
  window, for workloads with a known footprint (faster, and the natural
  model for the hardware simulator).

Both support the O(1) *reset* used by the rollover procedure (Section
4.5): the paper remaps epoch pages to the zero page instead of zeroing
memory; we swap the underlying store for an empty/zeroed one and count the
reset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["SparseShadow", "DenseShadow", "EPOCH_BYTES_PER_DATA_BYTE"]

#: The paper's software layout dedicates 4 metadata bytes per data byte.
EPOCH_BYTES_PER_DATA_BYTE = 4


class SparseShadow:
    """Hash-map epoch store; unwritten locations read as epoch 0."""

    __slots__ = ("_epochs", "resets", "stores", "loads")

    def __init__(self) -> None:
        self._epochs: Dict[int, int] = {}
        self.resets = 0
        self.stores = 0
        self.loads = 0

    def load(self, address: int) -> int:
        """Epoch of the byte at ``address`` (0 if never written)."""
        self.loads += 1
        return self._epochs.get(address, 0)

    def store(self, address: int, epoch: int) -> None:
        """Unconditionally set the epoch of the byte at ``address``."""
        self.stores += 1
        self._epochs[address] = epoch

    def compare_and_swap(self, address: int, expected: int, new: int) -> bool:
        """Atomically replace ``expected`` with ``new``; the CAS of §4.3.

        Returns ``False`` (and leaves the epoch untouched) when a
        concurrent check already replaced the epoch — which software
        CLEAN interprets as a WAW race.
        """
        current = self._epochs.get(address, 0)
        if current != expected:
            return False
        self.stores += 1
        self._epochs[address] = new
        return True

    def load_range(self, address: int, size: int) -> List[int]:
        """Epochs of ``size`` consecutive bytes starting at ``address``."""
        get = self._epochs.get
        self.loads += size
        return [get(address + i, 0) for i in range(size)]

    def peek(self, address: int) -> int:
        """Epoch at ``address`` without touching the access counters.

        Recovery-path inspection only — never part of a race check, so
        it must not skew the cost-model statistics.
        """
        return self._epochs.get(address, 0)

    def clear(self, address: int) -> None:
        """Forget the epoch at ``address`` (reads as 0 afterwards).

        Recovery uses this to scrub the metadata of discarded SFR
        writes; uncounted for the same reason as :meth:`peek`.
        """
        self._epochs.pop(address, None)

    def store_range(self, address: int, size: int, epoch: int) -> None:
        """Set ``size`` consecutive bytes' epochs to the same ``epoch``."""
        self.stores += size
        for i in range(size):
            self._epochs[address + i] = epoch

    def reset(self) -> None:
        """O(1)-style global reset (rollover): drop every epoch."""
        self._epochs = {}
        self.resets += 1

    @property
    def touched_bytes(self) -> int:
        """Number of data bytes currently holding a non-default epoch."""
        return len(self._epochs)

    @property
    def metadata_bytes(self) -> int:
        """Metadata footprint under the paper's 4-bytes-per-byte layout."""
        return self.touched_bytes * EPOCH_BYTES_PER_DATA_BYTE

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(address, epoch)`` pairs with explicit epochs."""
        return self._epochs.items()


class DenseShadow:
    """Flat array epoch store over the window ``[base, base + size)``."""

    __slots__ = ("base", "size", "_epochs", "resets", "stores", "loads")

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("shadow window must be non-empty")
        self.base = base
        self.size = size
        self._epochs = np.zeros(size, dtype=np.uint32)
        self.resets = 0
        self.stores = 0
        self.loads = 0

    def _index(self, address: int) -> int:
        offset = address - self.base
        if not 0 <= offset < self.size:
            raise IndexError(
                f"address {address:#x} outside shadow window "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def load(self, address: int) -> int:
        self.loads += 1
        return int(self._epochs[self._index(address)])

    def store(self, address: int, epoch: int) -> None:
        self.stores += 1
        self._epochs[self._index(address)] = epoch

    def compare_and_swap(self, address: int, expected: int, new: int) -> bool:
        idx = self._index(address)
        if int(self._epochs[idx]) != expected:
            return False
        self.stores += 1
        self._epochs[idx] = new
        return True

    def load_range(self, address: int, size: int) -> List[int]:
        start = self._index(address)
        self._index(address + size - 1)
        self.loads += size
        return [int(e) for e in self._epochs[start : start + size]]

    def peek(self, address: int) -> int:
        """Uncounted epoch inspection (see :meth:`SparseShadow.peek`)."""
        return int(self._epochs[self._index(address)])

    def clear(self, address: int) -> None:
        """Uncounted epoch scrub (see :meth:`SparseShadow.clear`)."""
        self._epochs[self._index(address)] = 0

    def store_range(self, address: int, size: int, epoch: int) -> None:
        start = self._index(address)
        self._index(address + size - 1)
        self.stores += size
        self._epochs[start : start + size] = epoch

    def reset(self) -> None:
        self._epochs = np.zeros(self.size, dtype=np.uint32)
        self.resets += 1

    @property
    def touched_bytes(self) -> int:
        return int(np.count_nonzero(self._epochs))

    @property
    def metadata_bytes(self) -> int:
        return self.touched_bytes * EPOCH_BYTES_PER_DATA_BYTE

    def items(self) -> Iterable[Tuple[int, int]]:
        nz = np.nonzero(self._epochs)[0]
        return ((self.base + int(i), int(self._epochs[i])) for i in nz)
