"""Epoch shadow memory: one epoch word per shared program byte.

Software CLEAN (Section 4.2) reserves a fixed region of the address space
and places the epoch for data byte ``x`` at ``epochs_base + 4 * x``.  The
layout is fixed because CLEAN never inflates an epoch into a vector clock,
so ``EPOCH_ADDRESS`` is a single shift-and-add.

Two interchangeable stores are provided:

* :class:`SparseShadow` — a hash map, pay-as-you-go, mirroring the paper's
  "only accessed epochs are ever backed by physical memory" property.
* :class:`DenseShadow` — a flat :mod:`numpy` array over a fixed address
  window, for workloads with a known footprint (faster, and the natural
  model for the hardware simulator).

Both support the O(1) *reset* used by the rollover procedure (Section
4.5): the paper remaps epoch pages to the zero page instead of zeroing
memory; we swap the underlying store for an empty/zeroed one and count the
reset.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = [
    "SparseShadow",
    "DenseShadow",
    "FlatShadow",
    "EPOCH_BYTES_PER_DATA_BYTE",
]

#: The paper's software layout dedicates 4 metadata bytes per data byte.
EPOCH_BYTES_PER_DATA_BYTE = 4


class SparseShadow:
    """Hash-map epoch store; unwritten locations read as epoch 0."""

    __slots__ = ("_epochs", "resets", "stores", "loads")

    def __init__(self) -> None:
        self._epochs: Dict[int, int] = {}
        self.resets = 0
        self.stores = 0
        self.loads = 0

    def load(self, address: int) -> int:
        """Epoch of the byte at ``address`` (0 if never written)."""
        self.loads += 1
        return self._epochs.get(address, 0)

    def store(self, address: int, epoch: int) -> None:
        """Unconditionally set the epoch of the byte at ``address``."""
        self.stores += 1
        self._epochs[address] = epoch

    def compare_and_swap(self, address: int, expected: int, new: int) -> bool:
        """Atomically replace ``expected`` with ``new``; the CAS of §4.3.

        Returns ``False`` (and leaves the epoch untouched) when a
        concurrent check already replaced the epoch — which software
        CLEAN interprets as a WAW race.
        """
        current = self._epochs.get(address, 0)
        if current != expected:
            return False
        self.stores += 1
        self._epochs[address] = new
        return True

    def load_range(self, address: int, size: int) -> List[int]:
        """Epochs of ``size`` consecutive bytes starting at ``address``."""
        get = self._epochs.get
        self.loads += size
        return [get(address + i, 0) for i in range(size)]

    def peek(self, address: int) -> int:
        """Epoch at ``address`` without touching the access counters.

        Recovery-path inspection only — never part of a race check, so
        it must not skew the cost-model statistics.
        """
        return self._epochs.get(address, 0)

    def clear(self, address: int) -> None:
        """Forget the epoch at ``address`` (reads as 0 afterwards).

        Recovery uses this to scrub the metadata of discarded SFR
        writes; uncounted for the same reason as :meth:`peek`.
        """
        self._epochs.pop(address, None)

    def store_range(self, address: int, size: int, epoch: int) -> None:
        """Set ``size`` consecutive bytes' epochs to the same ``epoch``."""
        self.stores += size
        for i in range(size):
            self._epochs[address + i] = epoch

    def reset(self) -> None:
        """O(1)-style global reset (rollover): drop every epoch."""
        self._epochs = {}
        self.resets += 1

    @property
    def touched_bytes(self) -> int:
        """Number of data bytes currently holding a non-default epoch."""
        return len(self._epochs)

    @property
    def metadata_bytes(self) -> int:
        """Metadata footprint under the paper's 4-bytes-per-byte layout."""
        return self.touched_bytes * EPOCH_BYTES_PER_DATA_BYTE

    def items(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(address, epoch)`` pairs with explicit epochs."""
        return self._epochs.items()


class FlatShadow:
    """Growable flat-array epoch store: the batch-first hot path.

    Generalizes :class:`DenseShadow` to an unbounded address space: a
    flat ``uint32`` array covers the low, dense window the bump
    allocator hands out (growing geometrically on demand), and a spill
    dict absorbs the rare address outside it, so the store is a drop-in
    replacement for :class:`SparseShadow` with array speed.

    The scalar surface (``load``/``store``/``load_range``/…) keeps the
    exact counter semantics of the other stores.  The *batch* surface —
    :meth:`gather` / :meth:`scatter` / :meth:`scatter_where` — is
    deliberately **uncounted**: vectorized callers account ``loads`` and
    ``stores`` explicitly for exactly the bytes the scalar path would
    have touched, so the counters never drift under batching.

    Reset stays O(1)-style: a fresh zero array is calloc-backed (pages
    materialize lazily), mirroring the paper's zero-page remap.
    """

    __slots__ = ("_epochs", "_window", "_spill", "resets", "stores", "loads")

    #: Addresses below this live in the flat array; beyond it, the spill
    #: dict (64 MiB of epoch words for 16 MiB of data bytes).
    DEFAULT_WINDOW = 1 << 24

    def __init__(self, capacity: int = 4096, window: int = DEFAULT_WINDOW) -> None:
        if capacity <= 0:
            raise ValueError("initial capacity must be positive")
        self._window = window
        self._epochs = np.zeros(min(capacity, window), dtype=np.uint32)
        self._spill: Dict[int, int] = {}
        self.resets = 0
        self.stores = 0
        self.loads = 0

    # -- growth -------------------------------------------------------------

    def _ensure(self, upto: int) -> None:
        """Grow the flat array to cover addresses ``[0, upto)``."""
        if upto <= len(self._epochs):
            return
        capacity = len(self._epochs)
        while capacity < upto:
            capacity *= 2
        capacity = min(capacity, self._window)
        grown = np.zeros(capacity, dtype=np.uint32)
        grown[: len(self._epochs)] = self._epochs
        self._epochs = grown

    def _in_window(self, address: int) -> bool:
        return 0 <= address < self._window

    # -- scalar surface (counted, same semantics as the other stores) -------

    def load(self, address: int) -> int:
        self.loads += 1
        return self.peek(address)

    def store(self, address: int, epoch: int) -> None:
        self.stores += 1
        if self._in_window(address):
            self._ensure(address + 1)
            self._epochs[address] = epoch
        else:
            self._spill[address] = epoch

    def compare_and_swap(self, address: int, expected: int, new: int) -> bool:
        if self.peek(address) != expected:
            return False
        self.stores += 1
        if self._in_window(address):
            self._ensure(address + 1)
            self._epochs[address] = new
        else:
            self._spill[address] = new
        return True

    def load_range(self, address: int, size: int) -> List[int]:
        self.loads += size
        if self._in_window(address) and self._in_window(address + size - 1):
            self._ensure(address + size)
            return [int(e) for e in self._epochs[address : address + size]]
        return [self.peek(address + i) for i in range(size)]

    def peek(self, address: int) -> int:
        """Uncounted epoch inspection (see :meth:`SparseShadow.peek`)."""
        if self._in_window(address):
            if address < len(self._epochs):
                return int(self._epochs[address])
            return 0
        return self._spill.get(address, 0)

    def clear(self, address: int) -> None:
        """Uncounted epoch scrub (see :meth:`SparseShadow.clear`)."""
        if self._in_window(address):
            if address < len(self._epochs):
                self._epochs[address] = 0
        else:
            self._spill.pop(address, None)

    def store_range(self, address: int, size: int, epoch: int) -> None:
        self.stores += size
        if self._in_window(address) and self._in_window(address + size - 1):
            self._ensure(address + size)
            self._epochs[address : address + size] = epoch
        else:
            for i in range(size):
                if self._in_window(address + i):
                    self._ensure(address + i + 1)
                    self._epochs[address + i] = epoch
                else:
                    self._spill[address + i] = epoch

    def reset(self) -> None:
        """O(1)-style global reset (rollover): swap in a zero page."""
        self._epochs = np.zeros(len(self._epochs), dtype=np.uint32)
        self._spill = {}
        self.resets += 1

    # -- batch surface (uncounted; batch callers account explicitly) --------

    def gather(self, addresses: "np.ndarray") -> "np.ndarray":
        """Epochs at ``addresses`` (a ``uint64`` array), uncounted.

        Vectorized callers bump ``loads`` themselves for exactly the
        bytes the scalar path would have loaded.
        """
        if addresses.size == 0:
            return np.zeros(0, dtype=np.uint32)
        hi = int(addresses.max())
        if hi < self._window and int(addresses.min()) >= 0:
            self._ensure(hi + 1)
            return self._epochs[addresses]
        return np.fromiter(
            (self.peek(int(a)) for a in addresses),
            dtype=np.uint32,
            count=addresses.size,
        )

    def scatter(self, addresses: "np.ndarray", epoch: int) -> None:
        """Set the epochs at ``addresses`` to ``epoch``, uncounted."""
        if addresses.size == 0:
            return
        hi = int(addresses.max())
        if hi < self._window and int(addresses.min()) >= 0:
            self._ensure(hi + 1)
            self._epochs[addresses] = epoch
            return
        for a in addresses:
            address = int(a)
            if self._in_window(address):
                self._ensure(address + 1)
                self._epochs[address] = epoch
            else:
                self._spill[address] = epoch

    # -- introspection ------------------------------------------------------

    @property
    def touched_bytes(self) -> int:
        return int(np.count_nonzero(self._epochs)) + len(self._spill)

    @property
    def metadata_bytes(self) -> int:
        return self.touched_bytes * EPOCH_BYTES_PER_DATA_BYTE

    def items(self) -> Iterable[Tuple[int, int]]:
        nz = np.nonzero(self._epochs)[0]
        for i in nz:
            yield int(i), int(self._epochs[i])
        for address, epoch in self._spill.items():
            yield address, epoch


class DenseShadow:
    """Flat array epoch store over the window ``[base, base + size)``."""

    __slots__ = ("base", "size", "_epochs", "resets", "stores", "loads")

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("shadow window must be non-empty")
        self.base = base
        self.size = size
        self._epochs = np.zeros(size, dtype=np.uint32)
        self.resets = 0
        self.stores = 0
        self.loads = 0

    def _index(self, address: int) -> int:
        offset = address - self.base
        if not 0 <= offset < self.size:
            raise IndexError(
                f"address {address:#x} outside shadow window "
                f"[{self.base:#x}, {self.base + self.size:#x})"
            )
        return offset

    def load(self, address: int) -> int:
        self.loads += 1
        return int(self._epochs[self._index(address)])

    def store(self, address: int, epoch: int) -> None:
        self.stores += 1
        self._epochs[self._index(address)] = epoch

    def compare_and_swap(self, address: int, expected: int, new: int) -> bool:
        idx = self._index(address)
        if int(self._epochs[idx]) != expected:
            return False
        self.stores += 1
        self._epochs[idx] = new
        return True

    def load_range(self, address: int, size: int) -> List[int]:
        start = self._index(address)
        self._index(address + size - 1)
        self.loads += size
        return [int(e) for e in self._epochs[start : start + size]]

    def peek(self, address: int) -> int:
        """Uncounted epoch inspection (see :meth:`SparseShadow.peek`)."""
        return int(self._epochs[self._index(address)])

    def clear(self, address: int) -> None:
        """Uncounted epoch scrub (see :meth:`SparseShadow.clear`)."""
        self._epochs[self._index(address)] = 0

    def store_range(self, address: int, size: int, epoch: int) -> None:
        start = self._index(address)
        self._index(address + size - 1)
        self.stores += size
        self._epochs[start : start + size] = epoch

    def reset(self) -> None:
        self._epochs = np.zeros(self.size, dtype=np.uint32)
        self.resets += 1

    @property
    def touched_bytes(self) -> int:
        return int(np.count_nonzero(self._epochs))

    @property
    def metadata_bytes(self) -> int:
        return self.touched_bytes * EPOCH_BYTES_PER_DATA_BYTE

    def items(self) -> Iterable[Tuple[int, int]]:
        nz = np.nonzero(self._epochs)[0]
        return ((self.base + int(i), int(self._epochs[i])) for i in nz)
