"""TelemetryMonitor: runtime instrumentation as a scheduler monitor.

The monitor observes the same hook stream the race detector does but
never raises, never vetoes a synchronization gate and never mutates
runtime state — so stacking it before or after :class:`~repro.clean.CleanMonitor`
cannot change race verdicts (pinned by ``tests/test_obs.py``).  What it
records, into a :class:`~repro.obs.registry.MetricsRegistry`:

* per-thread and aggregate memory-op counts, split shared vs. private —
  the instrumented-access ratio of paper Section 4.1 / Figure 7;
* the synchronization-operation mix (``sync.ops.<Kind>`` counters);
* SFR lengths: memory operations between synchronization commits, the
  quantity behind the paper's SFR isolation guarantees;
* lock contention: acquisitions committed while another thread was
  parked waiting on the same lock;
* thread lifecycle (started/exited/live/peak) and end-of-run gauges.

Metric names are catalogued in ``docs/observability.md``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.events import AccessEvent
from ..runtime.ops import Op
from ..runtime.scheduler import ExecutionMonitor, ExecutionResult, Scheduler
from ..runtime.sync import Barrier, Condition, Lock, Semaphore
from .registry import MetricsRegistry
from .tracer import Span, Tracer

__all__ = ["TelemetryMonitor"]


class TelemetryMonitor(ExecutionMonitor):
    """Observation-only monitor feeding the shared metrics registry.

    Parameters
    ----------
    registry:
        Destination registry; a private one is created when omitted
        (read it back via the ``registry`` attribute).
    tracer:
        Optional tracer; when given, the monitor opens an ``execution``
        span at attach time and closes it on finish, so the whole run
        appears on the exported timeline.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer
        #: per-thread op counts: tid -> {reads, writes, shared, private, sync}
        self.per_thread: Dict[int, Dict[str, int]] = {}
        self._scheduler: Optional[Scheduler] = None
        self._sfr_len: Dict[int, int] = {}
        self._live = 0
        self._span: Optional[Span] = None

    # -- lifecycle ---------------------------------------------------------

    def attach(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler
        if self.tracer is not None:
            self._span = self.tracer.start_span("execution")

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self.per_thread[tid] = {
            "reads": 0, "writes": 0, "shared": 0, "private": 0, "sync": 0,
        }
        self._sfr_len[tid] = 0
        self._live += 1
        r = self.registry
        r.inc("runtime.threads.started")
        r.set_gauge("runtime.threads.live", self._live)

    def on_thread_exit(self, tid: int) -> None:
        self._live -= 1
        counts = self.per_thread[tid]
        r = self.registry
        r.inc("runtime.threads.exited")
        r.set_gauge("runtime.threads.live", self._live)
        r.observe("thread.mem_ops", counts["reads"] + counts["writes"])
        r.observe("thread.sync_ops", counts["sync"])
        if self._sfr_len.get(tid):
            r.observe("sfr.length", self._sfr_len[tid])
            self._sfr_len[tid] = 0

    def on_spawn(self, parent: int, child: int) -> None:
        self.registry.inc("sync.spawns")

    def on_join(self, parent: int, child: int) -> None:
        self.registry.inc("sync.joins")

    # -- memory ------------------------------------------------------------

    def _count_access(self, tid: int, kind: str, private: bool) -> None:
        counts = self.per_thread[tid]
        counts[kind] += 1
        counts["private" if private else "shared"] += 1
        share = "private" if private else "shared"
        self.registry.inc(f"mem.{kind}.{share}")
        self._sfr_len[tid] = self._sfr_len.get(tid, 0) + 1

    def after_access(self, event: AccessEvent) -> None:
        self._count_access(
            event.tid, "writes" if event.is_write else "reads", event.private
        )

    def on_compute(self, tid: int, amount: int) -> None:
        self.registry.inc("mem.compute_instructions", amount)

    # -- synchronization ---------------------------------------------------

    def on_acquire(self, tid: int, lock: Lock) -> None:
        self.registry.inc("sync.acquires")
        if self._waiters_on(lock, exclude=tid):
            self.registry.inc("sync.contended_acquires")

    def _waiters_on(self, lock: Lock, exclude: int) -> int:
        """Threads currently parked trying to acquire ``lock``."""
        if self._scheduler is None:
            return 0
        waiters = 0
        for other, record in self._scheduler._threads.items():
            if other == exclude:
                continue
            pending = record.pending
            if pending is not None and getattr(pending, "lock", None) is lock:
                waiters += 1
        return waiters

    def on_release(self, tid: int, lock: Lock) -> None:
        self.registry.inc("sync.releases")

    def on_barrier_arrive(self, tid: int, barrier: Barrier, generation: int) -> None:
        self.registry.inc("sync.barrier_arrivals")

    def on_barrier_depart(self, tid: int, barrier: Barrier, generation: int) -> None:
        self.registry.inc("sync.barrier_departures")

    def on_cond_signal(self, tid: int, cond: Condition) -> None:
        self.registry.inc("sync.cond_signals")

    def on_cond_wake(self, tid: int, cond: Condition) -> None:
        self.registry.inc("sync.cond_wakes")

    def on_sem_post(self, tid: int, sem: Semaphore) -> None:
        self.registry.inc("sync.sem_posts")

    def on_sem_wait(self, tid: int, sem: Semaphore) -> None:
        self.registry.inc("sync.sem_waits")

    def on_sync_commit(self, tid: int, op: Op) -> None:
        r = self.registry
        r.inc("sync.commits")
        r.inc(f"sync.ops.{type(op).__name__.lstrip('_')}")
        counts = self.per_thread.get(tid)
        if counts is not None:
            counts["sync"] += 1
        length = self._sfr_len.get(tid, 0)
        r.observe("sfr.length", length)
        self._sfr_len[tid] = 0

    # -- end of run --------------------------------------------------------

    def on_finish(self, result: ExecutionResult) -> None:
        r = self.registry
        r.set_gauge("run.steps", result.steps)
        r.set_gauge("run.shared_reads", result.shared_reads)
        r.set_gauge("run.shared_writes", result.shared_writes)
        r.set_gauge("run.completed", 0 if result.race is not None else 1)
        if result.race is not None:
            r.inc("run.races")
        shared = sum(c["shared"] for c in self.per_thread.values())
        total = shared + sum(c["private"] for c in self.per_thread.values())
        r.set_gauge("mem.instrumented_fraction", shared / total if total else 0.0)
        if self._span is not None and self.tracer is not None:
            self._span.set("steps", result.steps)
            self._span.set("race", str(result.race) if result.race else None)
            self.tracer.end_span(self._span)
            self._span = None

    # -- derived views -----------------------------------------------------

    @property
    def shared_fraction(self) -> float:
        """Instrumented (shared) fraction of all memory operations."""
        shared = sum(c["shared"] for c in self.per_thread.values())
        total = shared + sum(c["private"] for c in self.per_thread.values())
        return shared / total if total else 0.0

    def thread_table(self) -> Dict[int, Dict[str, Any]]:
        """Per-thread op counts, for reports and tests."""
        return {tid: dict(counts) for tid, counts in self.per_thread.items()}
