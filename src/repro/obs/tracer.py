"""Span tracing on a monotonic clock, with a JSONL exporter.

A :class:`Span` is one named, timed phase with attributes; spans nest
(the tracer keeps a stack, so a span opened inside another records its
parent).  All timing uses :func:`time.perf_counter` — the monotonic
clock — never wall time, so durations survive NTP adjustments and are
meaningful at microsecond scale.

The JSONL format starts with a header record

``{"type": "header", "format": SPANS_FORMAT_VERSION, "clock":
"perf_counter"}``

followed by one record per line:

``{"type": "span", "name": ..., "span_id": ..., "parent_id": ...,
"start": ..., "end": ..., "duration_s": ..., "attrs": {...}}``

plus optional ``{"type": "metrics", "label": ..., "metrics": {...}}``
records carrying a :class:`~repro.obs.registry.MetricsRegistry`
snapshot.  ``start``/``end`` are seconds since the owning tracer's
**origin** (captured at tracer construction), so every record of one
file shares a zero point and records from different processes can be
rebased onto one axis (see :meth:`Tracer.ingest`).  Raw
``perf_counter`` values never leave a process: their origin differs
per process, which made cross-process spans incomparable.
:func:`read_jsonl` rejects files whose header declares a format major
newer than this library understands.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Dict, Iterable, List, Optional, Union

__all__ = [
    "SPANS_FORMAT_VERSION",
    "JsonlExporter",
    "Span",
    "Timer",
    "Tracer",
    "read_jsonl",
]

#: Schema major of the spans JSONL format.  1: origin-relative
#: ``start``/``end`` with a leading header record (headerless files are
#: accepted as the legacy format-0 dialect).
SPANS_FORMAT_VERSION = 1


class Span:
    """One named, timed phase of a run."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = time.perf_counter()
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = dict(attrs or {})

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        """Elapsed seconds (up to now while the span is still open)."""
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start

    def to_record(self, origin: float = 0.0) -> Dict[str, Any]:
        """The span as a JSONL-ready dict.

        ``origin`` — normally the owning tracer's construction
        timestamp — is subtracted from ``start``/``end`` so exported
        records are relative to one per-run zero point instead of the
        process-local ``perf_counter`` epoch.
        """
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start - origin,
            "end": self.end - origin if self.end is not None else None,
            "duration_s": self.duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Creates, nests and finishes spans; optionally exports each one.

    ``exporter`` is any object with an ``export(record: dict)`` method —
    normally a :class:`JsonlExporter`.  Finished spans are also kept on
    ``finished`` for in-process consumers (tests, the report harness).
    """

    def __init__(self, exporter: Optional["JsonlExporter"] = None) -> None:
        self.exporter = exporter
        #: the tracer's zero point; every exported record is relative to it.
        self.origin = time.perf_counter()
        self.finished: List[Span] = []
        #: span *records* adopted from other processes via :meth:`ingest`.
        self.ingested: List[Dict[str, Any]] = []
        self._stack: List[Span] = []
        self._next_id = 1
        if exporter is not None:
            exporter.export_header()

    # -- context-manager API (the normal way) ------------------------------

    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """``with tracer.span("phase", key=value) as s:`` — timed block."""
        return _SpanContext(self, name, attrs)

    # -- manual API (for monitors that cannot hold a with-block open) -------

    def start_span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, self._next_id, parent, attrs)
        self._next_id += 1
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Finish ``span``, tolerating out-of-order closes.

        Removal from the open-span stack is *by identity*, scanning from
        the top: closing a span does not disturb any other open span, so
        a parent closed before its child (monitors with overlapping
        lifetimes do this) leaves the child's — and every later span's —
        parent attribution intact.  Double-closing is a no-op on the
        stack.
        """
        span.end = time.perf_counter()
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i] is span:
                del self._stack[i]
                break
        self.finished.append(span)
        if self.exporter is not None:
            self.exporter.export(span.to_record(self.origin))
        return span

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration marker span."""
        return self.end_span(self.start_span(name, **attrs))

    def ingest(
        self,
        records: Iterable[Dict[str, Any]],
        at: Optional[float] = None,
        **attrs: Any,
    ) -> int:
        """Adopt finished span *records* from another process.

        Worker processes cannot share a tracer; they ship
        ``Span.to_record()`` dicts back instead.  ``attrs`` (e.g. the
        owning job's label) are merged into each record's ``attrs`` so
        provenance survives the flattening of per-process span-id
        namespaces.

        ``at`` rebases the records onto *this* tracer's axis: worker
        records are relative to the worker tracer's origin (≈ the job
        start), so shifting them by the parent-side start of that job
        (e.g. the matching ``runner.job`` span's origin-relative start)
        makes worker and parent spans ordered on one timeline.

        Records are re-exported when an exporter is attached and kept
        on :attr:`ingested`; returns how many were adopted.
        """
        count = 0
        for record in records:
            if attrs or at is not None:
                record = dict(record)
            if at is not None:
                if isinstance(record.get("start"), (int, float)):
                    record["start"] = record["start"] + at
                if isinstance(record.get("end"), (int, float)):
                    record["end"] = record["end"] + at
            if attrs:
                merged = dict(record.get("attrs") or {})
                merged.update(attrs)
                record["attrs"] = merged
            self.ingested.append(record)
            if self.exporter is not None:
                self.exporter.export(record)
            count += 1
        return count

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.finished if s.name == name]


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer.start_span(self._name, **self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.set("error", exc_type.__name__)
        self._tracer.end_span(self._span)


class Timer:
    """Minimal monotonic stopwatch: ``with Timer() as t: ...; t.elapsed``."""

    __slots__ = ("start", "end")

    def __init__(self) -> None:
        self.start = time.perf_counter()
        self.end: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


class JsonlExporter:
    """Appends JSON records, one per line, to a file or stream."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if hasattr(destination, "write"):
            self._fh: IO[str] = destination  # type: ignore[assignment]
            self._owns = False
        else:
            self._fh = open(destination, "w", encoding="utf-8")
            self._owns = True
        self._header_written = False

    def export(self, record: Dict[str, Any]) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def export_header(self) -> None:
        """Write the leading format-version record (idempotent)."""
        if self._header_written:
            return
        self._header_written = True
        self.export(
            {
                "type": "header",
                "format": SPANS_FORMAT_VERSION,
                "clock": "perf_counter",
            }
        )

    def export_metrics(self, registry: Any, label: str = "final") -> None:
        """Write a registry snapshot as one ``metrics`` record."""
        self.export(
            {"type": "metrics", "label": label, "metrics": registry.snapshot()}
        )

    def close(self) -> None:
        if self._owns:
            self._fh.close()

    def __enter__(self) -> "JsonlExporter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def read_jsonl(path: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Load every record of a telemetry JSONL file (blank lines skipped).

    A leading ``header`` record is version-checked: a format major newer
    than :data:`SPANS_FORMAT_VERSION` raises :class:`ValueError` (write
    tools evolve faster than readers; silent misreads of future formats
    are worse than a refusal).  Headerless files are the legacy dialect
    and load unchecked.
    """
    if hasattr(path, "read"):
        text = path.read()  # type: ignore[union-attr]
    else:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    records = [json.loads(line) for line in text.splitlines() if line.strip()]
    if records and records[0].get("type") == "header":
        major = records[0].get("format")
        if not isinstance(major, int) or major > SPANS_FORMAT_VERSION:
            raise ValueError(
                f"spans JSONL format {major!r} is newer than this reader "
                f"(supports <= {SPANS_FORMAT_VERSION})"
            )
    return records
