"""Bridges: mirror existing per-module stats structs into a registry.

The detector, the baselines and the hardware simulator each keep typed
stats objects (``AccessStats``, ``HbEngine.sync_ops``,
``RaceUnitStats``, ``HierarchyStats``).  Those stay the source of truth
— the bridges copy their values into a shared
:class:`~repro.obs.registry.MetricsRegistry` under stable dotted names,
using ``Counter.set_to`` so re-publishing is idempotent.

Everything is duck-typed: any detector with a dataclass ``stats`` (or an
``sync_ops`` int) and any check unit whose stats expose ``by_class``
publishes without registering itself here first.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from .registry import MetricsRegistry

__all__ = ["publish_detector_metrics", "publish_sim_metrics"]


def _publish_dataclass(
    registry: MetricsRegistry, prefix: str, stats: Any
) -> None:
    """Every numeric field of a stats dataclass becomes a counter."""
    for f in dataclasses.fields(stats):
        value = getattr(stats, f.name)
        if isinstance(value, (int, float)):
            registry.counter(f"{prefix}.{f.name}").set_to(value)
        elif isinstance(value, dict):
            for key, sub in value.items():
                if isinstance(sub, (int, float)):
                    registry.counter(f"{prefix}.{f.name}.{key}").set_to(sub)


def publish_detector_metrics(
    detector: Any, registry: MetricsRegistry, prefix: str = "detector"
) -> None:
    """Mirror a detector's counters into ``registry``.

    Works for :class:`~repro.core.detector.CleanDetector` (full
    ``AccessStats`` plus epoch-table occupancy and derived fractions)
    and for the :class:`~repro.baselines.common.HbEngine` baselines
    (sync-op count, live threads, whatever stats they carry).
    """
    stats = getattr(detector, "stats", None)
    if stats is not None and dataclasses.is_dataclass(stats):
        _publish_dataclass(registry, prefix, stats)
        for derived in ("fraction_wide", "fraction_uniform_epoch", "accesses"):
            value = getattr(stats, derived, None)
            if isinstance(value, (int, float)):
                registry.set_gauge(f"{prefix}.{derived}", value)
    sync_ops = getattr(detector, "sync_ops", None)
    if isinstance(sync_ops, int):
        registry.counter(f"{prefix}.sync_ops").set_to(sync_ops)
    shadow = getattr(detector, "shadow", None)
    if shadow is not None:
        for attr in ("touched_bytes", "metadata_bytes", "resets", "loads", "stores"):
            value = getattr(shadow, attr, None)
            if isinstance(value, (int, float)):
                registry.set_gauge(f"{prefix}.epoch_table.{attr}", value)
    live = getattr(detector, "live_threads", None)
    if callable(live):
        try:
            registry.set_gauge(f"{prefix}.live_threads", len(live()))
        except Exception:
            pass
    pending = getattr(detector, "rollover_pending", None)
    if isinstance(pending, bool):
        registry.set_gauge(f"{prefix}.rollover_pending", int(pending))


def publish_sim_metrics(sim: Any, registry: MetricsRegistry) -> None:
    """Mirror a :class:`~repro.hardware.simulator.MulticoreSim`'s stats.

    Publishes the hierarchy counters (``sim.hierarchy.*``), per-cache
    hit/miss/eviction gauges (``sim.cache.<name>.*``) and — when
    detection is on — the race-check unit's class breakdown
    (``sim.race_unit.*``) and metadata expansions.
    """
    hierarchy = sim.hierarchy
    _publish_dataclass(registry, "sim.hierarchy", hierarchy.stats)
    registry.set_gauge("sim.hierarchy.llc_miss_rate", hierarchy.stats.llc_miss_rate)
    for cache in [*hierarchy.l1, *hierarchy.l2, hierarchy.l3]:
        base = f"sim.cache.{cache.name}"
        registry.set_gauge(f"{base}.hits", cache.hits)
        registry.set_gauge(f"{base}.misses", cache.misses)
        registry.set_gauge(f"{base}.evictions", cache.evictions)
    unit = getattr(sim, "race_unit", None)
    if unit is not None:
        stats = unit.stats
        if dataclasses.is_dataclass(stats):
            _publish_dataclass(registry, "sim.race_unit", stats)
        for derived in ("quick_fraction", "compact_or_private_fraction", "total"):
            value = getattr(stats, derived, None)
            if isinstance(value, (int, float)):
                registry.set_gauge(f"sim.race_unit.{derived}", value)
    metadata = getattr(sim, "metadata", None)
    if metadata is not None:
        registry.counter("sim.metadata.expansions").set_to(metadata.expansions)
