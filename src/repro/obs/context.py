"""Ambient telemetry: the scope a worker process publishes into.

The experiment ``compute()`` functions are pure-by-design — they take a
benchmark config and return a JSON payload — so threading an explicit
registry through every call chain (runner → compute → ``clean_stack`` →
``CleanMonitor``) would contaminate dozens of signatures for a purely
observational concern.  Instead the job runner installs a
*telemetry scope* around each job; anything underneath that wants to
publish (the CLEAN monitor's ``clean.*`` accumulators, the site
profiler) asks for :func:`current_registry` / :func:`current_sites` and
gets ``None`` when no scope is active — exactly the pre-pipeline
behaviour.

Scopes are thread-local and stack (nesting keeps the innermost), so a
parent-process run profiling itself cannot leak into a concurrently
serving HTTP thread.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from .registry import MetricsRegistry
from .tracer import Tracer

__all__ = [
    "TelemetryContext",
    "current_context",
    "current_registry",
    "current_sites",
    "current_timeline",
    "current_tracer",
    "telemetry_scope",
]


class TelemetryContext:
    """One active telemetry scope: registry + tracer + optional extras."""

    __slots__ = ("registry", "tracer", "sites", "timeline")

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Tracer,
        sites: Optional[Any] = None,
        timeline: Optional[Any] = None,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.sites = sites  # a SiteProfiler, duck-typed to avoid a cycle
        self.timeline = timeline  # a TimelineSink, duck-typed likewise


_local = threading.local()


def _stack() -> list:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


@contextmanager
def telemetry_scope(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    sites: Optional[Any] = None,
    timeline: Optional[Any] = None,
) -> Iterator[TelemetryContext]:
    """Install an ambient telemetry context for the enclosed block."""
    ctx = TelemetryContext(
        registry if registry is not None else MetricsRegistry(),
        tracer if tracer is not None else Tracer(),
        sites,
        timeline,
    )
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        # Identity removal: tolerate a misbehaving nested scope.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is ctx:
                del stack[i]
                break


def current_context() -> Optional[TelemetryContext]:
    """The innermost active scope, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def current_registry() -> Optional[MetricsRegistry]:
    ctx = current_context()
    return ctx.registry if ctx is not None else None


def current_tracer() -> Optional[Tracer]:
    ctx = current_context()
    return ctx.tracer if ctx is not None else None


def current_sites() -> Optional[Any]:
    ctx = current_context()
    return ctx.sites if ctx is not None else None


def current_timeline() -> Optional[Any]:
    """The ambient :class:`~repro.obs.timeline.TimelineSink`, or ``None``."""
    ctx = current_context()
    return ctx.timeline if ctx is not None else None
