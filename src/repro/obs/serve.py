"""A zero-dependency telemetry/ingestion HTTP server (stdlib ``http.server``).

Started life as a two-endpoint scrape target (``/metrics`` +
``/status``); now a small request **router** that the race-checking
service daemon (:mod:`repro.service`) builds its ingestion API on:

* :class:`TelemetryServer` owns the socket, the daemon thread and the
  route table.  The built-in routes are ``GET /metrics`` (the shared
  registry in Prometheus text format, see :mod:`repro.obs.prom`),
  ``GET /status`` (the live status JSON from ``status_fn``) and
  ``GET /`` (a one-line index of registered routes);
* :meth:`TelemetryServer.add_route` registers additional handlers —
  exact paths (``POST /submit``) or prefix routes (``GET /result/``,
  where the remainder of the path arrives as ``request.rest``);
* handlers receive a :class:`Request` and return a :class:`Response`;
  everything else (content length, JSON encoding, error mapping) is the
  server's problem.

Hardening contract
------------------

* **Client disconnects never crash a handler thread.**  A scraper or
  submitter that goes away mid-request (``BrokenPipeError``,
  ``ConnectionResetError``, a short body read) is swallowed and counted
  in the ``serve.client_aborts`` counter instead of dumping a traceback
  to stderr from the daemon thread.
* **``stop()`` is idempotent and thread-safe.**  Calling it twice, from
  two threads at once, or concurrently with an in-flight request is
  fine; only the first caller tears the server down.
* **The bound port survives a restart.**  After ``start()`` the bound
  port is remembered: :attr:`port` keeps returning it after ``stop()``
  (so cached URLs stay meaningful), and a subsequent ``start()`` on a
  server that originally asked for an ephemeral port (``port=0``)
  rebinds the *same* port rather than silently picking a fresh one.
  Want a genuinely new ephemeral port?  Build a new server.

The server binds ``127.0.0.1`` by default.  Reads are lock-free
snapshots of in-memory dicts; under CPython's GIL a scrape can at worst
observe a metrically-consistent mid-run state, never a crash.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from .prom import render_prom
from .registry import MetricsRegistry

__all__ = ["Request", "Response", "TelemetryServer"]

#: Connection-level errors that mean the *client* went away mid-request.
_CLIENT_GONE = (BrokenPipeError, ConnectionResetError, ConnectionAbortedError)

#: Default cap on accepted request bodies (64 MiB of trace upload).
DEFAULT_MAX_BODY = 64 * 1024 * 1024


@dataclass
class Request:
    """One parsed HTTP request, as handed to a route handler."""

    method: str
    path: str  #: full request path, query string stripped
    rest: str = ""  #: path remainder after a prefix route's pattern
    query: str = ""  #: raw query string ("" when absent)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


@dataclass
class Response:
    """What a route handler returns; the server does the wire format."""

    status: int = 200
    body: bytes = b""
    ctype: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls, payload: Any, status: int = 200, **headers: str
    ) -> "Response":
        """A JSON response (sorted keys, trailing newline)."""
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return cls(
            status=status,
            body=body,
            ctype="application/json",
            headers=dict(headers),
        )

    @classmethod
    def text(
        cls,
        content: str,
        status: int = 200,
        ctype: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(status=status, body=content.encode("utf-8"), ctype=ctype)


Handler = Callable[[Request], Response]


class TelemetryServer:
    """Routes HTTP requests for a registry + status source (+ add-ons).

    ``status_fn`` is any zero-argument callable returning a JSON-ready
    dict (e.g. ``runner.status_snapshot``); omitted, ``/status`` serves
    ``{}``.  ``port=0`` binds an ephemeral port — read :attr:`port`
    after :meth:`start` (it stays readable after :meth:`stop`, and a
    restart rebinds it; see the module docstring for the contract).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        status_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        port: int = 0,
        host: str = "127.0.0.1",
        max_body: int = DEFAULT_MAX_BODY,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.status_fn = status_fn
        self.max_body = max_body
        self._requested = (host, port)
        self._last_port = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()
        self._routes: Dict[Tuple[str, str], Handler] = {}
        self._prefixes: List[Tuple[str, str, Handler]] = []
        self.add_route("GET", "/metrics", self._route_metrics)
        self.add_route("GET", "/status", self._route_status)
        self.add_route("GET", "/", self._route_index)

    # -- the route table -----------------------------------------------------

    def add_route(self, method: str, pattern: str, handler: Handler) -> None:
        """Register ``handler`` for ``method`` requests to ``pattern``.

        A pattern ending in ``/`` (other than the root) is a *prefix*
        route: ``GET /result/`` matches ``/result/s000123`` and the
        handler sees ``request.rest == "s000123"``.  Exact routes win
        over prefix routes; longer prefixes win over shorter ones.
        """
        method = method.upper()
        if len(pattern) > 1 and pattern.endswith("/"):
            self._prefixes.append((method, pattern, handler))
            self._prefixes.sort(key=lambda r: -len(r[1]))
        else:
            self._routes[(method, pattern)] = handler

    def routes(self) -> List[str]:
        """Registered routes, for the index page ("METHOD pattern")."""
        exact = [f"{m} {p}" for (m, p) in self._routes]
        prefix = [f"{m} {p}<id>" for (m, p, _h) in self._prefixes]
        return sorted(exact + prefix)

    def _dispatch(self, request: Request) -> Response:
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            for method, prefix, candidate in self._prefixes:
                if method == request.method and request.path.startswith(prefix):
                    request.rest = request.path[len(prefix):]
                    handler = candidate
                    break
        if handler is None:
            return Response.json(
                {"error": "unknown_endpoint", "path": request.path}, status=404
            )
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 - a handler bug must not
            # kill the connection thread silently; surface it structurally.
            self.registry.inc("serve.errors")
            return Response.json(
                {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"},
                status=500,
            )

    # -- built-in routes -----------------------------------------------------

    def _route_metrics(self, request: Request) -> Response:
        return Response.text(
            render_prom(self.registry),
            ctype="text/plain; version=0.0.4; charset=utf-8",
        )

    def _route_status(self, request: Request) -> Response:
        payload = self.status_fn() if self.status_fn is not None else {}
        return Response.json(payload)

    def _route_index(self, request: Request) -> Response:
        return Response.text("repro telemetry: " + " ".join(self.routes()) + "\n")

    # -- request plumbing ----------------------------------------------------

    def _note_abort(self) -> None:
        self.registry.inc("serve.client_aborts")

    def _read_request(
        self, handler: BaseHTTPRequestHandler, method: str
    ) -> Tuple[Optional[Request], Optional[Response]]:
        """Parse the request; returns (request, early_response).

        ``(None, None)`` means the client disconnected mid-upload — the
        abort is already counted and there is nobody to respond to.
        """
        path, _, query = handler.path.partition("?")
        path = path.rstrip("/") or "/"
        headers = {k.lower(): v for k, v in handler.headers.items()}
        request = Request(
            method=method, path=path, query=query, headers=headers
        )
        if method != "POST":
            return request, None
        length_text = headers.get("content-length")
        if length_text is None:
            return None, Response.json({"error": "length_required"}, status=411)
        try:
            length = int(length_text)
        except ValueError:
            return None, Response.json({"error": "bad_content_length"}, status=400)
        if length > self.max_body:
            return None, Response.json(
                {"error": "body_too_large", "max_bytes": self.max_body},
                status=413,
            )
        body = handler.rfile.read(length)
        if len(body) != length:
            # The uploader went away mid-body; nothing to respond to.
            self._note_abort()
            return None, None
        request.body = body
        return request, None

    def _write(self, handler: BaseHTTPRequestHandler, response: Response) -> None:
        handler.send_response(response.status)
        handler.send_header("Content-Type", response.ctype)
        handler.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            handler.send_header(name, str(value))
        handler.end_headers()
        handler.wfile.write(response.body)

    def _handle(self, handler: BaseHTTPRequestHandler, method: str) -> None:
        self.registry.inc("serve.requests")
        try:
            request, early = self._read_request(handler, method)
            if request is None and early is None:
                return
            response = early if early is not None else self._dispatch(request)
            self._write(handler, response)
        except _CLIENT_GONE:
            self._note_abort()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> int:
        """Bind and start serving in a daemon thread; returns the port.

        Restarting a stopped server rebinds the port of its previous
        life, even if that port was originally ephemeral (``port=0``) —
        callers that cached the URL keep a working one.
        """
        server = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                server._handle(self, "GET")

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                server._handle(self, "POST")

            def log_message(self, *args: Any) -> None:
                pass  # requests must not interleave with report output

        with self._lifecycle:
            if self._httpd is not None:
                return self.port
            host, port = self._requested
            if port == 0 and self._last_port:
                port = self._last_port
            self._httpd = ThreadingHTTPServer((host, port), _Handler)
            self._httpd.daemon_threads = True
            self._last_port = self._httpd.server_address[1]
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-telemetry-server",
                daemon=True,
            )
            self._thread.start()
            return self._last_port

    @property
    def port(self) -> int:
        """The bound port — live, or remembered from the last
        :meth:`start` once stopped (0 only before the first start)."""
        httpd = self._httpd
        if httpd is not None:
            return httpd.server_address[1]
        return self._last_port

    def stop(self) -> None:
        """Shut down and close the socket.  Idempotent; safe to call
        from multiple threads and concurrently with in-flight requests
        (their daemon handler threads finish against a closed socket and
        any resulting client-side error is swallowed by the handler)."""
        with self._lifecycle:
            httpd, self._httpd = self._httpd, None
            thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=5.0)

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
