"""A zero-dependency telemetry HTTP endpoint (stdlib ``http.server``).

``repro profile --serve PORT`` / ``report --serve PORT`` start one of
these next to a long run:

* ``GET /metrics`` — the shared registry in Prometheus text format
  (see :mod:`repro.obs.prom`), scrapable by any Prometheus-compatible
  collector;
* ``GET /status``  — the live job-progress JSON (the same payload the
  :class:`~repro.obs.status.StatusFile` publishes);
* ``GET /``        — a one-line index.

The server runs in a daemon thread and binds ``127.0.0.1`` only — this
is an operator convenience, not a hardened service.  Reads are lock-free
snapshots of in-memory dicts; under CPython's GIL a scrape can at worst
observe a metrically-consistent mid-run state, never a crash.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional

from .prom import render_prom
from .registry import MetricsRegistry

__all__ = ["TelemetryServer"]


class TelemetryServer:
    """Serves ``/metrics`` and ``/status`` for a registry + status source.

    ``status_fn`` is any zero-argument callable returning a JSON-ready
    dict (e.g. ``runner.status_snapshot``); omitted, ``/status`` serves
    ``{}``.  ``port=0`` binds an ephemeral port — read :attr:`port`
    after :meth:`start`.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        status_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.status_fn = status_fn
        self._requested = (host, port)
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> int:
        """Bind and start serving in a daemon thread; returns the port."""
        if self._httpd is not None:
            return self.port
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                if path == "/metrics":
                    body = render_prom(server.registry).encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/status":
                    payload = (
                        server.status_fn() if server.status_fn is not None
                        else {}
                    )
                    body = json.dumps(payload, sort_keys=True).encode("utf-8")
                    ctype = "application/json"
                elif path == "/":
                    body = b"repro telemetry: /metrics /status\n"
                    ctype = "text/plain; charset=utf-8"
                else:
                    self.send_error(404, "unknown endpoint")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: Any) -> None:
                pass  # scrapes must not interleave with report output

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-server",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def port(self) -> int:
        """The bound port (0 before :meth:`start`)."""
        return self._httpd.server_address[1] if self._httpd else 0

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()
