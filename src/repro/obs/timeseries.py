"""Bounded time-series storage for fleet observability.

``/metrics`` answers "what are the totals *right now*"; this module
answers "what did they look like *over the last five minutes*".  A
:class:`TimeSeriesStore` keeps one fixed-capacity ring buffer per series
name; a :class:`Collector` thread (owned by the serve daemon) samples a
:class:`~repro.obs.registry.MetricsRegistry` into it on a configurable
interval.  The store is the substrate both the SLO engine
(:mod:`repro.obs.slo`) and the live dashboard
(:mod:`repro.obs.dashboard`) read.

Sampling flattens every instrument into scalar series:

* counters and gauges sample under their registry name (labeled series
  keep their canonical ``name{key="value"}`` form);
* a histogram ``h`` samples as ``h.count`` and ``h.sum`` plus one
  *cumulative* bucket series per bound — ``h.le.<bound>`` and
  ``h.le.inf`` (labels, when present, stay attached:
  ``h.count{tenant="t1"}``).  Cumulative bucket samples are monotone,
  so windowed deltas give exact per-window distributions — that is what
  the SLO engine's burn rates are computed from.

Sampling only ever *reads* the registry (plain dict reads under the
GIL), so the collector is observation-grade by construction: verdicts
and ``clean.*`` counters are byte-identical with the collector on or
off (``tests/test_fleet_obs.py`` pins this).

The JSON payload (``GET /timeseries``) round-trips through
:meth:`TimeSeriesStore.from_payload`, which is how ``repro slo``
re-evaluates scraped artifacts offline with verdicts identical to the
live ``/alerts`` endpoint.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["Collector", "TimeSeriesStore", "TIMESERIES_FORMAT_VERSION"]

#: Schema major stamped into every ``/timeseries`` payload.
TIMESERIES_FORMAT_VERSION = 1

#: Default ring capacity: 600 samples — ten minutes at the default 1s
#: collector interval.
DEFAULT_CAPACITY = 600


def _hist_series(base: str, labels: str, suffix: str) -> str:
    """``base.suffix{labels}`` — the suffix goes *before* the label
    block so derived series stay parseable by ``split_labels``."""
    return f"{base}.{suffix}{labels}"


class TimeSeriesStore:
    """Named ring buffers of ``(unix_time, value)`` samples."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 2:
            raise ValueError("time-series capacity must be >= 2")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: Dict[str, deque] = {}

    # -- writing -----------------------------------------------------------

    def record(self, name: str, t: float, value: float) -> None:
        """Append one sample to ``name``'s ring (evicting the oldest
        once the ring is full)."""
        with self._lock:
            ring = self._series.get(name)
            if ring is None:
                ring = deque(maxlen=self.capacity)
                self._series[name] = ring
            ring.append((t, value))

    def sample(
        self, registry: MetricsRegistry, t: Optional[float] = None
    ) -> float:
        """Record one sample of every instrument in ``registry``.

        Returns the timestamp used (``time.time()`` by default) so a
        caller can correlate.  Read-only with respect to the registry.
        """
        if t is None:
            t = time.time()
        for instrument in registry.instruments():
            name = instrument.name
            if isinstance(instrument, (Counter, Gauge)):
                self.record(name, t, instrument.value)
                continue
            if isinstance(instrument, Histogram):
                brace = name.find("{")
                base = name if brace < 0 else name[:brace]
                labels = "" if brace < 0 else name[brace:]
                self.record(_hist_series(base, labels, "count"), t,
                            instrument.count)
                self.record(_hist_series(base, labels, "sum"), t,
                            instrument.total)
                cumulative = 0
                for bound, n in zip(instrument.bounds,
                                    instrument.bucket_counts):
                    cumulative += n
                    bound_text = (
                        str(bound) if isinstance(bound, int)
                        else f"{bound:g}"
                    )
                    self.record(
                        _hist_series(base, labels, f"le.{bound_text}"), t,
                        cumulative,
                    )
                self.record(_hist_series(base, labels, "le.inf"), t,
                            instrument.count)
        return t

    # -- reading -----------------------------------------------------------

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._series)

    def latest_time(self) -> Optional[float]:
        """Timestamp of the newest sample across all series."""
        with self._lock:
            stamps = [ring[-1][0] for ring in self._series.values() if ring]
        return max(stamps) if stamps else None

    def series(self, name: str) -> List[Tuple[float, float]]:
        """All retained samples of ``name`` (empty when unknown)."""
        with self._lock:
            ring = self._series.get(name)
            return list(ring) if ring is not None else []

    def window(
        self, name: str, seconds: float, now: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """The samples of ``name`` with ``t >= now - seconds``."""
        if now is None:
            now = self.latest_time() or time.time()
        cutoff = now - seconds
        return [(t, v) for t, v in self.series(name) if t >= cutoff]

    def delta(
        self, name: str, seconds: float, now: Optional[float] = None
    ) -> float:
        """Increase of a (monotone) series over the trailing window:
        last sample minus first sample inside it.  0.0 with fewer than
        two samples in the window."""
        samples = self.window(name, seconds, now)
        if len(samples) < 2:
            return 0.0
        return samples[-1][1] - samples[0][1]

    # -- JSON round trip ----------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The whole store as a JSON-ready document (``/timeseries``).

        Timestamps round to milliseconds, values to 6 decimals — small
        on the wire, and more than the SLO math needs.
        """
        with self._lock:
            series = {
                name: {
                    "t": [round(t, 3) for t, _v in ring],
                    "v": [round(v, 6) for _t, v in ring],
                }
                for name, ring in sorted(self._series.items())
            }
        return {
            "version": TIMESERIES_FORMAT_VERSION,
            "capacity": self.capacity,
            "series": series,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TimeSeriesStore":
        """Rebuild a store from :meth:`to_payload` output (a scraped
        ``/timeseries`` artifact) for offline SLO evaluation."""
        version = payload.get("version")
        if version != TIMESERIES_FORMAT_VERSION:
            raise ValueError(
                f"unsupported timeseries payload version {version!r} "
                f"(this build reads {TIMESERIES_FORMAT_VERSION})"
            )
        store = cls(capacity=int(payload.get("capacity", DEFAULT_CAPACITY)))
        for name, data in payload.get("series", {}).items():
            for t, v in zip(data.get("t", []), data.get("v", [])):
                store.record(name, float(t), float(v))
        return store


class Collector:
    """A daemon thread that samples a registry into a store.

    ``interval_s`` is the sampling period; the constructor does not
    start anything — :meth:`start` does, and takes an immediate first
    sample so short-lived daemons still have data.  :meth:`stop` takes
    one final sample (fresh terminal state for scrapes after shutdown)
    and is idempotent.
    """

    def __init__(
        self,
        store: TimeSeriesStore,
        registry: MetricsRegistry,
        interval_s: float = 1.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("collector interval must be > 0")
        self.store = store
        self.registry = registry
        self.interval_s = interval_s
        self.clock = clock
        self.samples_taken = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lifecycle = threading.Lock()

    def _sample_once(self) -> None:
        self.store.sample(self.registry, self.clock())
        self.samples_taken += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self._sample_once()

    def start(self) -> "Collector":
        with self._lifecycle:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._sample_once()
            self._thread = threading.Thread(
                target=self._loop, name="repro-obs-collector", daemon=True
            )
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        with self._lifecycle:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=timeout)
        self._sample_once()
