"""Live run status, atomically published to a file.

A long report run is opaque from the outside: the tables only print at
the end.  :class:`StatusFile` gives the runner a place to publish its
progress — jobs done / failed / cached, the currently running ("hot")
jobs, and an ETA — that any other process can read at any instant
without ever observing a torn write: every update goes to a temporary
file in the same directory and is renamed into place (``os.replace`` is
atomic on POSIX and Windows).

The payload is one JSON object; :meth:`StatusFile.read` loads it back
(``None`` while the file does not exist yet or mid-create).  The
telemetry HTTP server's ``/status`` endpoint serves the same shape
directly from the runner's memory.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["StatusFile"]


class StatusFile:
    """Atomically rewritten JSON snapshot of a run's progress."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    def write(self, payload: Dict[str, Any]) -> None:
        """Replace the file's contents with ``payload`` (plus a wall-clock
        ``updated_at`` stamp), atomically."""
        record = dict(payload)
        record.setdefault("updated_at", time.time())
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self.path.parent), suffix=".status.tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def read(self) -> Optional[Dict[str, Any]]:
        """The last published payload, or ``None`` if absent/corrupt."""
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def remove(self) -> None:
        """Delete the file if present (end-of-run cleanup is optional —
        the final payload is often worth keeping as an artifact)."""
        try:
            os.unlink(self.path)
        except OSError:
            pass
