"""Prometheus text exposition for a :class:`MetricsRegistry`.

Zero dependencies: the renderer emits the `text-based exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) that any Prometheus-compatible scraper parses:

* counters and gauges become one ``# TYPE`` line plus one sample;
* gauges additionally expose their high-water mark as
  ``<name>_high_water``;
* histograms become the canonical triplet — cumulative
  ``<name>_bucket{le="..."}`` series ending in ``le="+Inf"``, plus
  ``<name>_sum`` and ``<name>_count``.

Dotted registry names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
metric-name alphabet (``mem.reads.shared`` → ``mem_reads_shared``).
"""

from __future__ import annotations

import re
from typing import List, Union

from .registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["prom_name", "render_prom"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """A registry name as a valid Prometheus metric name."""
    sanitized = _INVALID.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: Union[int, float]) -> str:
    """A sample value in exposition syntax (ints without a dot)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prom(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        name = prom_name(instrument.name)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_fmt(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_fmt(instrument.value)}")
            lines.append(f"# TYPE {name}_high_water gauge")
            lines.append(f"{name}_high_water {_fmt(instrument.high_water)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            for bound, count in zip(instrument.bounds, instrument.bucket_counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
                )
            lines.append(
                f'{name}_bucket{{le="+Inf"}} {instrument.count}'
            )
            lines.append(f"{name}_sum {_fmt(instrument.total)}")
            lines.append(f"{name}_count {instrument.count}")
    return "\n".join(lines) + ("\n" if lines else "")
