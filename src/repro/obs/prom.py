"""Prometheus text exposition for a :class:`MetricsRegistry`.

Zero dependencies: the renderer emits the `text-based exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version 0.0.4) that any Prometheus-compatible scraper parses:

* every metric *family* (one base name, all its label sets) gets one
  ``# HELP`` line (the text registered via ``registry.describe``, or the
  dotted registry name when none is) and one ``# TYPE`` line, followed
  by all of its samples — labeled series render as
  ``name{tenant="t1"} 4``;
* label values are escaped per the spec's exact rules: backslash
  (``\\``), double quote (``\"``) and newline (``\n``); ``# HELP`` text
  escapes backslash and newline;
* gauges additionally expose their high-water mark as the
  ``<name>_high_water`` family;
* histograms become the canonical triplet — cumulative
  ``<name>_bucket{le="..."}`` series ending in ``le="+Inf"``, plus
  ``<name>_sum`` and ``<name>_count`` (labels merged with ``le``).

Dotted registry names are sanitized to the ``[a-zA-Z_:][a-zA-Z0-9_:]*``
metric-name alphabet (``mem.reads.shared`` → ``mem_reads_shared``);
label keys pass through unchanged (the registry already enforces the
label-name alphabet).
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple, Union

from .registry import (
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    split_labels,
)

__all__ = ["prom_name", "render_prom", "escape_label_value"]

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def prom_name(name: str) -> str:
    """A registry name as a valid Prometheus metric name."""
    sanitized = _INVALID.sub("_", name)
    if not sanitized or sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _fmt(value: Union[int, float]) -> str:
    """A sample value in exposition syntax (ints without a dot)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_block(labels: Tuple[Tuple[str, str], ...], *extra: str) -> str:
    """``{k="v",...}`` with values escaped; "" when there is nothing."""
    parts = [
        f'{key}="{escape_label_value(value)}"' for key, value in labels
    ]
    parts.extend(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prom(registry: MetricsRegistry) -> str:
    """The registry's current state in Prometheus text format.

    Instruments are grouped into families by base name so all label
    sets of one metric share a single ``# HELP``/``# TYPE`` header, as
    the exposition spec requires.
    """
    # Group instruments by base registry name, keeping name-sorted order
    # of first appearance (registry iteration is already sorted).
    families: Dict[str, List[Tuple[Tuple[Tuple[str, str], ...], object]]] = {}
    order: List[str] = []
    for instrument in registry.instruments():
        base, labels = split_labels(instrument.name)
        if base not in families:
            families[base] = []
            order.append(base)
        families[base].append((labels, instrument))

    lines: List[str] = []

    def header(name: str, base: str, kind: str) -> None:
        help_text = registry.help_text(base) or base
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for base in order:
        members = families[base]
        name = prom_name(base)
        kind = members[0][1].kind
        header(name, base, kind)
        if kind == "histogram":
            for labels, instrument in members:
                assert isinstance(instrument, Histogram)
                cumulative = 0
                for bound, count in zip(
                    instrument.bounds, instrument.bucket_counts
                ):
                    cumulative += count
                    block = _label_block(labels, f'le="{_fmt(bound)}"')
                    lines.append(f"{name}_bucket{block} {cumulative}")
                block = _label_block(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{block} {instrument.count}")
                lines.append(
                    f"{name}_sum{_label_block(labels)} "
                    f"{_fmt(instrument.total)}"
                )
                lines.append(
                    f"{name}_count{_label_block(labels)} {instrument.count}"
                )
            continue
        for labels, instrument in members:
            lines.append(
                f"{name}{_label_block(labels)} {_fmt(instrument.value)}"
            )
        if kind == "gauge":
            header(f"{name}_high_water", f"{base} (high-water mark)", "gauge")
            for labels, instrument in members:
                assert isinstance(instrument, Gauge)
                lines.append(
                    f"{name}_high_water{_label_block(labels)} "
                    f"{_fmt(instrument.high_water)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
