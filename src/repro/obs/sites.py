"""Hot-site attribution: *where* detector work and races concentrate.

The paper attributes cost, not just totals — Figure 10 splits slowdown
into instrumentation vs. race-check work, Section 6.2 reports which
benchmarks raise exceptions.  The :class:`SiteProfiler` carries that
attribution down to program sites: for every checked address it counts
full race checks (split read/write), same-epoch fast-path hits, and
raised races; per synchronization-free region (``t<tid>/r<index>``) it
counts the checks issued inside it.  ``top_sites()`` / ``top_regions()``
return the top-K ranked by work, with address/key as a deterministic
tie-break, so a seeded workload always prints the same table.

Sampling: ``sample_every=N`` records every Nth attribution event, with
each recorded event weighted by N, trading exactness for hot-path cost;
the default ``1`` is exact (and what the deterministic tables use).

Profiles are mergeable across processes: :meth:`to_payload` is a plain
JSON dict, :meth:`merge_payload` sums one in — the same discipline the
metrics registry uses for counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SiteProfiler"]

_SITE_FIELDS = ("checks", "reads", "writes", "same_epoch", "races")


class SiteProfiler:
    """Attributes detector work to addresses and SFRs; mergeable."""

    def __init__(self, sample_every: int = 1, top_k: int = 10) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = int(sample_every)
        self.top_k = int(top_k)
        #: address -> {checks, reads, writes, same_epoch, races}
        self.addresses: Dict[int, Dict[str, int]] = {}
        #: "t<tid>/r<region>" -> checks issued inside that SFR
        self.regions: Dict[str, int] = {}
        self._region_index: Dict[int, int] = {}
        self._tick = 0

    # -- recording (called from the CleanMonitor hot path) ------------------

    def _site(self, address: int) -> Dict[str, int]:
        site = self.addresses.get(address)
        if site is None:
            site = self.addresses[address] = dict.fromkeys(_SITE_FIELDS, 0)
        return site

    def _sampled(self) -> int:
        """The weight of this event: 0 (skipped) or ``sample_every``."""
        self._tick += 1
        if self._tick % self.sample_every:
            return 0
        return self.sample_every

    def note_check(self, tid: int, address: int, is_write: bool) -> None:
        """One full race check of ``address`` by thread ``tid``."""
        weight = self._sampled()
        if not weight:
            return
        site = self._site(address)
        site["checks"] += weight
        site["writes" if is_write else "reads"] += weight
        region = f"t{tid}/r{self._region_index.get(tid, 0)}"
        self.regions[region] = self.regions.get(region, 0) + weight

    def note_same_epoch(self, tid: int, address: int, is_write: bool) -> None:
        """One same-epoch fast-path hit (a check that was skipped)."""
        weight = self._sampled()
        if weight:
            self._site(address)["same_epoch"] += weight

    def note_sync(self, tid: int) -> None:
        """Thread ``tid`` committed a sync op: its next SFR begins."""
        self._region_index[tid] = self._region_index.get(tid, 0) + 1

    def note_race(self, address: int) -> None:
        """A race exception fired on ``address`` (never sampled away)."""
        self._site(address)["races"] += 1

    # -- ranking ------------------------------------------------------------

    @staticmethod
    def _work(site: Dict[str, int]) -> int:
        """Total attributed shadow-memory work at one site."""
        return site["checks"] + site["same_epoch"]

    def top_sites(
        self, k: Optional[int] = None
    ) -> List[Tuple[int, Dict[str, int]]]:
        """Top-K ``(address, stats)`` by work, then races, then address."""
        ranked = sorted(
            self.addresses.items(),
            key=lambda item: (-self._work(item[1]), -item[1]["races"], item[0]),
        )
        return ranked[: (k if k is not None else self.top_k)]

    def top_regions(self, k: Optional[int] = None) -> List[Tuple[str, int]]:
        """Top-K ``(sfr_key, checks)`` by checks, then key."""
        ranked = sorted(
            self.regions.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[: (k if k is not None else self.top_k)]

    def site_rank(self, address: int) -> Optional[int]:
        """1-based rank of ``address`` in the full site ordering."""
        for rank, (addr, _) in enumerate(self.top_sites(len(self.addresses)), 1):
            if addr == address:
                return rank
        return None

    # -- merge / serialize ---------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict (addresses stringified for JSON object keys)."""
        return {
            "sample_every": self.sample_every,
            "addresses": {
                str(addr): dict(site) for addr, site in self.addresses.items()
            },
            "regions": dict(self.regions),
        }

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        """Sum another profiler's :meth:`to_payload` into this one."""
        for addr_str, stats in payload.get("addresses", {}).items():
            site = self._site(int(addr_str))
            for field in _SITE_FIELDS:
                site[field] += stats.get(field, 0)
        for region, checks in payload.get("regions", {}).items():
            self.regions[region] = self.regions.get(region, 0) + checks

    # -- presentation --------------------------------------------------------

    def render(self, k: Optional[int] = None) -> str:
        """The two top-K tables (addresses, then SFRs) as printable text."""
        k = k if k is not None else self.top_k
        lines = [
            f"== hot sites: top {k} addresses by race-check work ==",
            "",
            f"{'rank':<5} {'address':<12} {'checks':>9} {'reads':>9} "
            f"{'writes':>9} {'same-ep':>9} {'races':>6}",
        ]
        lines.append("-" * len(lines[-1]))
        for rank, (addr, s) in enumerate(self.top_sites(k), 1):
            lines.append(
                f"{rank:<5} {addr:#012x} {s['checks']:>9} {s['reads']:>9} "
                f"{s['writes']:>9} {s['same_epoch']:>9} {s['races']:>6}"
            )
        if not self.addresses:
            lines.append("(no attributed checks)")
        lines += [
            "",
            f"== hot SFRs: top {k} synchronization-free regions by checks ==",
            "",
            f"{'rank':<5} {'sfr':<16} {'checks':>9}",
        ]
        lines.append("-" * len(lines[-1]))
        for rank, (region, checks) in enumerate(self.top_regions(k), 1):
            lines.append(f"{rank:<5} {region:<16} {checks:>9}")
        if not self.regions:
            lines.append("(no attributed regions)")
        if self.sample_every > 1:
            lines += ["", f"(sampled: every {self.sample_every}th event, "
                          "counts scaled)"]
        return "\n".join(lines)
