"""repro.obs - the unified telemetry layer.

The paper's entire evaluation is built from runtime counters:
instrumented-access rates (Figure 7), epoch-table occupancy and rollover
frequencies (Table 1), check-class breakdowns (Figure 10).  This package
gives every layer of the reproduction one way to expose those numbers:

* :class:`MetricsRegistry` - named counters, gauges and histograms with
  cheap snapshot/diff/JSON-export semantics;
* :class:`Tracer` + :class:`JsonlExporter` - context-manager spans on a
  monotonic clock, exportable as a machine-readable JSONL timeline;
* :class:`TelemetryMonitor` - an :class:`~repro.runtime.scheduler.ExecutionMonitor`
  that records per-thread memory-op counts, instrumented vs. private
  ratios, the synchronization-op mix, SFR lengths and lock contention
  without perturbing detection order;
* :func:`publish_detector_metrics` - mirror any detector's counters
  (CLEAN or the baselines) into a registry.

See ``docs/observability.md`` for the metric name glossary and the span
schema.
"""

from .bridges import publish_detector_metrics, publish_sim_metrics
from .monitor import TelemetryMonitor
from .registry import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import JsonlExporter, Span, Timer, Tracer, read_jsonl

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "Span",
    "TelemetryMonitor",
    "Timer",
    "Tracer",
    "publish_detector_metrics",
    "publish_sim_metrics",
    "read_jsonl",
]
