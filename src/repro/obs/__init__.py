"""repro.obs - the unified telemetry layer.

The paper's entire evaluation is built from runtime counters:
instrumented-access rates (Figure 7), epoch-table occupancy and rollover
frequencies (Table 1), check-class breakdowns (Figure 10).  This package
gives every layer of the reproduction one way to expose those numbers:

* :class:`MetricsRegistry` - named counters, gauges and histograms with
  cheap snapshot/diff/JSON-export semantics;
* :class:`Tracer` + :class:`JsonlExporter` - context-manager spans on a
  monotonic clock, exportable as a machine-readable JSONL timeline;
* :class:`TelemetryMonitor` - an :class:`~repro.runtime.scheduler.ExecutionMonitor`
  that records per-thread memory-op counts, instrumented vs. private
  ratios, the synchronization-op mix, SFR lengths and lock contention
  without perturbing detection order;
* :func:`publish_detector_metrics` - mirror any detector's counters
  (CLEAN or the baselines) into a registry;
* :func:`telemetry_scope` + ``current_*`` - the ambient per-process
  context worker jobs publish into (the cross-process pipeline);
* :class:`SiteProfiler` - hot-site attribution of detector work and
  races to addresses/SFRs;
* :class:`TimelineRecorder` + :mod:`repro.obs.forensics` - the execution
  flight recorder (SFRs, sync ops, happens-before edges on a logical
  clock) and its Chrome-trace / HB-graph / HTML exporters;
* :func:`render_prom` / :class:`TelemetryServer` / :class:`StatusFile` -
  Prometheus text exposition, the ``/metrics`` + ``/status`` HTTP
  endpoint, and the atomically rewritten live-progress file;
* :class:`TimeSeriesStore` + :class:`Collector` - bounded ring-buffer
  history of every instrument, sampled on an interval (``/timeseries``);
* :class:`Objective` / :func:`evaluate_slos` - declarative SLOs with
  multi-window burn-rate alerting over those ring buffers
  (``/alerts``, ``repro slo``);
* :func:`render_dashboard` - the zero-dependency single-file HTML fleet
  dashboard (``/dashboard``).

See ``docs/observability.md`` for the metric name glossary, the span
schema, the merge rules and the exposition format.
"""

from .bridges import publish_detector_metrics, publish_sim_metrics
from .dashboard import render_dashboard
from .context import (
    TelemetryContext,
    current_context,
    current_registry,
    current_sites,
    current_timeline,
    current_tracer,
    telemetry_scope,
)
from .forensics import (
    FORENSICS_FORMAT_VERSION,
    build_hb_graph,
    chrome_trace,
    hb_graph_dot,
    render_html,
    validate_chrome_trace,
    write_forensics,
)
from .monitor import TelemetryMonitor
from .prom import prom_name, render_prom
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labeled_name,
    split_labels,
)
from .serve import TelemetryServer
from .sites import SiteProfiler
from .slo import (
    SLO_FORMAT_VERSION,
    Objective,
    default_slos,
    evaluate_slos,
    load_slo_config,
    render_slo_text,
)
from .status import StatusFile
from .timeseries import (
    TIMESERIES_FORMAT_VERSION,
    Collector,
    TimeSeriesStore,
)
from .timeline import TIMELINE_FORMAT_VERSION, TimelineRecorder, TimelineSink
from .tracer import (
    SPANS_FORMAT_VERSION,
    JsonlExporter,
    Span,
    Timer,
    Tracer,
    read_jsonl,
)

__all__ = [
    "Collector",
    "Counter",
    "FORENSICS_FORMAT_VERSION",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "Objective",
    "SLO_FORMAT_VERSION",
    "SPANS_FORMAT_VERSION",
    "SiteProfiler",
    "Span",
    "StatusFile",
    "TIMELINE_FORMAT_VERSION",
    "TIMESERIES_FORMAT_VERSION",
    "TelemetryContext",
    "TelemetryMonitor",
    "TelemetryServer",
    "TimeSeriesStore",
    "TimelineRecorder",
    "TimelineSink",
    "Timer",
    "Tracer",
    "build_hb_graph",
    "chrome_trace",
    "current_context",
    "current_registry",
    "current_sites",
    "current_timeline",
    "current_tracer",
    "default_slos",
    "evaluate_slos",
    "hb_graph_dot",
    "labeled_name",
    "load_slo_config",
    "prom_name",
    "publish_detector_metrics",
    "publish_sim_metrics",
    "read_jsonl",
    "render_dashboard",
    "render_html",
    "render_prom",
    "render_slo_text",
    "split_labels",
    "telemetry_scope",
    "validate_chrome_trace",
    "write_forensics",
]
