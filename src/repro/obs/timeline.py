"""Execution timeline recording: the flight recorder behind ``repro forensics``.

:class:`TimelineRecorder` is a third observation-only monitor next to
:class:`~repro.obs.monitor.TelemetryMonitor` (aggregate counters) and
:class:`~repro.diagnostics.RaceContextMonitor` (per-address provenance).
Where those answer "how much" and "who last wrote", this one answers
*what happened, in what order*: per-thread lifecycle, every SFR
open/commit, every synchronization operation, rollback/race events, and
— crucially — every happens-before edge the detector's vector clocks
would draw (fork/join, lock release→acquire, barrier generation,
condition signal→wake, semaphore post→wait).

Timestamps are **logical**: a recorder-global event sequence number
(``lt``) plus the thread's deterministic instruction counter
(``det``), never wall-clock.  Under the Kendo gate the scheduler's hook
stream is a pure function of the program and policy, so the recorded
timeline is byte-identical between a serial run, a ``--jobs N`` worker
run and a checkpoint-cache replay — which is what makes the forensics
artifacts (:mod:`repro.obs.forensics`) diffable and cacheable.

The recorder deliberately overrides **no memory hooks**: the fused
scheduler dispatch then keeps the per-access hot path untouched, so
leaving the recorder on costs only per-sync work (bounded by
``benchmarks/bench_forensics.py`` at ≤ 1.15x).

Happens-before edges are compressed per synchronization object: only
the *latest* release-side deposit per thread is kept, and an acquire
draws one edge from each depositing thread.  Program order covers every
earlier same-thread deposit transitively, which is exactly the
vector-clock join the detector performs — so the graph is equivalent
for reachability while staying bounded at O(threads) edges per acquire.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.events import stable_sync_id
from ..runtime.ops import Op
from ..runtime.scheduler import ExecutionMonitor, ExecutionResult, Scheduler
from ..runtime.sync import Barrier, Condition, Lock, Semaphore

__all__ = ["TIMELINE_FORMAT_VERSION", "TimelineRecorder", "TimelineSink"]

#: Schema major of :meth:`TimelineRecorder.to_payload`; consumers must
#: reject payloads whose major exceeds what they understand.
TIMELINE_FORMAT_VERSION = 1


class TimelineRecorder(ExecutionMonitor):
    """Records one execution's timeline; single-use (one run per instance).

    Everything lands in three JSON-safe lists (only dict/list/str/int/
    bool/None, so the payload survives both pickling through a worker
    pipe and a checkpoint-store JSON round trip unchanged):

    * ``events``  — ``{"lt", "kind", "tid", "target", "det"}`` markers;
    * ``segments`` — closed SFRs: ``{"tid", "region", "start", "end",
      "start_det", "end_det", "aborted", "retry"}``;
    * ``edges``   — happens-before: ``{"kind", "target",
      "src": [tid, region, lt], "dst": [tid, region, lt]}``.
    """

    def __init__(self, label: str = "run") -> None:
        self.label = label
        self.events: List[Dict[str, Any]] = []
        self.segments: List[Dict[str, Any]] = []
        self.edges: List[Dict[str, Any]] = []
        #: set by :func:`repro.clean.run_clean` when a
        #: :class:`~repro.diagnostics.RaceContextMonitor` observed the
        #: same run: the race report payload naming the racing SFR pair.
        self.race_report: Optional[Dict[str, Any]] = None
        self._scheduler: Optional[Scheduler] = None
        self._lt = 0
        self._open: Dict[int, Dict[str, Any]] = {}
        self._retries: Dict[int, int] = {}
        self._final_region: Dict[int, int] = {}
        self._threads: List[Dict[str, Any]] = []
        #: sync-object key -> {tid: [region, lt]} latest release deposit
        self._deposits: Dict[str, Dict[int, List[int]]] = {}
        self._steps: Optional[int] = None
        self._race: Optional[Dict[str, Any]] = None
        self._recovery: Optional[Dict[str, Any]] = None

    # -- plumbing ----------------------------------------------------------

    def attach(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    def _region(self, tid: int) -> int:
        assert self._scheduler is not None
        return self._scheduler.region_of(tid)

    def _det(self, tid: int) -> int:
        assert self._scheduler is not None
        return self._scheduler.det_counter(tid)

    def _event(self, kind: str, tid: int, target: Optional[str] = None) -> int:
        """Append one marker at the next logical timestamp; returns it."""
        self._lt += 1
        self.events.append(
            {
                "lt": self._lt,
                "kind": kind,
                "tid": tid,
                "target": target,
                "det": self._det(tid),
            }
        )
        return self._lt

    def _open_segment(self, tid: int, region: int, lt: int) -> None:
        self._open[tid] = {
            "tid": tid,
            "region": region,
            "start": lt,
            "start_det": self._det(tid),
            "retry": self._retries.get(tid, 0),
        }

    def _close_segment(self, tid: int, lt: int, aborted: bool = False) -> None:
        seg = self._open.pop(tid, None)
        if seg is None:
            return
        seg["end"] = lt
        seg["end_det"] = self._det(tid) if tid in self._scheduler._threads else None
        seg["aborted"] = aborted
        self.segments.append(seg)

    def _deposit(self, key: str, tid: int, lt: int) -> None:
        self._deposits.setdefault(key, {})[tid] = [self._region(tid), lt]

    def _draw(self, kind: str, key: str, tid: int, dst_region: int, lt: int) -> None:
        """One edge from every thread's latest deposit on ``key`` to here."""
        for src_tid, (src_region, src_lt) in sorted(
            self._deposits.get(key, {}).items()
        ):
            if src_tid == tid:
                continue  # program order already covers same-thread deposits
            self.edges.append(
                {
                    "kind": kind,
                    "target": key,
                    "src": [src_tid, src_region, src_lt],
                    "dst": [tid, dst_region, lt],
                }
            )

    @staticmethod
    def _name(obj: Any) -> str:
        sid = stable_sync_id(obj)
        if isinstance(sid, tuple):
            return ":".join(str(part) for part in sid)
        return str(sid)

    # -- thread lifecycle --------------------------------------------------

    def on_thread_start(self, tid: int, parent: Optional[int]) -> None:
        self._threads.append({"tid": tid, "parent": parent})
        lt = self._event("thread_start", tid)
        self._open_segment(tid, self._region(tid), lt)

    def on_thread_exit(self, tid: int) -> None:
        self._final_region[tid] = self._region(tid)
        lt = self._event("thread_exit", tid)
        self._close_segment(tid, lt)

    def on_spawn(self, parent: int, child: int) -> None:
        # Fires before the parent's spawn commit: the edge leaves the
        # parent's still-open SFR for the child's region 0.
        lt = self._event("spawn", parent, f"T{child}")
        self.edges.append(
            {
                "kind": "fork",
                "target": f"T{child}",
                "src": [parent, self._region(parent), lt],
                "dst": [child, 0, lt],
            }
        )

    def on_join(self, parent: int, child: int) -> None:
        # Fires before the join commit: the destination is the SFR the
        # commit is about to open (the parent's region + 1).
        lt = self._event("join", parent, f"T{child}")
        self.edges.append(
            {
                "kind": "join",
                "target": f"T{child}",
                "src": [child, self._final_region.get(child, 0), lt],
                "dst": [parent, self._region(parent) + 1, lt],
            }
        )

    # -- synchronization (each hook fires before its sync commit) ----------

    def on_acquire(self, tid: int, lock: Lock) -> None:
        key = f"lock:{self._name(lock)}"
        lt = self._event("acquire", tid, key)
        self._draw("lock", key, tid, self._region(tid) + 1, lt)

    def on_release(self, tid: int, lock: Lock) -> None:
        key = f"lock:{self._name(lock)}"
        lt = self._event("release", tid, key)
        self._deposit(key, tid, lt)

    def on_barrier_arrive(self, tid: int, barrier: Barrier, generation: int) -> None:
        key = f"barrier:{self._name(barrier)}:{generation}"
        lt = self._event("barrier_arrive", tid, key)
        self._deposit(key, tid, lt)

    def on_barrier_depart(self, tid: int, barrier: Barrier, generation: int) -> None:
        # Departure fires after the departer's arrival commit, so its
        # current region is already the post-barrier SFR.
        key = f"barrier:{self._name(barrier)}:{generation}"
        lt = self._event("barrier_depart", tid, key)
        self._draw("barrier", key, tid, self._region(tid), lt)

    def on_cond_signal(self, tid: int, cond: Condition) -> None:
        key = f"cond:{self._name(cond)}"
        lt = self._event("cond_signal", tid, key)
        self._deposit(key, tid, lt)

    def on_cond_wake(self, tid: int, cond: Condition) -> None:
        key = f"cond:{self._name(cond)}"
        lt = self._event("cond_wake", tid, key)
        self._draw("cond", key, tid, self._region(tid) + 1, lt)

    def on_sem_post(self, tid: int, sem: Semaphore) -> None:
        key = f"sem:{self._name(sem)}"
        lt = self._event("sem_post", tid, key)
        self._deposit(key, tid, lt)

    def on_sem_wait(self, tid: int, sem: Semaphore) -> None:
        key = f"sem:{self._name(sem)}"
        lt = self._event("sem_wait", tid, key)
        self._draw("sem", key, tid, self._region(tid) + 1, lt)

    def on_sync_commit(self, tid: int, op: Op) -> None:
        # The commit already bumped the region: close the finished SFR
        # and open the new current one.
        lt = self._event("sync_commit", tid, type(op).__name__.lstrip("_"))
        self._close_segment(tid, lt)
        self._open_segment(tid, self._region(tid), lt)

    def on_rollback(self, tid: int) -> None:
        # Recovery discarded the open SFR (rollback-retry or the discard
        # half of quarantine); the region number is reused by the retry.
        lt = self._event("rollback", tid)
        region = self._region(tid)
        self._close_segment(tid, lt, aborted=True)
        self._retries[tid] = self._retries.get(tid, 0) + 1
        self._open_segment(tid, region, lt)

    # -- end of run --------------------------------------------------------

    def on_finish(self, result: ExecutionResult) -> None:
        self._steps = result.steps
        if result.race is not None:
            race = result.race
            self._race = {
                "kind": race.kind,
                "address": race.address,
                "accessing_tid": race.accessing_tid,
                "prior_writer_tid": race.prior_writer_tid,
                "size": race.size,
            }
            self._lt += 1
            self.events.append(
                {
                    "lt": self._lt,
                    "kind": "race",
                    "tid": race.accessing_tid,
                    "target": race.kind,
                    "det": None,
                }
            )
        if result.recovery is not None:
            self._recovery = result.recovery.to_payload()
            if result.recovery.deadlocked:
                self._lt += 1
                self.events.append(
                    {
                        "lt": self._lt,
                        "kind": "deadlock",
                        "tid": -1,
                        "target": None,
                        "det": None,
                    }
                )
        final = self._lt
        for tid in sorted(self._open):
            seg = self._open[tid]
            seg["end"] = final
            seg["end_det"] = None
            seg["aborted"] = False
            self.segments.append(seg)
        self._open = {}

    # -- export ------------------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """The full timeline as a JSON-safe dict (see module docstring)."""
        return {
            "format": TIMELINE_FORMAT_VERSION,
            "label": self.label,
            "threads": sorted(self._threads, key=lambda t: t["tid"]),
            "events": self.events,
            "segments": sorted(
                self.segments, key=lambda s: (s["start"], s["tid"], s["region"])
            ),
            "edges": self.edges,
            "steps": self._steps,
            "race": self._race,
            "race_report": self.race_report,
            "recovery": self._recovery,
        }


class TimelineSink:
    """Collects the timeline payloads of every run under an ambient scope.

    Installed through :func:`~repro.obs.context.telemetry_scope`'s
    ``timeline=`` slot (see :func:`~repro.obs.context.current_timeline`):
    :func:`repro.clean.run_clean` attaches a fresh recorder per run when
    a sink is ambient and delivers the payload here, so a job that
    executes many CLEAN runs ships them all back in execution order.
    """

    def __init__(self) -> None:
        self.payloads: List[Dict[str, Any]] = []

    def add(self, payload: Dict[str, Any]) -> None:
        self.payloads.append(payload)
