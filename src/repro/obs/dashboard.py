"""The live daemon dashboard: one self-contained HTML page.

:func:`render_dashboard` turns the serve daemon's four live documents —
``/status``, ``/timeseries``, ``/alerts`` and the registry snapshot —
into a single HTML string with **zero external assets**: inline CSS,
inline SVG sparklines, no scripts, no fonts, no images.  ``curl`` it to
a file and it opens offline; CI uploads it as an artifact.  A
``<meta http-equiv="refresh">`` tag makes a live browser tab follow the
daemon at the collector's cadence.

Layout (in reading order):

* header — daemon state, uptime, pool shape, generation timestamp;
* the SLO alert panel — one row per objective, worst burn rate and an
  explicit ``FIRING``/``ok`` label (state is never color-alone);
* stat tiles + fleet sparklines — accepted/verdict/shed rates and queue
  depth over the retained window, drawn from the ring buffers;
* the per-tenant table — submissions, verdicts, rejections, mean
  latency and a per-tenant accepted-rate sparkline, parsed from the
  labeled ``serve.*`` series.

Everything client-controlled (tenant names, request ids) is
HTML-escaped; colors follow the repo-wide viz conventions (one data
hue; status colors reserved for the alert panel, always with a text
label; light and dark mode via ``prefers-color-scheme``).
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import labeled_name, split_labels

__all__ = ["render_dashboard"]

#: Sparkline geometry (viewBox units).
_SPARK_W, _SPARK_H = 240, 44

_STYLE = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --ink-1: #0b0b0b; --ink-2: #52514e;
  --grid: #e3e2de;
  --series-1: #2a78d6; --series-fill: rgba(42,120,214,0.14);
  --good: #0ca30c; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262624;
    --ink-1: #ffffff; --ink-2: #c3c2b7;
    --grid: #383835;
    --series-1: #3987e5; --series-fill: rgba(57,135,229,0.20);
    --good: #0ca30c; --critical: #d03b3b;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--surface-1);
  color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; margin: 0 0 4px; }
h2 { font-size: 13px; font-weight: 600; color: var(--ink-2);
     text-transform: uppercase; letter-spacing: 0.06em;
     margin: 28px 0 10px; }
.sub { color: var(--ink-2); margin: 0 0 18px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--surface-2); border-radius: 8px;
  padding: 12px 16px; min-width: 132px;
}
.tile .v { font-size: 24px; font-weight: 650; font-variant-numeric:
           tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 12px; }
.cards { display: flex; flex-wrap: wrap; gap: 12px; }
.card {
  background: var(--surface-2); border-radius: 8px; padding: 12px 16px;
}
.card .k { color: var(--ink-2); font-size: 12px; margin-bottom: 6px; }
.card .last { font-variant-numeric: tabular-nums; font-weight: 600; }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: right; padding: 6px 10px;
         border-bottom: 1px solid var(--grid);
         font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-size: 12px; font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
.state { font-weight: 650; }
.state.firing { color: var(--critical); }
.state.ok { color: var(--good); }
.badge { display: inline-block; border-radius: 6px; padding: 1px 8px;
         font-size: 12px; font-weight: 650; }
.badge.firing { background: var(--critical); color: #ffffff; }
.badge.ok { background: var(--good); color: #ffffff; }
svg.spark { display: block; }
.spark .grid { stroke: var(--grid); stroke-width: 1; }
.spark .line { stroke: var(--series-1); stroke-width: 2; fill: none;
               stroke-linejoin: round; stroke-linecap: round; }
.spark .area { fill: var(--series-fill); }
.spark .dot { fill: var(--series-1); }
.empty { color: var(--ink-2); font-style: italic; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt_num(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.3g}"


def _sparkline(points: Sequence[float], title: str) -> str:
    """An inline-SVG sparkline (one series — titled, no legend).

    The native ``<title>`` element doubles as the hover tooltip, and
    ``role/aria-label`` name the series for assistive tech — the page's
    tables carry the exact numbers.
    """
    w, h, pad = _SPARK_W, _SPARK_H, 3.0
    if len(points) < 2:
        return (
            f'<svg class="spark" viewBox="0 0 {w} {h}" width="{w}" '
            f'height="{h}" role="img" aria-label="{_esc(title)}">'
            f'<line class="grid" x1="0" y1="{h - 1}" x2="{w}" '
            f'y2="{h - 1}"/></svg>'
        )
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    n = len(points)
    xy: List[Tuple[float, float]] = []
    for i, v in enumerate(points):
        x = pad + (w - 2 * pad) * i / (n - 1)
        y = h - pad - (h - 2 * pad) * (v - lo) / span
        xy.append((x, y))
    line = " ".join(f"{x:.1f},{y:.1f}" for x, y in xy)
    area = (
        f"{xy[0][0]:.1f},{h - pad:.1f} " + line
        + f" {xy[-1][0]:.1f},{h - pad:.1f}"
    )
    lx, ly = xy[-1]
    return (
        f'<svg class="spark" viewBox="0 0 {w} {h}" width="{w}" '
        f'height="{h}" role="img" aria-label="{_esc(title)}">'
        f"<title>{_esc(title)}: min {_fmt_num(lo)}, max {_fmt_num(hi)}, "
        f"last {_fmt_num(points[-1])}</title>"
        f'<line class="grid" x1="0" y1="{h - 1}" x2="{w}" y2="{h - 1}"/>'
        f'<polygon class="area" points="{area}"/>'
        f'<polyline class="line" points="{line}"/>'
        f'<circle class="dot" cx="{lx:.1f}" cy="{ly:.1f}" r="2.5"/>'
        "</svg>"
    )


# -- series access -----------------------------------------------------------


def _series_values(timeseries: Dict[str, Any], name: str) -> List[float]:
    data = (timeseries.get("series") or {}).get(name)
    if not data:
        return []
    return [float(v) for v in data.get("v", [])]


def _deltas(values: Sequence[float]) -> List[float]:
    """Per-sample increases of a cumulative series (clamped at 0, so a
    counter reset shows as a flat spot, not a negative spike)."""
    return [
        max(0.0, b - a) for a, b in zip(values, values[1:])
    ]


def _rate_points(timeseries: Dict[str, Any], name: str) -> List[float]:
    return _deltas(_series_values(timeseries, name))


# -- page sections -----------------------------------------------------------


def _tile(label: str, value: Any) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(label)}</div></div>'
    )


def _alert_panel(alerts: Dict[str, Any]) -> str:
    rows = []
    for entry in alerts.get("objectives", []):
        obj = entry.get("objective", {})
        worst = 0.0
        for pair in entry.get("windows", []):
            worst = max(worst, pair.get("long", {}).get("burn_rate", 0.0),
                        pair.get("short", {}).get("burn_rate", 0.0))
        firing = bool(entry.get("firing"))
        badge = (
            '<span class="badge firing">&#9650; FIRING</span>'
            if firing else '<span class="badge ok">ok</span>'
        )
        detail = f"target {obj.get('target', '?')}"
        if obj.get("kind") == "latency_p99":
            detail += f" &middot; threshold {obj.get('threshold_s')}s"
            if entry.get("p99_s") is not None:
                detail += f" &middot; p99&#8776;{_esc(entry['p99_s'])}s"
        rows.append(
            "<tr>"
            f"<td>{_esc(obj.get('name', '?'))}</td>"
            f"<td>{_esc(obj.get('kind', '?'))}</td>"
            f"<td>{detail}</td>"
            f"<td>{_fmt_num(worst)}x</td>"
            f"<td>{badge}</td>"
            "</tr>"
        )
    if not rows:
        return '<p class="empty">no objectives configured</p>'
    head = ("<tr><th>objective</th><th>kind</th><th>detail</th>"
            "<th>worst burn</th><th>state</th></tr>")
    return f"<table>{head}{''.join(rows)}</table>"


def _fleet_cards(timeseries: Dict[str, Any]) -> str:
    queue_shed = _rate_points(timeseries, "serve.queue_rejected")
    quota_shed = _rate_points(timeseries, "serve.quota_denied")
    width = max(len(queue_shed), len(quota_shed))
    queue_shed += [0.0] * (width - len(queue_shed))
    quota_shed += [0.0] * (width - len(quota_shed))
    charts: List[Tuple[str, List[float]]] = [
        ("accepted / interval", _rate_points(timeseries, "serve.accepted")),
        ("verdicts / interval", _rate_points(timeseries, "serve.completed")),
        ("failures / interval", _rate_points(timeseries, "serve.failed")),
        ("shed (429) / interval",
         [a + b for a, b in zip(queue_shed, quota_shed)]),
        ("queue depth", _series_values(timeseries, "serve.queue_depth")),
    ]
    # Mean latency per interval from the histogram's cumulative count/sum.
    d_count = _rate_points(timeseries, "serve.latency.count")
    d_sum = _rate_points(timeseries, "serve.latency.sum")
    if d_count and d_sum:
        charts.append((
            "mean latency (s) / interval",
            [s / c if c else 0.0 for c, s in zip(d_count, d_sum)],
        ))
    cards = []
    for label, points in charts:
        last = _fmt_num(points[-1]) if points else "-"
        cards.append(
            f'<div class="card"><div class="k">{_esc(label)} &middot; '
            f'last <span class="last">{last}</span></div>'
            f"{_sparkline(points, label)}</div>"
        )
    return f'<div class="cards">{"".join(cards)}</div>'


def _tenant_rows(snapshot: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Per-tenant aggregates parsed from labeled ``serve.*`` entries."""
    tenants: Dict[str, Dict[str, Any]] = {}

    def cell(tenant: str) -> Dict[str, Any]:
        return tenants.setdefault(tenant, {
            "submissions": 0, "accepted": 0, "racy": 0, "clean": 0,
            "failed": 0, "shed": 0, "lat_count": 0, "lat_sum": 0.0,
        })

    for name, value in snapshot.items():
        if not name.startswith("serve."):
            continue
        base, labels = split_labels(name)
        tenant = dict(labels).get("tenant")
        if tenant is None:
            continue
        row = cell(tenant)
        if base == "serve.submissions":
            row["submissions"] += value
        elif base == "serve.accepted":
            row["accepted"] += value
        elif base == "serve.verdict.racy":
            row["racy"] += value
        elif base == "serve.verdict.clean":
            row["clean"] += value
        elif base == "serve.failed":
            row["failed"] += value
        elif base in ("serve.queue_rejected", "serve.quota_denied"):
            row["shed"] += value
        elif base == "serve.latency" and isinstance(value, dict):
            row["lat_count"] += value.get("count", 0)
            row["lat_sum"] += value.get("sum", 0)
    return tenants


def _tenant_table(
    snapshot: Dict[str, Any], timeseries: Dict[str, Any]
) -> str:
    tenants = _tenant_rows(snapshot)
    if not tenants:
        return ('<p class="empty">no per-tenant traffic yet '
                "(labels appear with the first submission)</p>")
    rows = []
    for tenant in sorted(tenants):
        row = tenants[tenant]
        mean = (row["lat_sum"] / row["lat_count"]) if row["lat_count"] else 0.0
        accepted_series = _rate_points(
            timeseries, labeled_name("serve.accepted", {"tenant": tenant})
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(tenant)}</td>"
            f"<td>{_fmt_num(row['submissions'])}</td>"
            f"<td>{_fmt_num(row['accepted'])}</td>"
            f"<td>{_fmt_num(row['racy'])}</td>"
            f"<td>{_fmt_num(row['clean'])}</td>"
            f"<td>{_fmt_num(row['failed'])}</td>"
            f"<td>{_fmt_num(row['shed'])}</td>"
            f"<td>{_fmt_num(mean)}s</td>"
            f"<td>{_sparkline(accepted_series, f'{tenant} accepted rate')}"
            "</td></tr>"
        )
    head = (
        "<tr><th>tenant</th><th>submitted</th><th>accepted</th>"
        "<th>racy</th><th>clean</th><th>failed</th><th>shed</th>"
        "<th>mean latency</th><th>accepted / interval</th></tr>"
    )
    return f"<table>{head}{''.join(rows)}</table>"


# -- the page ----------------------------------------------------------------


def render_dashboard(
    status: Dict[str, Any],
    timeseries: Dict[str, Any],
    alerts: Dict[str, Any],
    snapshot: Optional[Dict[str, Any]] = None,
    refresh_s: Optional[int] = 3,
) -> str:
    """The daemon dashboard as one self-contained HTML document."""
    snapshot = snapshot or {}
    refresh = (
        f'<meta http-equiv="refresh" content="{int(refresh_s)}">'
        if refresh_s else ""
    )
    queue = status.get("queue", {})
    pool = status.get("pool", {})
    subs = status.get("submissions", {})
    firing = alerts.get("firing", [])
    state_cls = "firing" if firing else "ok"
    state_text = (
        "SLO FIRING: " + ", ".join(_esc(f) for f in firing)
        if firing else "all SLOs ok"
    )
    tiles = "".join([
        _tile("daemon", status.get("state", "?")),
        _tile("uptime (s)", _fmt_num(status.get("uptime_s", 0))),
        _tile("queue depth", f"{queue.get('depth', 0)}"
              f" / {queue.get('capacity', '?')}"),
        _tile("workers", pool.get("workers", "?")),
        _tile("done", subs.get("done", 0)),
        _tile("failed", subs.get("failed", 0)),
    ])
    body = f"""
<h1>repro serve &mdash; fleet dashboard</h1>
<p class="sub">state <span class="state {state_cls}">{state_text}</span>
 &middot; alerts evaluated at t={_esc(alerts.get('now', '?'))}
 &middot; auto-refresh {int(refresh_s) if refresh_s else 'off'}s</p>
<div class="tiles">{tiles}</div>
<h2>SLO burn rates</h2>
{_alert_panel(alerts)}
<h2>fleet</h2>
{_fleet_cards(timeseries)}
<h2>tenants</h2>
{_tenant_table(snapshot, timeseries)}
"""
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head>"
        '<meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f"{refresh}<title>repro serve dashboard</title>"
        f"<style>{_STYLE}</style></head>\n<body>{body}</body></html>\n"
    )
