"""Forensic artifacts from a recorded execution timeline.

Consumes :meth:`~repro.obs.timeline.TimelineRecorder.to_payload` and
produces three shareable explanations of one run:

* :func:`chrome_trace` — Chrome trace-event JSON: open it in Perfetto
  (https://ui.perfetto.dev) or ``chrome://tracing``.  Threads are
  tracks, SFRs are duration slices, sync operations are instant
  events, happens-before edges are flow arrows and a race is a global
  instant marker.  Timestamps are the recorder's logical clock.
* :func:`build_hb_graph` / :func:`hb_graph_dot` — the happens-before
  graph over SFR nodes ``T<tid>:R<region>``, with program-order edges
  added and the racing pair resolved: a reported race is *certified* by
  the absence of any directed HB path between its two SFRs.
* :func:`render_html` — a zero-dependency single-file HTML report:
  inline SVG swimlanes, the race table, recovery/quarantine
  annotations, and a hot-site panel reusing
  :meth:`~repro.obs.sites.SiteProfiler.to_payload`.

Everything here is a pure deterministic function of the payload —
identical payloads produce byte-identical artifacts — and every
artifact is stamped with :data:`FORENSICS_FORMAT_VERSION`.
:func:`write_forensics` bundles all of them into a directory.
"""

from __future__ import annotations

import html as _html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .timeline import TIMELINE_FORMAT_VERSION

__all__ = [
    "FORENSICS_FORMAT_VERSION",
    "build_hb_graph",
    "chrome_trace",
    "hb_graph_dot",
    "render_html",
    "validate_chrome_trace",
    "write_forensics",
]

#: Schema major stamped into every emitted artifact.
FORENSICS_FORMAT_VERSION = 1

_EDGE_COLORS = {
    "fork": "#7b1fa2",
    "join": "#7b1fa2",
    "lock": "#1565c0",
    "barrier": "#2e7d32",
    "cond": "#ef6c00",
    "sem": "#00838f",
    "program": "#9e9e9e",
}


def _check_payload(payload: Dict[str, Any]) -> None:
    major = payload.get("format")
    if not isinstance(major, int) or major > TIMELINE_FORMAT_VERSION:
        raise ValueError(
            f"unknown timeline payload format {major!r} "
            f"(this build reads <= {TIMELINE_FORMAT_VERSION})"
        )


def _node_id(tid: int, region: int) -> str:
    return f"T{tid}:R{region}"


def _racing_pair(
    payload: Dict[str, Any],
) -> Optional[Dict[str, Any]]:
    """The racing SFR pair as node references, or ``None`` for clean runs.

    Prefers the :class:`~repro.diagnostics.RaceReport` payload (exact
    ``region_index`` for both sides); without one falls back to the last
    recorded segment of each involved thread and marks the pair
    approximate.
    """
    report = payload.get("race_report")
    if report is not None:
        current = report["current"]
        previous = report.get("previous")
        return {
            "current": [current["tid"], current["region_index"]],
            "previous": (
                [previous["tid"], previous["region_index"]]
                if previous is not None
                else None
            ),
            "approx": False,
        }
    race = payload.get("race")
    if race is None:
        return None

    def last_region(tid: int) -> int:
        regions = [
            s["region"] for s in payload.get("segments", []) if s["tid"] == tid
        ]
        return max(regions) if regions else 0

    return {
        "current": [race["accessing_tid"], last_region(race["accessing_tid"])],
        "previous": [
            race["prior_writer_tid"], last_region(race["prior_writer_tid"])
        ],
        "approx": True,
    }


# -- happens-before graph ----------------------------------------------------


def build_hb_graph(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The happens-before graph (JSON-ready) with the race pair resolved.

    Nodes are SFRs; edges are the recorded sync edges plus per-thread
    program order.  When the payload carries a race, ``pair`` names the
    two SFRs, ``hb_path`` is a connecting path if one exists (it must
    not, for a true race) and ``ordered`` says whether any path was
    found in either direction.
    """
    _check_payload(payload)
    nodes: Dict[str, Dict[str, Any]] = {}
    per_thread: Dict[int, List[int]] = {}
    for seg in payload.get("segments", []):
        nid = _node_id(seg["tid"], seg["region"])
        node = nodes.get(nid)
        if node is None:
            nodes[nid] = {
                "id": nid,
                "tid": seg["tid"],
                "region": seg["region"],
                "start": seg["start"],
                "end": seg["end"],
                "aborted": bool(seg.get("aborted")),
                "retries": seg.get("retry", 0),
            }
            per_thread.setdefault(seg["tid"], []).append(seg["region"])
        else:
            # A rolled-back SFR reopens the same region: merge spans.
            node["start"] = min(node["start"], seg["start"])
            node["end"] = max(node["end"], seg["end"])
            node["aborted"] = node["aborted"] or bool(seg.get("aborted"))
            node["retries"] = max(node["retries"], seg.get("retry", 0))

    edges: List[Dict[str, Any]] = []
    for tid, regions in sorted(per_thread.items()):
        ordered = sorted(set(regions))
        for a, b in zip(ordered, ordered[1:]):
            edges.append(
                {
                    "kind": "program",
                    "target": f"T{tid}",
                    "src": _node_id(tid, a),
                    "dst": _node_id(tid, b),
                }
            )
    for edge in payload.get("edges", []):
        src = _node_id(edge["src"][0], edge["src"][1])
        dst = _node_id(edge["dst"][0], edge["dst"][1])
        edges.append(
            {"kind": edge["kind"], "target": edge["target"],
             "src": src, "dst": dst}
        )

    adjacency: Dict[str, List[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge["src"], []).append(edge["dst"])

    def path(start: str, goal: str) -> Optional[List[str]]:
        if start not in nodes or goal not in nodes:
            return None
        frontier, came_from = [start], {start: start}
        while frontier:
            nxt: List[str] = []
            for nid in frontier:
                for succ in sorted(adjacency.get(nid, [])):
                    if succ in came_from:
                        continue
                    came_from[succ] = nid
                    if succ == goal:
                        chain = [goal]
                        while chain[-1] != start:
                            chain.append(came_from[chain[-1]])
                        return list(reversed(chain))
                    nxt.append(succ)
            frontier = nxt
        return None

    pair = _racing_pair(payload)
    hb_path: Optional[List[str]] = None
    ordered_verdict: Optional[bool] = None
    if pair is not None and pair["previous"] is not None:
        a = _node_id(*pair["previous"])
        b = _node_id(*pair["current"])
        hb_path = path(a, b) or path(b, a)
        ordered_verdict = hb_path is not None
    return {
        "format": FORENSICS_FORMAT_VERSION,
        "timeline_format": payload.get("format"),
        "label": payload.get("label"),
        "nodes": [nodes[k] for k in sorted(nodes)],
        "edges": edges,
        "race": payload.get("race"),
        "pair": pair,
        "hb_path": hb_path,
        "ordered": ordered_verdict,
    }


def hb_graph_dot(graph: Dict[str, Any]) -> str:
    """The HB graph as Graphviz DOT, racing pair highlighted."""
    pair = graph.get("pair") or {}
    highlighted = set()
    if pair:
        highlighted.add(_node_id(*pair["current"]))
        if pair.get("previous") is not None:
            highlighted.add(_node_id(*pair["previous"]))
    on_path = set(graph.get("hb_path") or [])
    lines = [
        "digraph happens_before {",
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
        f'  label="{graph.get("label", "run")}: happens-before over SFRs'
        + (
            " — racing pair has NO connecting path"
            if pair and graph.get("ordered") is False
            else ""
        )
        + '";',
    ]
    by_tid: Dict[int, List[Dict[str, Any]]] = {}
    for node in graph["nodes"]:
        by_tid.setdefault(node["tid"], []).append(node)
    for tid, nodes in sorted(by_tid.items()):
        lines.append(f"  subgraph cluster_t{tid} {{")
        lines.append(f'    label="T{tid}";')
        for node in nodes:
            attrs = []
            if node["id"] in highlighted:
                attrs.append('color=red, penwidth=2, style=filled, '
                             'fillcolor="#ffebee"')
            elif node["id"] in on_path:
                attrs.append('color="#1565c0", penwidth=2')
            if node.get("aborted"):
                attrs.append('style=dashed')
            lines.append(
                f'    "{node["id"]}"'
                + (f" [{', '.join(attrs)}]" if attrs else "")
                + ";"
            )
        lines.append("  }")
    for edge in graph["edges"]:
        color = _EDGE_COLORS.get(edge["kind"], "#000000")
        style = "dotted" if edge["kind"] == "program" else "solid"
        lines.append(
            f'  "{edge["src"]}" -> "{edge["dst"]}" '
            f'[color="{color}", style={style}, '
            f'tooltip="{edge["kind"]}:{edge["target"]}"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- Chrome trace-event export -----------------------------------------------

_TRACE_PID = 1


def chrome_trace(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The timeline as Chrome trace-event JSON (Perfetto-loadable).

    ``ts`` is the recorder's logical clock, not microseconds — relative
    order and extent are meaningful, absolute durations are not.
    """
    _check_payload(payload)
    events: List[Dict[str, Any]] = []

    def meta(name: str, tid: int, value: Any) -> None:
        events.append(
            {"ph": "M", "name": name, "pid": _TRACE_PID, "tid": tid,
             "ts": 0, "args": {"name": value}
             if isinstance(value, str) else value}
        )

    meta("process_name", 0, f"repro:{payload.get('label', 'run')}")
    for thread in payload.get("threads", []):
        tid = thread["tid"]
        parent = thread.get("parent")
        suffix = f" (child of T{parent})" if parent is not None else " (root)"
        meta("thread_name", tid, f"T{tid}{suffix}")
        events.append(
            {"ph": "M", "name": "thread_sort_index", "pid": _TRACE_PID,
             "tid": tid, "ts": 0, "args": {"sort_index": tid}}
        )

    for seg in payload.get("segments", []):
        name = f"SFR {seg['region']}"
        if seg.get("aborted"):
            name += " (rolled back)"
        elif seg.get("retry"):
            name += f" (retry {seg['retry']})"
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": "sfr",
                "pid": _TRACE_PID,
                "tid": seg["tid"],
                "ts": seg["start"],
                "dur": max(0, seg["end"] - seg["start"]),
                "args": {
                    "region": seg["region"],
                    "start_det": seg.get("start_det"),
                    "end_det": seg.get("end_det"),
                    "aborted": bool(seg.get("aborted")),
                },
            }
        )

    for event in payload.get("events", []):
        kind = event["kind"]
        if kind in ("race", "deadlock"):
            events.append(
                {
                    "ph": "i",
                    "s": "g",
                    "name": f"{kind}:{event.get('target') or ''}".rstrip(":"),
                    "cat": "race",
                    "pid": _TRACE_PID,
                    "tid": max(0, event["tid"]),
                    "ts": event["lt"],
                    "args": dict(payload.get("race") or {}),
                }
            )
        elif kind not in ("sync_commit", "thread_start", "thread_exit"):
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": kind,
                    "cat": "sync",
                    "pid": _TRACE_PID,
                    "tid": event["tid"],
                    "ts": event["lt"],
                    "args": {"target": event.get("target"),
                             "det": event.get("det")},
                }
            )

    for index, edge in enumerate(payload.get("edges", [])):
        src_tid, _src_region, src_lt = edge["src"]
        dst_tid, _dst_region, dst_lt = edge["dst"]
        common = {"cat": "hb", "id": index, "name": edge["kind"],
                  "pid": _TRACE_PID}
        events.append(
            {"ph": "s", "tid": src_tid, "ts": src_lt,
             "args": {"target": edge["target"]}, **common}
        )
        events.append(
            {"ph": "f", "bp": "e", "tid": dst_tid, "ts": dst_lt,
             "args": {"target": edge["target"]}, **common}
        )

    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "format": FORENSICS_FORMAT_VERSION,
            "timeline_format": payload.get("format"),
            "generator": "repro.obs.forensics",
            "label": payload.get("label"),
            "clock": "logical",
        },
        "traceEvents": events,
    }


def validate_chrome_trace(trace: Dict[str, Any]) -> List[str]:
    """Schema-check a :func:`chrome_trace` document; returns problems.

    Empty list = valid.  Checks the trace-event essentials every viewer
    relies on: a ``traceEvents`` list whose entries carry ``ph``/``ts``/
    ``pid``/``tid``, complete events with a non-negative ``dur``, and
    flow ``s``/``f`` events paired by id.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace document must be an object, got {type(trace).__name__}"]
    major = (trace.get("otherData") or {}).get("format")
    if isinstance(major, int) and major > FORENSICS_FORMAT_VERSION:
        errors.append(
            f"unknown forensics format major {major} "
            f"(this build reads <= {FORENSICS_FORMAT_VERSION})"
        )
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return errors + ["traceEvents must be a list"]
    if not events:
        errors.append("traceEvents is empty")
    flows: Dict[Any, List[str]] = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event #{i} is not an object")
            continue
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append(f"event #{i} missing required key {key!r}")
        ph = event.get("ph")
        if ph not in ("M", "X", "i", "s", "f", "B", "E"):
            errors.append(f"event #{i} has unknown phase {ph!r}")
        for key in ("ts", "pid", "tid"):
            if key in event and not isinstance(event[key], (int, float)):
                errors.append(f"event #{i} {key!r} is not a number")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"event #{i} complete event needs dur >= 0")
        if ph in ("s", "f"):
            if "id" not in event:
                errors.append(f"event #{i} flow event missing id")
            else:
                flows.setdefault(event["id"], []).append(ph)
        if ph != "M" and not event.get("name"):
            errors.append(f"event #{i} missing name")
    for flow_id, phases in sorted(flows.items(), key=lambda kv: str(kv[0])):
        if sorted(phases) != ["f", "s"]:
            errors.append(f"flow id {flow_id} is not an s/f pair: {phases}")
    return errors


# -- the single-file HTML report ---------------------------------------------

_LANE_H = 34
_SVG_W = 960
_MARGIN_L = 70
_MARGIN_R = 20


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


def _svg_lanes(payload: Dict[str, Any], pair: Optional[Dict[str, Any]]) -> str:
    threads = payload.get("threads", [])
    if not threads:
        return "<p>(no threads recorded)</p>"
    tids = [t["tid"] for t in threads]
    lanes = {tid: i for i, tid in enumerate(sorted(tids))}
    max_lt = max(
        [1]
        + [seg["end"] for seg in payload.get("segments", [])]
        + [e["lt"] for e in payload.get("events", [])]
    )
    span = _SVG_W - _MARGIN_L - _MARGIN_R

    def x(lt: int) -> float:
        return round(_MARGIN_L + span * lt / max_lt, 2)

    def y(tid: int) -> int:
        return 24 + lanes[tid] * _LANE_H

    height = 40 + len(lanes) * _LANE_H
    racing_nodes = set()
    if pair is not None:
        racing_nodes.add(tuple(pair["current"]))
        if pair.get("previous") is not None:
            racing_nodes.add(tuple(pair["previous"]))
    parts = [
        f'<svg viewBox="0 0 {_SVG_W} {height}" width="100%" '
        f'xmlns="http://www.w3.org/2000/svg" role="img">',
        '<defs><marker id="arrow" viewBox="0 0 6 6" refX="5" refY="3" '
        'markerWidth="5" markerHeight="5" orient="auto-start-reverse">'
        '<path d="M 0 0 L 6 3 L 0 6 z" fill="context-stroke"/></marker></defs>',
    ]
    for tid in sorted(lanes):
        ly = y(tid)
        parts.append(
            f'<text x="4" y="{ly + 14}" class="lane">T{tid}</text>'
            f'<line x1="{_MARGIN_L}" y1="{ly + 10}" x2="{_SVG_W - _MARGIN_R}" '
            f'y2="{ly + 10}" stroke="#eceff1"/>'
        )
    for seg in payload.get("segments", []):
        sx, ex = x(seg["start"]), x(seg["end"])
        ly = y(seg["tid"])
        racing = (seg["tid"], seg["region"]) in racing_nodes
        fill = (
            "#ffcdd2" if racing
            else "#ffe0b2" if seg.get("aborted")
            else "#c5e1f5"
        )
        stroke = "#c62828" if racing else "#607d8b"
        title = (
            f"T{seg['tid']} SFR {seg['region']} "
            f"[lt {seg['start']}..{seg['end']}]"
            + (" rolled back" if seg.get("aborted") else "")
        )
        parts.append(
            f'<rect x="{sx}" y="{ly}" width="{max(2.0, round(ex - sx, 2))}" '
            f'height="20" rx="3" fill="{fill}" stroke="{stroke}">'
            f"<title>{_esc(title)}</title></rect>"
        )
        if ex - sx > 34:
            parts.append(
                f'<text x="{round(sx + 3, 2)}" y="{ly + 14}" class="seg">'
                f"R{seg['region']}</text>"
            )
    for edge in payload.get("edges", []):
        src_tid, _sr, src_lt = edge["src"]
        dst_tid, _dr, dst_lt = edge["dst"]
        if src_tid not in lanes or dst_tid not in lanes:
            continue
        color = _EDGE_COLORS.get(edge["kind"], "#000")
        parts.append(
            f'<line x1="{x(src_lt)}" y1="{y(src_tid) + 10}" '
            f'x2="{x(dst_lt)}" y2="{y(dst_tid) + 10}" stroke="{color}" '
            f'stroke-width="1.2" opacity="0.75" marker-end="url(#arrow)">'
            f'<title>{_esc(edge["kind"] + " via " + str(edge["target"]))}'
            f"</title></line>"
        )
    for event in payload.get("events", []):
        if event["kind"] == "race":
            ex = x(event["lt"])
            parts.append(
                f'<line x1="{ex}" y1="8" x2="{ex}" y2="{height - 8}" '
                'stroke="#c62828" stroke-width="2" stroke-dasharray="4 3">'
                f'<title>race ({_esc(event.get("target"))})</title></line>'
            )
    parts.append("</svg>")
    return "".join(parts)


def render_html(
    payload: Dict[str, Any],
    sites: Optional[Dict[str, Any]] = None,
    graph: Optional[Dict[str, Any]] = None,
) -> str:
    """The self-contained HTML forensics report (no external assets)."""
    _check_payload(payload)
    if graph is None:
        graph = build_hb_graph(payload)
    pair = graph.get("pair")
    race = payload.get("race")
    report = payload.get("race_report")
    recovery = payload.get("recovery")
    label = payload.get("label", "run")

    def pair_name(ref: Optional[List[int]]) -> str:
        if ref is None:
            return "(no recorded shared write)"
        return f"thread {ref[0]}, SFR #{ref[1]}"

    body: List[str] = [
        f"<h1>Race forensics: {_esc(label)}</h1>",
        '<p class="meta">timeline format '
        f"{_esc(payload.get('format'))} · forensics format "
        f"{FORENSICS_FORMAT_VERSION} · {_esc(payload.get('steps'))} steps · "
        f"{len(payload.get('threads', []))} thread(s) · "
        f"{len(payload.get('segments', []))} SFR segment(s) · "
        f"{len(payload.get('edges', []))} HB edge(s)</p>",
    ]
    if race is not None:
        verdict = (
            "no happens-before path connects the racing SFRs"
            if graph.get("ordered") is False
            else "a happens-before path was found (unexpected for a race)"
            if graph.get("ordered")
            else "happens-before verdict unavailable"
        )
        body.append(
            '<div class="race"><h2>'
            f"{_esc(race['kind'])} race on address "
            f"{_esc(hex(race['address']))}</h2>"
            "<table><tr><th></th><th>SFR</th></tr>"
            f"<tr><td>second access</td><td>{_esc(pair_name(pair['current']))}"
            "</td></tr>"
            f"<tr><td>first access</td><td>"
            f"{_esc(pair_name(pair.get('previous')))}</td></tr></table>"
            f"<p><strong>{_esc(verdict)}</strong></p></div>"
        )
        if report is not None and report.get("text"):
            body.append(
                f"<pre class=\"report\">{_esc(report['text'])}</pre>"
            )
    else:
        body.append(
            '<div class="clean"><h2>No race detected</h2>'
            "<p>The run completed; every conflicting access pair was "
            "ordered by synchronization.</p></div>"
        )
    body.append("<h2>Execution timeline</h2>")
    body.append(
        '<p class="legend">SFRs per thread on a logical clock; arrows are '
        "happens-before edges "
        + " · ".join(
            f'<span style="color:{color}">{kind}</span>'
            for kind, color in sorted(_EDGE_COLORS.items())
            if kind != "program"
        )
        + "; a dashed red rule marks the race.</p>"
    )
    body.append(_svg_lanes(payload, pair))
    if recovery is not None and (recovery.get("events")
                                 or recovery.get("deadlocked")):
        rows = "".join(
            f"<tr><td>{_esc(e['step'])}</td><td>T{_esc(e['tid'])}</td>"
            f"<td>{_esc(e['kind'])}</td><td>{_esc(hex(e['address']))}</td>"
            f"<td>{_esc(e['region'])}</td><td>{_esc(e['action'])}</td></tr>"
            for e in recovery.get("events", [])
        )
        body.append(
            f"<h2>Recovery ({_esc(recovery.get('policy'))})</h2>"
            "<table><tr><th>step</th><th>thread</th><th>kind</th>"
            "<th>address</th><th>SFR</th><th>action</th></tr>"
            f"{rows}</table>"
        )
        if recovery.get("quarantined"):
            parked = ", ".join(f"T{t}" for t in recovery["quarantined"])
            body.append(f"<p>quarantined threads: {_esc(parked)}</p>")
        if recovery.get("deadlocked"):
            body.append(
                '<p class="warn">run ended in a post-quarantine deadlock '
                "(graceful stop, not a hang)</p>"
            )
    if sites and sites.get("addresses"):
        ranked = sorted(
            sites["addresses"].items(),
            key=lambda kv: (-kv[1].get("checks", 0), int(kv[0])),
        )[:10]
        rows = "".join(
            f"<tr><td>{_esc(hex(int(addr)))}</td>"
            f"<td>{_esc(stats.get('checks', 0))}</td>"
            f"<td>{_esc(stats.get('reads', 0))}</td>"
            f"<td>{_esc(stats.get('writes', 0))}</td>"
            f"<td>{_esc(stats.get('same_epoch', 0))}</td>"
            f"<td>{_esc(stats.get('races', 0))}</td></tr>"
            for addr, stats in ranked
        )
        body.append(
            "<h2>Hot sites (top 10 by race-check work)</h2>"
            "<table><tr><th>address</th><th>checks</th><th>reads</th>"
            "<th>writes</th><th>same-epoch</th><th>races</th></tr>"
            f"{rows}</table>"
        )
    style = (
        "body{font-family:system-ui,sans-serif;margin:2em auto;max-width:64em;"
        "color:#263238}h1{font-size:1.4em}h2{font-size:1.1em;margin-top:1.6em}"
        "table{border-collapse:collapse;font-size:0.9em}"
        "td,th{border:1px solid #cfd8dc;padding:0.3em 0.7em;text-align:left}"
        ".race{border:2px solid #c62828;border-radius:6px;padding:0 1em 1em}"
        ".clean{border:2px solid #2e7d32;border-radius:6px;padding:0 1em 1em}"
        ".meta,.legend{color:#607d8b;font-size:0.85em}"
        ".warn{color:#c62828}pre.report{background:#eceff1;padding:1em;"
        "border-radius:4px;overflow-x:auto}"
        "text.lane{font:12px monospace;fill:#455a64}"
        "text.seg{font:10px monospace;fill:#37474f}"
    )
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        f"<title>race forensics: {_esc(label)}</title>"
        f"<style>{style}</style></head>\n<body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


# -- the bundle --------------------------------------------------------------


def write_forensics(
    out_dir: Union[str, Path],
    basename: str,
    payload: Dict[str, Any],
    sites: Optional[Dict[str, Any]] = None,
) -> Dict[str, str]:
    """Write the full forensics bundle; returns artifact kind -> path.

    Four files under ``out_dir``: ``<basename>.trace.json`` (Chrome
    trace), ``<basename>.hb.json`` + ``<basename>.hb.dot`` (HB graph)
    and ``<basename>.html`` (the standalone report).  All byte-
    deterministic functions of ``payload``/``sites``.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    graph = build_hb_graph(payload)
    artifacts = {
        "trace": out / f"{basename}.trace.json",
        "hb_json": out / f"{basename}.hb.json",
        "hb_dot": out / f"{basename}.hb.dot",
        "html": out / f"{basename}.html",
    }
    artifacts["trace"].write_text(
        json.dumps(chrome_trace(payload), sort_keys=True,
                   separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    artifacts["hb_json"].write_text(
        json.dumps(graph, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    artifacts["hb_dot"].write_text(hb_graph_dot(graph), encoding="utf-8")
    artifacts["html"].write_text(
        render_html(payload, sites=sites, graph=graph), encoding="utf-8"
    )
    return {kind: str(path) for kind, path in artifacts.items()}
