"""Declarative SLOs with multi-window burn-rate alerting.

An :class:`Objective` states what "good service" means as a *good-event
fraction* target (``target=0.99`` → a 1% error budget).  Three kinds
cover the serve daemon:

``availability``
    good = completed verdicts, bad = failed submissions
    (``serve.completed`` / ``serve.failed`` counter deltas).

``latency_p99``
    good = requests finishing within ``threshold_s``, measured from the
    ``serve.latency`` histogram's cumulative bucket series (the smallest
    bucket bound >= the threshold classifies each request); the window's
    estimated p99 is reported alongside.

``shed_rate``
    bad = submissions shed by admission (``serve.queue_rejected`` +
    ``serve.quota_denied``), total = all submissions.

Every objective is evaluated over one or more **window pairs** — the
standard multi-window burn-rate recipe: the *burn rate* is
``bad_ratio / (1 - target)`` (1.0 = spending the budget exactly at the
sustainable rate), and a pair fires only when **both** its long and its
short window burn above the pair's threshold — the long window proves
the problem is material, the short one proves it is still happening, so
alerts both catch fast burns quickly and reset promptly once the bleed
stops.

Evaluation is a pure function of a :class:`~repro.obs.timeseries.TimeSeriesStore`
and a wall-clock "now" (defaulting to the store's newest sample, so a
scraped artifact evaluates identically offline — that is what
``repro slo`` does); the daemon serves the same computation at
``GET /alerts``.

Config files are JSON::

    {"objectives": [
      {"name": "availability", "kind": "availability", "target": 0.99},
      {"name": "latency", "kind": "latency_p99", "target": 0.95,
       "threshold_s": 2.5,
       "windows": [[300, 60, 2.0], [60, 15, 6.0]]}
    ]}

Omitted fields take the defaults below; unknown kinds or malformed
windows are rejected loudly at load time, not at alert time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .timeseries import TimeSeriesStore

__all__ = [
    "Objective",
    "SLO_FORMAT_VERSION",
    "default_slos",
    "evaluate_slos",
    "load_slo_config",
    "render_slo_text",
]

#: Schema major stamped into every ``/alerts`` payload.
SLO_FORMAT_VERSION = 1

#: Objective kinds this engine evaluates.
KINDS = ("availability", "latency_p99", "shed_rate")

#: Default window pairs: (long_s, short_s, burn_threshold).  Tuned to
#: the daemon's scale (sessions measured in minutes, ring buffers in
#: samples-per-second), not a 30-day page budget: a fast pair that
#: fires within a minute of a hard burn, and a slow pair for sustained
#: bleed.
DEFAULT_WINDOWS: Tuple[Tuple[float, float, float], ...] = (
    (300.0, 60.0, 2.0),
    (60.0, 15.0, 6.0),
)


@dataclass
class Objective:
    """One declarative service-level objective."""

    name: str
    kind: str
    target: float
    #: Latency objectives only: the "good request" latency bound.
    threshold_s: float = 1.0
    #: ``(long_s, short_s, burn_threshold)`` pairs.
    windows: Tuple[Tuple[float, float, float], ...] = DEFAULT_WINDOWS
    #: Fewer total events than this in the long window → not firing
    #: (an empty daemon is in SLO, and one early failure must not page).
    min_events: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; one of {KINDS}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), not {self.target!r}"
            )
        windows = []
        for entry in self.windows:
            if len(entry) != 3:
                raise ValueError(
                    f"SLO window must be [long_s, short_s, burn_threshold], "
                    f"not {entry!r}"
                )
            long_s, short_s, burn = (float(x) for x in entry)
            if not 0 < short_s <= long_s:
                raise ValueError(
                    f"SLO window needs 0 < short_s <= long_s, got {entry!r}"
                )
            windows.append((long_s, short_s, burn))
        self.windows = tuple(windows)

    @property
    def budget(self) -> float:
        """The error budget: the allowed bad-event fraction."""
        return 1.0 - self.target

    def to_payload(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "windows": [list(w) for w in self.windows],
            "min_events": self.min_events,
        }
        if self.kind == "latency_p99":
            payload["threshold_s"] = self.threshold_s
        return payload


def default_slos() -> List[Objective]:
    """The serve daemon's out-of-the-box objectives."""
    return [
        Objective(name="availability", kind="availability", target=0.99),
        Objective(
            name="latency-p99", kind="latency_p99", target=0.95,
            threshold_s=5.0,
        ),
        Objective(name="shed-rate", kind="shed_rate", target=0.5),
    ]


def load_slo_config(source: Any) -> List[Objective]:
    """Objectives from a config path, JSON text, or parsed dict."""
    if isinstance(source, str):
        if source.lstrip().startswith("{"):
            payload = json.loads(source)
        else:
            with open(source) as fh:
                payload = json.load(fh)
    else:
        payload = source
    entries = payload.get("objectives")
    if not isinstance(entries, list) or not entries:
        raise ValueError('SLO config needs a non-empty "objectives" list')
    objectives = []
    for entry in entries:
        kwargs = dict(entry)
        if "windows" in kwargs:
            kwargs["windows"] = tuple(tuple(w) for w in kwargs["windows"])
        try:
            objectives.append(Objective(**kwargs))
        except TypeError as exc:
            raise ValueError(f"bad SLO objective {entry!r}: {exc}") from None
    names = [o.name for o in objectives]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate SLO objective names in {names}")
    return objectives


# -- counting good/bad events over a window ---------------------------------


def _counter_delta(store: TimeSeriesStore, name: str, seconds: float,
                   now: float) -> float:
    return max(0.0, store.delta(name, seconds, now))


def _bad_total(
    objective: Objective,
    store: TimeSeriesStore,
    seconds: float,
    now: float,
) -> Tuple[float, float]:
    """``(bad_events, total_events)`` for one objective over a window."""
    if objective.kind == "availability":
        done = _counter_delta(store, "serve.completed", seconds, now)
        failed = _counter_delta(store, "serve.failed", seconds, now)
        return failed, done + failed
    if objective.kind == "shed_rate":
        shed = (
            _counter_delta(store, "serve.queue_rejected", seconds, now)
            + _counter_delta(store, "serve.quota_denied", seconds, now)
        )
        total = _counter_delta(store, "serve.submissions", seconds, now)
        return shed, total
    # latency_p99: classify each request by the smallest histogram
    # bucket bound >= threshold_s (cumulative buckets, so a delta of the
    # bound series counts the window's requests at or under the bound).
    total = _counter_delta(store, "serve.latency.count", seconds, now)
    bound = _threshold_bound(store, objective.threshold_s)
    if bound is None:
        # No finite bound at/above the threshold: every bucketed request
        # counts as good only if it is under the largest finite bound —
        # with no bounds at all there is nothing to alert on.
        return 0.0, total
    good = _counter_delta(store, f"serve.latency.le.{bound}", seconds, now)
    return max(0.0, total - good), total


def _latency_bounds(store: TimeSeriesStore) -> List[Tuple[float, str]]:
    """The finite ``serve.latency`` bucket bounds present in the store,
    as ``(numeric_bound, series_suffix)`` sorted ascending."""
    bounds = []
    prefix = "serve.latency.le."
    for name in store.names():
        if not name.startswith(prefix) or "{" in name:
            continue
        text = name[len(prefix):]
        if text == "inf":
            continue
        try:
            bounds.append((float(text), text))
        except ValueError:
            continue
    bounds.sort()
    return bounds


def _threshold_bound(
    store: TimeSeriesStore, threshold_s: float
) -> Optional[str]:
    """The series suffix of the smallest bucket bound >= threshold."""
    for bound, text in _latency_bounds(store):
        if bound >= threshold_s:
            return text
    return None


def _estimate_p99(
    store: TimeSeriesStore, seconds: float, now: float
) -> Optional[float]:
    """The window's p99 latency, as the smallest bucket bound covering
    99% of its requests (an upper estimate; None without data)."""
    total = _counter_delta(store, "serve.latency.count", seconds, now)
    if total <= 0:
        return None
    need = 0.99 * total
    for bound, text in _latency_bounds(store):
        if _counter_delta(store, f"serve.latency.le.{text}", seconds,
                          now) >= need:
            return bound
    return float("inf")


# -- evaluation --------------------------------------------------------------


def _window_state(
    objective: Objective,
    store: TimeSeriesStore,
    seconds: float,
    burn_threshold: float,
    now: float,
) -> Dict[str, Any]:
    bad, total = _bad_total(objective, store, seconds, now)
    ratio = (bad / total) if total > 0 else 0.0
    budget = objective.budget
    burn = (ratio / budget) if budget > 0 else (0.0 if bad == 0 else
                                                float("inf"))
    return {
        "seconds": seconds,
        "bad": round(bad, 6),
        "total": round(total, 6),
        "bad_ratio": round(ratio, 6),
        "burn_rate": round(burn, 4),
        "burning": bool(burn >= burn_threshold and total >= 1),
    }


def evaluate_slos(
    store: TimeSeriesStore,
    objectives: Sequence[Objective],
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Every objective's burn-rate state — the ``/alerts`` document.

    ``now`` defaults to the store's newest sample timestamp, which makes
    the evaluation a pure function of the data: re-running it against a
    scraped ``/timeseries`` artifact (``repro slo``) yields the same
    verdicts the live endpoint served.
    """
    if now is None:
        now = store.latest_time() or 0.0
    results = []
    firing: List[str] = []
    for objective in objectives:
        pairs = []
        obj_firing = False
        for long_s, short_s, burn_threshold in objective.windows:
            long_state = _window_state(
                objective, store, long_s, burn_threshold, now
            )
            short_state = _window_state(
                objective, store, short_s, burn_threshold, now
            )
            pair_firing = bool(
                long_state["burning"]
                and short_state["burning"]
                and long_state["total"] >= objective.min_events
            )
            obj_firing = obj_firing or pair_firing
            pairs.append({
                "long_s": long_s,
                "short_s": short_s,
                "burn_threshold": burn_threshold,
                "long": long_state,
                "short": short_state,
                "firing": pair_firing,
            })
        entry: Dict[str, Any] = {
            "objective": objective.to_payload(),
            "windows": pairs,
            "firing": obj_firing,
        }
        if objective.kind == "latency_p99":
            longest = max(w[0] for w in objective.windows)
            p99 = _estimate_p99(store, longest, now)
            entry["p99_s"] = (
                None if p99 is None
                else ("inf" if p99 == float("inf") else p99)
            )
        results.append(entry)
        if obj_firing:
            firing.append(objective.name)
    return {
        "version": SLO_FORMAT_VERSION,
        "now": round(now, 3),
        "objectives": results,
        "firing": sorted(firing),
        "ok": not firing,
    }


def render_slo_text(report: Dict[str, Any]) -> str:
    """A fixed-width terminal rendering of an ``/alerts`` document."""
    lines = []
    state = "OK" if report["ok"] else "FIRING: " + ", ".join(report["firing"])
    lines.append(f"SLO state: {state}")
    for entry in report["objectives"]:
        obj = entry["objective"]
        head = f"  {obj['name']} ({obj['kind']}, target {obj['target']:.3g}"
        if obj["kind"] == "latency_p99":
            head += f", threshold {obj['threshold_s']:g}s"
        head += ")"
        if entry.get("p99_s") is not None:
            head += f"  p99~{entry['p99_s']}s"
        lines.append(head + ("  ** FIRING **" if entry["firing"] else ""))
        for pair in entry["windows"]:
            lines.append(
                f"    {pair['long_s']:g}s/{pair['short_s']:g}s "
                f"burn>={pair['burn_threshold']:g}: "
                f"long {pair['long']['burn_rate']:g} "
                f"({pair['long']['bad']:g}/{pair['long']['total']:g} bad), "
                f"short {pair['short']['burn_rate']:g}"
                + ("  FIRING" if pair["firing"] else "")
            )
    return "\n".join(lines)
