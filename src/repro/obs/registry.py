"""Metric instruments and the registry that names them.

Three instrument kinds cover everything the reproduction measures:

* :class:`Counter` - a monotone event count (``mem.reads.shared``);
* :class:`Gauge` - a point-in-time value (``detector.epoch_table.touched_bytes``);
* :class:`Histogram` - a distribution with fixed bucket bounds
  (``sfr.length``).

A :class:`MetricsRegistry` is a flat namespace of instruments, created
on first use.  Names are dotted strings; the glossary lives in
``docs/observability.md``.  Snapshots are plain dicts (JSON-ready), and
``diff`` turns two snapshots into the delta a single phase contributed —
the idiom the hardware simulator uses to discard its warmup pass.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

#: Default histogram bounds: powers of two up to ~1M, a good fit for the
#: instruction/SFR-length scales the runtime produces.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(21))

Number = Union[int, float]


class Counter:
    """Monotone event counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Count ``amount`` more events."""
        self.value += amount

    def set_to(self, value: Number) -> None:
        """Mirror an externally-maintained cumulative count.

        Publishing bridges (detector stats, simulator stats) re-publish
        whole snapshots; assignment keeps repeated publishes idempotent
        where ``inc`` would double-count.
        """
        self.value = value

    def snapshot(self) -> Number:
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value; also tracks the maximum it ever held."""

    __slots__ = ("name", "value", "high_water")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.high_water: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount: Number) -> None:
        self.set(self.value + amount)

    def snapshot(self) -> Number:
        return self.value

    def reset(self) -> None:
        self.value = 0
        self.high_water = 0


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Optional[Sequence[Number]] = None) -> None:
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds) if bounds else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # One bucket per bound (value <= bound) plus one overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                [bound, n] for bound, n in zip(self.bounds, self.bucket_counts)
                if n
            ] + ([[None, self.bucket_counts[-1]]] if self.bucket_counts[-1] else []),
        }

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, create-on-first-use namespace of metric instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``
    (silent kind confusion is how telemetry numbers go quietly wrong).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[Number]] = None
    ) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a histogram"
            )
        return instrument

    def _get(self, name: str, cls: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    # -- one-line recording convenience -----------------------------------

    def inc(self, name: str, amount: Number = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- introspection -----------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str) -> object:
        """Snapshot value of one instrument (KeyError if absent)."""
        return self._instruments[name].snapshot()

    def instruments(self) -> Iterable[Instrument]:
        return (self._instruments[name] for name in self.names())

    # -- snapshot / diff / export ------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All instruments as a plain JSON-ready dict, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    @staticmethod
    def diff(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, object]:
        """What changed between two snapshots.

        Scalar entries (counters/gauges) report ``after - before``;
        histogram entries report the delta of ``count`` and ``sum``.
        Entries absent from ``before`` count from zero; unchanged entries
        are omitted.
        """
        delta: Dict[str, object] = {}
        for name, now in after.items():
            prev = before.get(name)
            if isinstance(now, dict):
                prev_count = prev.get("count", 0) if isinstance(prev, dict) else 0
                prev_sum = prev.get("sum", 0) if isinstance(prev, dict) else 0
                d_count = now.get("count", 0) - prev_count
                d_sum = now.get("sum", 0) - prev_sum
                if d_count or d_sum:
                    delta[name] = {"count": d_count, "sum": d_sum}
            else:
                d = now - (prev if isinstance(prev, (int, float)) else 0)
                if d:
                    delta[name] = d
        return delta

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable fixed-width table of the current snapshot."""
        lines = []
        width = max((len(n) for n in self.names()), default=0)
        for name in self.names():
            value = self._instruments[name].snapshot()
            if isinstance(value, dict):
                value = (
                    f"count={value['count']} sum={value['sum']} "
                    f"mean={value['mean']:.2f} max={value['max']}"
                )
            elif isinstance(value, float):
                value = f"{value:.4f}"
            lines.append(f"{name.ljust(width)}  {value}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument in place (instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()
