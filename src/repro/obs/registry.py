"""Metric instruments and the registry that names them.

Three instrument kinds cover everything the reproduction measures:

* :class:`Counter` - a monotone event count (``mem.reads.shared``);
* :class:`Gauge` - a point-in-time value (``detector.epoch_table.touched_bytes``);
* :class:`Histogram` - a distribution with fixed bucket bounds
  (``sfr.length``).

A :class:`MetricsRegistry` is a flat namespace of instruments, created
on first use.  Names are dotted strings; the glossary lives in
``docs/observability.md``.  Snapshots are plain dicts (JSON-ready), and
``diff`` turns two snapshots into the delta a single phase contributed —
the idiom the hardware simulator uses to discard its warmup pass.

Instruments additionally have well-defined **merge** semantics so
telemetry survives process fan-out (the parallel experiment runner ships
each worker's snapshot back to the parent):

* counters *add* (``merge(v)`` == ``inc(v)``) — order-independent;
* gauges *take the incoming value* (last-write-wins) while the high
  water mark takes the maximum — merging in submission order therefore
  reproduces a serial run exactly;
* histograms add bucket-by-bucket (bounds must be compatible: every
  incoming bucket bound must exist in the receiving histogram).

``MetricsRegistry.merge_snapshot(snapshot, kinds)`` applies one worker
snapshot; because a scalar snapshot value cannot distinguish a counter
from a gauge, the optional ``kinds`` mapping (from
:meth:`MetricsRegistry.kinds`) carries the instrument kind — without it,
unknown scalar names default to counters.

**Labels.**  Every instrument accessor takes an optional ``labels``
mapping (``registry.inc("serve.accepted", labels={"tenant": "t1"})``).
A labeled instrument lives in the same flat namespace under its
*canonical name*: the base name plus a ``{key="value",...}`` suffix with
keys sorted and values escaped (backslash, double quote, newline — the
Prometheus label-value alphabet), e.g. ``serve.latency{tenant="t1"}``.
Because a canonical name is just a name, snapshots, ``diff``, merges and
the cross-process pipeline handle labeled series with zero new
machinery, and merging the same snapshots in the same order stays
byte-deterministic.  One constraint is enforced on top: every label set
of a base name must share one instrument kind (``serve.accepted`` as a
counter and ``serve.accepted{tenant="t1"}`` as a gauge is the kind
confusion the registry exists to prevent).
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BOUNDS",
    "labeled_name",
    "split_labels",
]

#: Default histogram bounds: powers of two up to ~1M, a good fit for the
#: instruction/SFR-length scales the runtime produces.
DEFAULT_BOUNDS: Tuple[int, ...] = tuple(2 ** i for i in range(21))

Number = Union[int, float]

#: Label keys share the Prometheus label-name alphabet.
_LABEL_KEY = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*$")

#: Escapes applied to label values inside a canonical name (and by the
#: Prometheus renderer — the exposition spec's exact three).
_ESCAPES = (("\\", "\\\\"), ("\"", "\\\""), ("\n", "\\n"))


def escape_label_value(value: str) -> str:
    """A label value with backslash, double quote and newline escaped."""
    for raw, escaped in _ESCAPES:
        value = value.replace(raw, escaped)
    return value


def _unescape_label_value(value: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            out.append({"\\": "\\", '"': '"', "n": "\n"}.get(nxt, nxt))
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def labeled_name(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """The canonical registry name for ``name`` + ``labels``.

    Keys are sorted (so any insertion order canonicalizes to one name)
    and values escaped; an empty/None label set is just ``name``.
    """
    if not labels:
        return name
    if "{" in name:
        raise ValueError(f"base metric name {name!r} already carries labels")
    parts = []
    for key in sorted(labels):
        if not _LABEL_KEY.match(key):
            raise ValueError(f"invalid label key {key!r}")
        parts.append(f'{key}="{escape_label_value(str(labels[key]))}"')
    return f"{name}{{{','.join(parts)}}}"


def split_labels(name: str) -> Tuple[str, Tuple[Tuple[str, str], ...]]:
    """A canonical name split back into ``(base, ((key, value), ...))``.

    The inverse of :func:`labeled_name`; a plain name returns an empty
    label tuple.
    """
    brace = name.find("{")
    if brace < 0:
        return name, ()
    if not name.endswith("}"):
        raise ValueError(f"malformed labeled metric name {name!r}")
    base, block = name[:brace], name[brace + 1:-1]
    labels: List[Tuple[str, str]] = []
    i = 0
    while i < len(block):
        eq = block.index("=", i)
        key = block[i:eq]
        if block[eq + 1] != '"':
            raise ValueError(f"malformed labeled metric name {name!r}")
        j = eq + 2
        while j < len(block):
            if block[j] == "\\":
                j += 2
                continue
            if block[j] == '"':
                break
            j += 1
        else:
            raise ValueError(f"malformed labeled metric name {name!r}")
        labels.append((key, _unescape_label_value(block[eq + 2:j])))
        i = j + 2  # skip closing quote and the comma
    return base, tuple(labels)


class Counter:
    """Monotone event counter."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        """Count ``amount`` more events."""
        self.value += amount

    def set_to(self, value: Number) -> None:
        """Mirror an externally-maintained cumulative count.

        Publishing bridges (detector stats, simulator stats) re-publish
        whole snapshots; assignment keeps repeated publishes idempotent
        where ``inc`` would double-count.
        """
        self.value = value

    def merge(self, value: Number) -> None:
        """Fold another counter's snapshot in: counts add."""
        self.value += value

    def snapshot(self) -> Number:
        return self.value

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value; also tracks the maximum it ever held."""

    __slots__ = ("name", "value", "high_water")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0
        self.high_water: Number = 0

    def set(self, value: Number) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def add(self, amount: Number) -> None:
        self.set(self.value + amount)

    def merge(self, value: Number) -> None:
        """Fold another gauge's snapshot in: last write wins, the high
        water mark keeps the maximum either side ever held."""
        self.set(value)

    def snapshot(self) -> Number:
        return self.value

    def reset(self) -> None:
        self.value = 0
        self.high_water = 0


class Histogram:
    """Fixed-bound bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, bounds: Optional[Sequence[Number]] = None) -> None:
        self.name = name
        self.bounds: Tuple[Number, ...] = tuple(bounds) if bounds else DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted")
        # One bucket per bound (value <= bound) plus one overflow bucket.
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total: Number = 0
        self.min: Optional[Number] = None
        self.max: Optional[Number] = None

    def observe(self, value: Number) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                [bound, n] for bound, n in zip(self.bounds, self.bucket_counts)
                if n
            ] + ([[None, self.bucket_counts[-1]]] if self.bucket_counts[-1] else []),
        }

    def merge(self, snap: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`snapshot` in, bucket by bucket.

        Every incoming bucket bound must exist in this histogram's
        bounds (``None`` is the shared overflow bucket); anything else
        raises ``ValueError`` — silently re-bucketing samples would make
        merged distributions lie.
        """
        index = {bound: i for i, bound in enumerate(self.bounds)}
        for bound, n in snap.get("buckets", []):  # type: ignore[union-attr]
            if bound is None:
                self.bucket_counts[-1] += n
            elif bound in index:
                self.bucket_counts[index[bound]] += n
            else:
                raise ValueError(
                    f"histogram {self.name!r} has no bucket bound {bound!r}; "
                    "merging histograms needs compatible bounds"
                )
        self.count += snap.get("count", 0)
        self.total += snap.get("sum", 0)
        for other in (snap.get("min"),):
            if other is not None and (self.min is None or other < self.min):
                self.min = other
        for other in (snap.get("max"),):
            if other is not None and (self.max is None or other > self.max):
                self.max = other

    def reset(self) -> None:
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """A flat, create-on-first-use namespace of metric instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind raises ``TypeError``
    (silent kind confusion is how telemetry numbers go quietly wrong).
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._base_kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # -- instrument access -------------------------------------------------

    def counter(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Counter:
        return self._get(labeled_name(name, labels), Counter)

    def gauge(
        self, name: str, labels: Optional[Mapping[str, object]] = None
    ) -> Gauge:
        return self._get(labeled_name(name, labels), Gauge)

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[Number]] = None,
        labels: Optional[Mapping[str, object]] = None,
    ) -> Histogram:
        name = labeled_name(name, labels)
        instrument = self._instruments.get(name)
        if instrument is None:
            self._bind_base_kind(name, "histogram")
            instrument = Histogram(name, bounds)
            self._instruments[name] = instrument
        elif not isinstance(instrument, Histogram):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a histogram"
            )
        return instrument

    def _bind_base_kind(self, name: str, kind: str) -> None:
        """One instrument kind per *base* name across every label set."""
        base = name.partition("{")[0]
        bound = self._base_kinds.setdefault(base, kind)
        if bound != kind:
            raise TypeError(
                f"metric family {base!r} is a {bound}, not a {kind}; every "
                "label set of a base name must share one kind"
            )

    def _get(self, name: str, cls: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            self._bind_base_kind(name, cls.kind)
            instrument = cls(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} is a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    # -- one-line recording convenience -----------------------------------

    def inc(
        self,
        name: str,
        amount: Number = 1,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.counter(name, labels=labels).inc(amount)

    def set_gauge(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.gauge(name, labels=labels).set(value)

    def observe(
        self,
        name: str,
        value: Number,
        labels: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.histogram(name, labels=labels).observe(value)

    # -- metric family documentation ---------------------------------------

    def describe(self, base_name: str, help_text: str) -> None:
        """Attach a one-line ``# HELP`` text to a metric family (the base
        name, shared by every label set)."""
        self._help[base_name] = help_text

    def help_text(self, base_name: str) -> Optional[str]:
        return self._help.get(base_name)

    # -- introspection -----------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def value(self, name: str) -> object:
        """Snapshot value of one instrument (KeyError if absent)."""
        return self._instruments[name].snapshot()

    def instruments(self) -> Iterable[Instrument]:
        return (self._instruments[name] for name in self.names())

    def kinds(self) -> Dict[str, str]:
        """Instrument kind per name — ship alongside :meth:`snapshot` so
        a merging peer can tell counters from gauges."""
        return {name: self._instruments[name].kind for name in self.names()}

    # -- snapshot / diff / merge / export ----------------------------------

    def snapshot(self) -> Dict[str, object]:
        """All instruments as a plain JSON-ready dict, sorted by name."""
        return {name: self._instruments[name].snapshot() for name in self.names()}

    @staticmethod
    def diff(
        before: Dict[str, object], after: Dict[str, object]
    ) -> Dict[str, object]:
        """What changed between two snapshots.

        Scalar entries (counters/gauges) report ``after - before``.  A
        histogram entry reports a dict of exactly three keys:
        ``{"count": int, "sum": number, "buckets": [[bound, n], ...]}``
        — the delta of sample count, sample sum, and per-bucket counts
        (only buckets whose count changed appear; ``None`` is the
        overflow bucket; the list is ordered by bound, overflow last).
        Entries absent from ``before`` count from zero; unchanged
        entries are omitted.
        """
        delta: Dict[str, object] = {}
        for name, now in after.items():
            prev = before.get(name)
            if isinstance(now, dict):
                prev_buckets = (
                    {b: n for b, n in prev.get("buckets", [])}
                    if isinstance(prev, dict)
                    else {}
                )
                prev_count = prev.get("count", 0) if isinstance(prev, dict) else 0
                prev_sum = prev.get("sum", 0) if isinstance(prev, dict) else 0
                d_count = now.get("count", 0) - prev_count
                d_sum = now.get("sum", 0) - prev_sum
                d_buckets = []
                for bound, n in now.get("buckets", []):
                    d = n - prev_buckets.pop(bound, 0)
                    if d:
                        d_buckets.append([bound, d])
                # Buckets that emptied out entirely (possible after reset).
                for bound, n in prev_buckets.items():
                    if n:
                        d_buckets.append([bound, -n])
                if d_count or d_sum or d_buckets:
                    delta[name] = {
                        "count": d_count, "sum": d_sum, "buckets": d_buckets
                    }
            else:
                d = now - (prev if isinstance(prev, (int, float)) else 0)
                if d:
                    delta[name] = d
        return delta

    def merge_snapshot(
        self,
        snapshot: Dict[str, object],
        kinds: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold one :meth:`snapshot` (e.g. from a worker process) in.

        Dict-valued entries merge as histograms; scalar entries consult
        ``kinds`` (then any existing instrument of that name, then
        default to counter) to decide between counter-add and
        gauge-last-write semantics.  Iteration is name-sorted, so
        merging the same snapshots in the same order is deterministic.
        """
        kinds = kinds or {}
        for name in sorted(snapshot):
            value = snapshot[name]
            if isinstance(value, dict):
                self.histogram(name).merge(value)
                continue
            kind = kinds.get(name)
            if kind is None and name in self._instruments:
                kind = self._instruments[name].kind
            if kind == "gauge":
                self.gauge(name).merge(value)  # type: ignore[arg-type]
            else:
                self.counter(name).merge(value)  # type: ignore[arg-type]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another live registry in (see :meth:`merge_snapshot`)."""
        self.merge_snapshot(other.snapshot(), other.kinds())

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable fixed-width table of the current snapshot."""
        lines = []
        width = max((len(n) for n in self.names()), default=0)
        for name in self.names():
            value = self._instruments[name].snapshot()
            if isinstance(value, dict):
                value = (
                    f"count={value['count']} sum={value['sum']} "
                    f"mean={value['mean']:.2f} max={value['max']}"
                )
            elif isinstance(value, float):
                value = f"{value:.4f}"
            lines.append(f"{name.ljust(width)}  {value}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every instrument in place (instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()
