"""Cost model for software-only CLEAN (paper Section 4.6, Figures 6-8).

The paper measures wall-clock slowdown of instrumented binaries on a
Xeon; our substrate executes modelled instructions, so slowdown is
*computed* from measured event counts instead: the runtime executes the
workload under the real detector, and this model prices every event the
paper identifies as an overhead source:

(i)   intercepting each potentially shared access (the call into the
      run-time routine),
(ii)  the latency of the race check itself — priced from the detector's
      actual comparison/update counts, so the Section-4.4 vectorization
      fast path shows up exactly where the workload's access widths and
      epoch uniformity let it,
(iii) metadata memory pressure (a per-access surcharge),
(iv)  synchronization-side work: vector-clock maintenance, deterministic-
      counter instrumentation, Kendo turn waiting (amplified by workload
      imbalance and counter imprecision), and
(v)   deterministic metadata resets (rollovers).

Composition mirrors the paper's Figure 6: detection and deterministic
synchronization are measured in isolation and the full system multiplies
them (detection slows every thread, which stretches deterministic waits
proportionally).

All constants are calibrated against the paper's headline numbers (mean
detection-only slowdown 5.8x, mean full slowdown 7.8x, lu_cb/lu_ncb
worst; see EXPERIMENTS.md) and are inputs of the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.detector import AccessStats

__all__ = ["SoftwareCostParams", "DEFAULT_PARAMS", "DetectionCost", "SyncCost"]


@dataclass(frozen=True)
class SoftwareCostParams:
    """Calibrated per-event costs, in baseline instructions."""

    #: Call/argument/EPOCH_ADDRESS overhead of intercepting one access.
    intercept_cost: float = 14.0
    #: One epoch comparison (line 3 of Figure 2).
    compare_cost: float = 5.0
    #: Vector load + vector compare verifying epoch uniformity (§4.4).
    vector_check_cost: float = 6.0
    #: One CAS epoch update; a wide CAS updates 4 epochs at this price.
    cas_cost: float = 10.0
    #: Epochs updated by one wide CAS (128-bit CAS = 4 x 32-bit epochs).
    wide_cas_epochs: int = 4
    #: Metadata cache-pressure surcharge per checked access.
    memory_pressure_cost: float = 3.0
    #: Vector-clock maintenance + deterministic wait per sync operation.
    det_sync_cost: float = 8.0
    #: Deterministic-counter instrumentation, as a fraction of compute.
    counter_instrumentation: float = 0.10
    #: Extra deterministic waiting per unit of workload imbalance,
    #: as a fraction of baseline time.
    imbalance_wait_factor: float = 0.6
    #: Waiting amplification when counters under-count (skipped work /
    #: baseline), Section 6.2.3.
    imprecision_wait_factor: float = 0.65
    #: Relative speed-up from spinning (vs. the Pthread build's blocking)
    #: synchronization — the streamcluster effect.
    spin_bonus: float = 0.30
    #: Cost of one deterministic metadata reset (page remapping + drain).
    rollover_cost: float = 400.0
    #: Per-access lock+unlock cost of the lock-based atomicity
    #: alternative CLEAN avoids (Section 4.3 cites >40% of detection
    #: overhead going to locking in lock-based detectors).
    lock_pair_cost: float = 22.0


DEFAULT_PARAMS = SoftwareCostParams()


@dataclass(frozen=True)
class DetectionCost:
    """Price of WAW/RAW detection for one execution's stats."""

    added_instructions: float
    per_access: float

    @classmethod
    def from_stats(
        cls,
        stats: AccessStats,
        params: SoftwareCostParams,
        vectorized: bool,
        atomicity: str = "cas",
    ) -> "DetectionCost":
        """Price the detection work recorded in ``stats``.

        ``atomicity`` selects CLEAN's lock-free CAS scheme (``"cas"``,
        Section 4.3) or the conventional lock-per-check alternative
        (``"lock"``) — the ablation showing why CLEAN avoids locking.
        """
        if atomicity not in {"cas", "lock"}:
            raise ValueError(f"unknown atomicity scheme {atomicity!r}")
        accesses = stats.accesses
        if not accesses:
            return cls(0.0, 0.0)
        added = params.intercept_cost * accesses
        added += params.memory_pressure_cost * accesses
        if atomicity == "lock":
            added += params.lock_pair_cost * accesses
        # Comparisons: the detector already counted one per fast-path
        # access and one per byte on slow paths, so pricing them directly
        # reproduces the vectorization effect.
        added += params.compare_cost * stats.epoch_comparisons
        if vectorized:
            added += params.vector_check_cost * stats.multibyte_uniform_epoch
            wide_cas_ops = -(-stats.epoch_updates // params.wide_cas_epochs)
            added += params.cas_cost * wide_cas_ops
        else:
            added += params.cas_cost * stats.epoch_updates
        return cls(added_instructions=added, per_access=added / accesses)


@dataclass(frozen=True)
class SyncCost:
    """Price of deterministic synchronization for one execution."""

    added_instructions: float

    @classmethod
    def compute(
        cls,
        params: SoftwareCostParams,
        baseline: float,
        sync_commits: int,
        compute_instructions: float,
        imbalance: float,
        skipped_counter_work: float,
        blocking_sync: bool,
        n_threads: int,
    ) -> "SyncCost":
        added = params.det_sync_cost * (sync_commits / max(1, n_threads))
        added += params.counter_instrumentation * compute_instructions
        added += params.imbalance_wait_factor * imbalance * baseline
        if baseline > 0:
            imprecision = min(1.0, skipped_counter_work / baseline)
            added += params.imprecision_wait_factor * imprecision * baseline
        if blocking_sync:
            added -= params.spin_bonus * baseline
        return cls(added_instructions=added)
