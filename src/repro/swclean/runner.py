"""Run a workload under software CLEAN and price its overheads.

One call executes the benchmark's race-free variant on the cooperative
runtime with the real detector and Kendo gate attached, then converts the
measured event counts into modelled execution times:

* ``t0`` — baseline parallel time: the slowest thread's executed
  instructions (no CLEAN).
* ``t_detection`` — baseline plus the priced WAW/RAW detection work.
* ``t_detsync`` — baseline plus the priced deterministic-synchronization
  work (Kendo alone, as in Figure 6's middle bars).
* ``t_full`` — detection and deterministic synchronization composed
  multiplicatively: detection stretches every thread, which stretches
  deterministic waits by the same factor.

Rollover accounting (Table 1) uses a deliberately narrow clock layout so
the scaled-down workloads exercise the reset machinery the way the
paper's native runs exercise the 23-bit clock; see
:mod:`repro.experiments.table1_rollover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..clean import CleanMonitor
from ..core.detector import AccessStats, CleanDetector
from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from ..core.rollover import RolloverPolicy
from ..determinism.kendo import KendoGate
from ..obs import MetricsRegistry
from ..runtime.ops import Compute
from ..runtime.scheduler import ExecutionResult, RoundRobinPolicy
from ..workloads.kernels import N_THREADS, build_program
from ..workloads.spec import BenchmarkSpec
from .costmodel import DEFAULT_PARAMS, DetectionCost, SoftwareCostParams, SyncCost

__all__ = ["SwCleanRun", "run_software_clean"]

#: Modelled instructions per simulated second: the paper's 2.2 GHz cores
#: scaled to our shrunken workloads so per-second quantities (Table 1)
#: land in a comparable range.
INSTRUCTIONS_PER_SECOND = 50_000.0


@dataclass
class SwCleanRun:
    """Measured and modelled results of one software-CLEAN execution."""

    benchmark: str
    scale: str
    vectorized: bool
    t0: float
    t_detection: float
    t_detsync: float
    t_full: float
    stats: AccessStats
    sync_commits: int
    rollovers: int
    shared_accesses: int
    result: ExecutionResult

    @property
    def slowdown_detection(self) -> float:
        """Race-detection-only slowdown (Figure 6 middle / Figure 8)."""
        return self.t_detection / self.t0

    @property
    def slowdown_detsync(self) -> float:
        """Deterministic-synchronization-only slowdown (Figure 6)."""
        return self.t_detsync / self.t0

    @property
    def slowdown_full(self) -> float:
        """Full CLEAN slowdown (Figure 6 main bars)."""
        return self.t_full / self.t0

    @property
    def total_instructions(self) -> float:
        """Executed instructions summed over all threads."""
        return float(sum(self.result.det_counters.values()))

    @property
    def shared_access_density(self) -> float:
        """Measured shared accesses per executed instruction (Figure 7)."""
        total = self.total_instructions
        return self.shared_accesses / total if total else 0.0

    @property
    def simulated_seconds(self) -> float:
        """Baseline run time in simulated seconds."""
        return self.t0 / INSTRUCTIONS_PER_SECOND

    @property
    def rollovers_per_second(self) -> float:
        """Deterministic resets per simulated second (Table 1)."""
        seconds = self.simulated_seconds
        return self.rollovers / seconds if seconds else 0.0


class _TrackingCounter:
    """Counts every op fully, while recording what basic-block
    instrumentation below ``cutoff`` would have skipped (Section 6.2.1)."""

    def __init__(self, cutoff: int = 8) -> None:
        self.cutoff = cutoff
        self.skipped = 0
        self.compute_total = 0

    def __call__(self, op: object) -> int:
        cost = getattr(op, "cost", 0)
        if isinstance(op, Compute):
            self.compute_total += op.amount
            if op.amount < self.cutoff:
                self.skipped += op.amount
        return cost


def run_software_clean(
    spec: BenchmarkSpec,
    scale: str = "simsmall",
    seed: int = 0,
    params: SoftwareCostParams = DEFAULT_PARAMS,
    vectorized: bool = True,
    layout: EpochLayout = DEFAULT_LAYOUT,
    rollover_slack: int = 32,
    n_threads: int = N_THREADS,
    atomicity: str = "cas",
    instrument_private_fraction: float = 0.0,
    registry: Optional[MetricsRegistry] = None,
) -> SwCleanRun:
    """Execute ``spec``'s race-free variant under CLEAN and price it.

    ``atomicity`` selects the check-atomicity scheme priced by the cost
    model: CLEAN's lock-free CAS (default) or the lock-based alternative
    (the Section-4.3 ablation).  A ``registry`` receives the detector's
    counters (``detector.*``) and the modelled slowdowns (``swclean.*``).
    """
    program = build_program(spec, scale=scale, racy=False, seed=seed,
                            n_threads=n_threads)
    detector = CleanDetector(
        max_threads=n_threads + 8, layout=layout, vectorized=vectorized
    )
    rollover = RolloverPolicy(slack=rollover_slack)
    clean = CleanMonitor(
        detector=detector,
        rollover=rollover,
        instrument_private_fraction=instrument_private_fraction,
        registry=registry,
    )
    gate = KendoGate()
    counter = _TrackingCounter()
    result = program.run(
        policy=RoundRobinPolicy(),
        monitors=[clean, gate],
        max_threads=n_threads + 8,
        counter_cost=counter,
        raise_on_race=True,
    )

    t0 = float(max(result.det_counters.values()))
    stats = detector.stats
    detection = DetectionCost.from_stats(stats, params, vectorized, atomicity)
    sync = SyncCost.compute(
        params,
        baseline=t0,
        sync_commits=len(result.sync_log),
        # Global sums attributed per thread: t0 is per-thread time.
        compute_instructions=counter.compute_total / n_threads,
        imbalance=spec.imbalance,
        skipped_counter_work=counter.skipped / n_threads,
        blocking_sync=spec.blocking_sync,
        n_threads=n_threads,
    )
    detection_per_thread = detection.added_instructions / n_threads
    rollover_cost = rollover.count * params.rollover_cost
    t_detection = t0 + detection_per_thread + rollover_cost
    t_detsync = max(t0 * 0.5, t0 + sync.added_instructions)
    # Full system: detection stretches the threads, deterministic waits
    # stretch with them.
    t_full = t_detection * (t_detsync / t0)
    if registry is not None:
        registry.set_gauge("swclean.t0", t0)
        registry.set_gauge("swclean.slowdown_detection", t_detection / t0)
        registry.set_gauge("swclean.slowdown_detsync", t_detsync / t0)
        registry.set_gauge("swclean.slowdown_full", t_full / t0)
        registry.counter("swclean.sync_commits").set_to(len(result.sync_log))
        registry.counter("swclean.rollovers").set_to(rollover.count)
        registry.counter("swclean.shared_accesses").set_to(
            result.shared_reads + result.shared_writes
        )
    return SwCleanRun(
        benchmark=spec.name,
        scale=scale,
        vectorized=vectorized,
        t0=t0,
        t_detection=t_detection,
        t_detsync=t_detsync,
        t_full=t_full,
        stats=stats,
        sync_commits=len(result.sync_log),
        rollovers=rollover.count,
        shared_accesses=result.shared_reads + result.shared_writes,
        result=result,
    )
