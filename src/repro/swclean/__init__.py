"""Software-only CLEAN: measured detector events priced by a cost model."""

from .costmodel import (
    DEFAULT_PARAMS,
    DetectionCost,
    SoftwareCostParams,
    SyncCost,
)
from .runner import INSTRUCTIONS_PER_SECOND, SwCleanRun, run_software_clean

__all__ = [
    "SoftwareCostParams",
    "DEFAULT_PARAMS",
    "DetectionCost",
    "SyncCost",
    "SwCleanRun",
    "run_software_clean",
    "INSTRUCTIONS_PER_SECOND",
]
