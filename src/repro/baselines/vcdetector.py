"""Full vector-clock precise race detector (the classical scheme, §2.3).

Keeps *two* vector clocks per monitored location — one for reads, one for
writes — and compares them element-wise on every access.  Detects all
three race types (RAW, WAW, WAR) with no false positives or negatives,
at the cost CLEAN is designed to avoid: O(threads) space per location and
O(threads) comparisons per access.

This is the reference oracle for the property tests: CLEAN must raise
exactly when this detector reports a WAW or RAW race on the same
interleaving, and must stay silent on WAR races this detector reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from ..core.exceptions import (
    RawRaceException,
    WarRaceException,
    WawRaceException,
)
from .common import HbEngine

__all__ = ["VcRaceDetector"]


@dataclass
class _LocationMeta:
    """Sparse per-location read/write last-access clocks (tid -> clock)."""

    reads: Dict[int, int] = field(default_factory=dict)
    writes: Dict[int, int] = field(default_factory=dict)


class VcRaceDetector(HbEngine):
    """Element-wise vector-clock detector; reports RAW, WAW and WAR.

    ``record_only=True`` collects races instead of raising, which is how
    the methodology uses it (enumerate the races of an interleaving and
    compare with what CLEAN raised).
    """

    def __init__(
        self,
        max_threads: int = 8,
        layout: EpochLayout = DEFAULT_LAYOUT,
        record_only: bool = False,
    ) -> None:
        super().__init__(max_threads=max_threads, layout=layout)
        self.record_only = record_only
        self._meta: Dict[int, _LocationMeta] = {}
        self.reported: list = []
        self.checks = 0
        self.clock_comparisons = 0

    # -- checks ------------------------------------------------------------

    def check_read(self, tid: int, address: int, size: int = 1) -> None:
        """Check a read against last writes; record the read clocks."""
        vc = self.vc(tid)
        for offset in range(size):
            meta = self._meta.setdefault(address + offset, _LocationMeta())
            self.checks += 1
            for writer, clock in meta.writes.items():
                self.clock_comparisons += 1
                if clock > vc.clock_of(writer):
                    self._report(
                        RawRaceException(address + offset, tid, writer, clock, size)
                    )
            meta.reads[tid] = vc.clock_of(tid)

    def check_write(self, tid: int, address: int, size: int = 1) -> None:
        """Check a write against last writes and last reads; record it."""
        vc = self.vc(tid)
        for offset in range(size):
            meta = self._meta.setdefault(address + offset, _LocationMeta())
            self.checks += 1
            for writer, clock in meta.writes.items():
                self.clock_comparisons += 1
                if clock > vc.clock_of(writer):
                    self._report(
                        WawRaceException(address + offset, tid, writer, clock, size)
                    )
            for reader, clock in meta.reads.items():
                self.clock_comparisons += 1
                if clock > vc.clock_of(reader):
                    self._report(
                        WarRaceException(address + offset, tid, reader, clock, size)
                    )
            meta.writes[tid] = vc.clock_of(tid)

    def _report(self, exc: Exception) -> None:
        self.reported.append(exc)
        if not self.record_only:
            raise exc

    # -- introspection --------------------------------------------------------

    def race_kinds(self) -> Dict[str, int]:
        """Histogram of recorded race kinds (record-only mode)."""
        kinds: Dict[str, int] = {}
        for exc in self.reported:
            kinds[exc.kind] = kinds.get(exc.kind, 0) + 1
        return kinds

    @property
    def metadata_locations(self) -> int:
        """Number of locations carrying read/write vector metadata."""
        return len(self._meta)

    def metadata_entries(self) -> int:
        """Total (tid, clock) entries across all locations — the space
        cost CLEAN's single-epoch-per-location design avoids."""
        return sum(len(m.reads) + len(m.writes) for m in self._meta.values())
