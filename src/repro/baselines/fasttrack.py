"""FastTrack (Flanagan & Freund, PLDI 2009): the precise baseline.

FastTrack's insight (paper Section 2.3): WAW and RAW races only ever
involve the *last* write, so the write metadata of a location can be a
single epoch.  Reads are harder — a write can race with a read that is
not the last one — so read metadata is *adaptive*: a single epoch while
reads are totally ordered, inflated to a full read vector clock once
concurrent reads are observed.

CLEAN is exactly "FastTrack minus the read side": compare
:meth:`FastTrackDetector.check_write`'s read checks and read-VC
inflation with their absence in
:class:`~repro.core.detector.CleanDetector`.  The efficiency experiments
use the counters kept here (inflations, O(n) read scans) to show what
CLEAN saves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from ..core.exceptions import (
    RawRaceException,
    WarRaceException,
    WawRaceException,
)
from .common import HbEngine

__all__ = ["FastTrackDetector"]


@dataclass
class _FtMeta:
    """Per-location FastTrack state.

    ``write`` is the last-write epoch (0 = never written).  ``read`` is
    either an epoch (totally-ordered reads so far) or a tid->clock dict
    (inflated read vector clock).
    """

    write: int = 0
    read: Union[int, Dict[int, int]] = 0


class FastTrackDetector(HbEngine):
    """Epoch-based precise detector for RAW, WAW *and* WAR races."""

    def __init__(
        self,
        max_threads: int = 8,
        layout: EpochLayout = DEFAULT_LAYOUT,
        record_only: bool = False,
    ) -> None:
        super().__init__(max_threads=max_threads, layout=layout)
        self.record_only = record_only
        self._meta: Dict[int, _FtMeta] = {}
        self.reported: list = []
        self.read_inflations = 0
        self.read_vc_scans = 0
        self.same_epoch_reads = 0

    # -- checks ---------------------------------------------------------------

    def check_read(self, tid: int, address: int, size: int = 1) -> None:
        """FastTrack read rule: same-epoch fast path, RAW check, adaptive
        read metadata update."""
        vc = self.vc(tid)
        layout = self.layout
        my_epoch = vc.element(tid)
        for offset in range(size):
            meta = self._meta.setdefault(address + offset, _FtMeta())
            if meta.read == my_epoch:
                self.same_epoch_reads += 1
                continue
            writer = layout.tid(meta.write)
            if layout.clock(meta.write) > vc.clock_of(writer):
                self._report(
                    RawRaceException(
                        address + offset,
                        tid,
                        writer,
                        layout.clock(meta.write),
                        size,
                    )
                )
            if isinstance(meta.read, dict):
                meta.read[tid] = vc.clock_of(tid)
            else:
                prior_tid = layout.tid(meta.read)
                prior_clock = layout.clock(meta.read)
                if prior_clock <= vc.clock_of(prior_tid):
                    # Prior read happens-before this one: stay an epoch.
                    meta.read = my_epoch
                else:
                    # Concurrent reads: inflate to a read vector clock.
                    self.read_inflations += 1
                    meta.read = {prior_tid: prior_clock, tid: vc.clock_of(tid)}

    def check_write(self, tid: int, address: int, size: int = 1) -> None:
        """FastTrack write rule: WAW check against the last-write epoch,
        WAR check against the (possibly inflated) read metadata."""
        vc = self.vc(tid)
        layout = self.layout
        my_epoch = vc.element(tid)
        for offset in range(size):
            meta = self._meta.setdefault(address + offset, _FtMeta())
            if meta.write == my_epoch:
                continue
            writer = layout.tid(meta.write)
            if layout.clock(meta.write) > vc.clock_of(writer):
                self._report(
                    WawRaceException(
                        address + offset,
                        tid,
                        writer,
                        layout.clock(meta.write),
                        size,
                    )
                )
            if isinstance(meta.read, dict):
                # Inflated read VC: the expensive O(threads) scan that
                # CLEAN never performs.
                self.read_vc_scans += 1
                for reader, clock in meta.read.items():
                    if clock > vc.clock_of(reader):
                        self._report(
                            WarRaceException(
                                address + offset, tid, reader, clock, size
                            )
                        )
                meta.read = 0
            elif meta.read:
                reader = layout.tid(meta.read)
                if layout.clock(meta.read) > vc.clock_of(reader):
                    self._report(
                        WarRaceException(
                            address + offset,
                            tid,
                            reader,
                            layout.clock(meta.read),
                            size,
                        )
                    )
                meta.read = 0
            meta.write = my_epoch

    def _report(self, exc: Exception) -> None:
        self.reported.append(exc)
        if not self.record_only:
            raise exc

    # -- introspection -------------------------------------------------------------

    def race_kinds(self) -> Dict[str, int]:
        """Histogram of recorded race kinds (record-only mode)."""
        kinds: Dict[str, int] = {}
        for exc in self.reported:
            kinds[exc.kind] = kinds.get(exc.kind, 0) + 1
        return kinds

    def metadata_words(self) -> int:
        """Metadata size in 32-bit words (epochs count 1, read VCs count
        their entries) — compare with CLEAN's flat 1 word per byte."""
        total = 0
        for meta in self._meta.values():
            total += 1  # write epoch
            total += len(meta.read) if isinstance(meta.read, dict) else 1
        return total
