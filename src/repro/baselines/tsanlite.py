"""A ThreadSanitizer-like *imprecise* detector (paper Section 6.2.1).

The paper's software CLEAN is built on ThreadSanitizer's compiler pass
and runtime; TSan itself trades precision for performance: it keeps only
the ``k`` (typically 4) most recent accesses per 8-byte shadow cell, so
older conflicting accesses can be evicted and their races silently
missed.  It reports races rather than stopping the program.

We reproduce that role: :class:`TsanLiteDetector` is used by the
benchmark methodology the way the authors used TSan — run the *racy*
workload variants, collect the reported races, and check that the
"modified" (race-free) variants report nothing.  Its misses under small
``k`` are demonstrated by dedicated tests, contrasting with CLEAN's
by-design-precise WAW/RAW detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from .common import HbEngine

__all__ = ["TsanLiteDetector", "TsanReport"]

#: Shadow cells cover aligned 8-byte granules, as in ThreadSanitizer v1.
GRANULE = 8


@dataclass(frozen=True)
class TsanReport:
    """One reported race: the two conflicting accesses."""

    address: int
    first_tid: int
    first_is_write: bool
    second_tid: int
    second_is_write: bool

    @property
    def kind(self) -> str:
        """Classify like the paper: WAW / RAW / WAR by access types."""
        if self.first_is_write and self.second_is_write:
            return "WAW"
        if self.first_is_write:
            return "RAW"
        return "WAR"


@dataclass
class _ShadowSlot:
    tid: int
    clock: int
    is_write: bool
    mask: int  # bit i set => byte i of the granule was accessed


class TsanLiteDetector(HbEngine):
    """k-last-accesses shadow-cell detector; reports without stopping."""

    def __init__(
        self,
        max_threads: int = 8,
        layout: EpochLayout = DEFAULT_LAYOUT,
        k: int = 4,
    ) -> None:
        super().__init__(max_threads=max_threads, layout=layout)
        if k < 1:
            raise ValueError("need at least one shadow slot")
        self.k = k
        self._cells: Dict[int, List[_ShadowSlot]] = {}
        self.reports: List[TsanReport] = []
        self._reported_pairs: Set[Tuple[int, int, int, bool, bool]] = set()
        self.evictions = 0

    # -- checks ---------------------------------------------------------------

    def check_read(self, tid: int, address: int, size: int = 1) -> None:
        """Record a read, reporting conflicts with remembered writes."""
        self._access(tid, address, size, is_write=False)

    def check_write(self, tid: int, address: int, size: int = 1) -> None:
        """Record a write, reporting conflicts with remembered accesses."""
        self._access(tid, address, size, is_write=True)

    def _access(self, tid: int, address: int, size: int, is_write: bool) -> None:
        vc = self.vc(tid)
        my_clock = vc.clock_of(tid)
        start = address
        end = address + size
        granule = start - (start % GRANULE)
        while granule < end:
            lo = max(start, granule)
            hi = min(end, granule + GRANULE)
            mask = 0
            for byte in range(lo - granule, hi - granule):
                mask |= 1 << byte
            self._access_granule(tid, vc, my_clock, granule, mask, is_write)
            granule += GRANULE

    def _access_granule(self, tid, vc, my_clock, granule, mask, is_write) -> None:
        slots = self._cells.setdefault(granule, [])
        for slot in slots:
            if slot.tid == tid or not (slot.mask & mask):
                continue
            if not (slot.is_write or is_write):
                continue
            if slot.clock > vc.clock_of(slot.tid):
                key = (granule, slot.tid, tid, slot.is_write, is_write)
                if key not in self._reported_pairs:
                    self._reported_pairs.add(key)
                    self.reports.append(
                        TsanReport(
                            address=granule,
                            first_tid=slot.tid,
                            first_is_write=slot.is_write,
                            second_tid=tid,
                            second_is_write=is_write,
                        )
                    )
        # Replace a slot of the same thread/type if present, else append,
        # else evict the oldest: the precision/size trade-off of TSan.
        for slot in slots:
            if slot.tid == tid and slot.is_write == is_write:
                slot.clock = my_clock
                slot.mask |= mask
                return
        if len(slots) >= self.k:
            slots.pop(0)
            self.evictions += 1
        slots.append(_ShadowSlot(tid=tid, clock=my_clock, is_write=is_write, mask=mask))

    # -- introspection ----------------------------------------------------------

    def race_kinds(self) -> Dict[str, int]:
        """Histogram of reported race kinds."""
        kinds: Dict[str, int] = {}
        for report in self.reports:
            kinds[report.kind] = kinds.get(report.kind, 0) + 1
        return kinds

    @property
    def racy(self) -> bool:
        """Whether any race was reported."""
        return bool(self.reports)
