"""Reference detectors CLEAN is compared against.

* :class:`VcRaceDetector` — classical two-vector-clocks-per-location
  precise detector (the oracle for property tests);
* :class:`FastTrackDetector` — FastTrack, the algorithm CLEAN simplifies;
* :class:`TsanLiteDetector` — an imprecise ThreadSanitizer-like detector
  (the methodology tool used to produce race-free benchmark variants).

All plug into the runtime through :class:`repro.clean.CleanMonitor`
(they expose the same detector API).
"""

from .common import HbEngine
from .fasttrack import FastTrackDetector
from .tsanlite import TsanLiteDetector, TsanReport
from .vcdetector import VcRaceDetector

__all__ = [
    "HbEngine",
    "VcRaceDetector",
    "FastTrackDetector",
    "TsanLiteDetector",
    "TsanReport",
]
