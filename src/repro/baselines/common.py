"""Shared happens-before machinery for the baseline detectors.

Every precise dynamic detector keeps the same thread/lock vector-clock
state and differs only in its per-location metadata and check (Section
2.3).  That state — the fork/join/acquire/release lifecycle glue — now
lives in :class:`~repro.core.events.VectorClockBackend`, the common base
of the CLEAN detector and every baseline; :class:`HbEngine` is its
baseline-facing name, kept so the detectors (and downstream code) read
as before.  Any engine built on it plugs into the runtime through the
same :class:`~repro.clean.CleanMonitor` adapter via the
:class:`~repro.core.events.DetectorBackend` protocol.
"""

from __future__ import annotations

from ..core.events import VectorClockBackend

__all__ = ["HbEngine"]


class HbEngine(VectorClockBackend):
    """Thread/lock vector clocks plus fork/join/acquire/release rules.

    Per-sync vector clocks are keyed by
    :func:`~repro.core.events.stable_sync_id` — a lock reconstructed
    with the same name (record/replay, unpickled traces) maps to the
    same clock instead of silently forking a new one.
    """
