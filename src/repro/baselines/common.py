"""Shared happens-before machinery for the baseline detectors.

Every precise dynamic detector keeps the same thread/lock vector-clock
state and differs only in its per-location metadata and check (Section
2.3).  :class:`HbEngine` provides that common state with the same thread
lifecycle and synchronization API as
:class:`~repro.core.detector.CleanDetector`, so any baseline plugs into
the runtime through the same :class:`~repro.clean.CleanMonitor` adapter.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from ..core.exceptions import MetadataError, TooManyThreadsError
from ..core.vector_clock import VectorClock

__all__ = ["HbEngine"]


class HbEngine:
    """Thread/lock vector clocks plus fork/join/acquire/release rules."""

    def __init__(
        self, max_threads: int = 8, layout: EpochLayout = DEFAULT_LAYOUT
    ) -> None:
        if max_threads - 1 > layout.max_tid:
            raise TooManyThreadsError(
                f"{max_threads} threads need more than {layout.tid_bits} tid bits"
            )
        self.layout = layout
        self.max_threads = max_threads
        self._vcs: Dict[int, VectorClock] = {}
        self._free_tids: List[int] = list(range(max_threads - 1, -1, -1))
        self._lock_vcs: Dict[object, VectorClock] = {}
        self.sync_ops = 0

    # -- thread lifecycle -----------------------------------------------------

    def spawn_root(self) -> int:
        """Create the initial thread (tid 0)."""
        if self._vcs:
            raise MetadataError("root thread already exists")
        tid = self._free_tids.pop()
        self._vcs[tid] = VectorClock(self.max_threads, self.layout)
        self._vcs[tid].increment(tid)
        return tid

    def fork(self, parent_tid: int, child_tid: Optional[int] = None) -> int:
        """Create a child ordered after the parent's past."""
        parent = self.vc(parent_tid)
        if not self._free_tids:
            raise TooManyThreadsError(
                f"more than {self.max_threads} concurrently live threads"
            )
        if child_tid is None:
            tid = self._free_tids.pop()
        else:
            if child_tid not in self._free_tids:
                raise MetadataError(f"requested child tid {child_tid} is not free")
            self._free_tids.remove(child_tid)
            tid = child_tid
        child = parent.copy()
        self._vcs[tid] = child
        child.increment(tid)
        parent.increment(parent_tid)
        return tid

    def join(self, parent_tid: int, child_tid: int) -> None:
        """Join the child; its past is ordered before the parent's future."""
        parent = self.vc(parent_tid)
        child = self.vc(child_tid)
        child.increment(child_tid)
        parent.join(child)
        del self._vcs[child_tid]
        self._free_tids.append(child_tid)

    # -- synchronization ---------------------------------------------------------

    def release(self, tid: int, sync_key: object) -> None:
        """Merge the thread's VC into the sync object's; advance the thread."""
        vc = self._lock_vcs.get(sync_key)
        if vc is None:
            vc = VectorClock(self.max_threads, self.layout)
            self._lock_vcs[sync_key] = vc
        thread_vc = self.vc(tid)
        vc.join(thread_vc)
        thread_vc.increment(tid)
        self.sync_ops += 1

    def acquire(self, tid: int, sync_key: object) -> None:
        """Merge the sync object's VC into the thread's."""
        vc = self._lock_vcs.get(sync_key)
        if vc is not None:
            self.vc(tid).join(vc)
        self.sync_ops += 1

    # -- accessors -----------------------------------------------------------------

    def vc(self, tid: int) -> VectorClock:
        """The vector clock of live thread ``tid``."""
        try:
            return self._vcs[tid]
        except KeyError:
            raise MetadataError(f"unknown or dead thread id {tid}") from None

    def epoch_of(self, tid: int) -> int:
        """The thread's current epoch ``EPOCH(tid, vc[tid])``."""
        return self.vc(tid).element(tid)

    def live_threads(self) -> List[int]:
        """Tids of all live threads."""
        return sorted(self._vcs)
