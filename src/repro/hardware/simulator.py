"""Trace-driven multicore timing simulator (paper Section 6.3.1).

Replays per-thread traces recorded from the cooperative runtime on an
8-core machine model: simple cores (one cycle per non-memory
instruction), the paper's exact cache hierarchy and latencies, and —
when enabled — the CLEAN race-check unit running in parallel with every
potentially shared access.

Cores are interleaved by a global event loop that always advances the
core with the smallest local clock, so cross-core cache interactions
happen in a deterministic, time-ordered way.  Thread blocking is not
replayed (traces do not carry wait times); both the baseline and the
race-detection configurations omit it equally, so normalized slowdowns
(Figures 9 and 11) are unaffected.

Latency accounting for checks follows Section 5.4: a check overlaps its
data access, so only ``max(0, check - access)`` cycles are exposed.
Synchronization operations cost ``SYNC_BASE_CYCLES``; with detection
enabled they pay an extra ``SYNC_VC_CYCLES`` for software-maintained
vector clocks (the paper adds 100 cycles per synchronization).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from ..obs import MetricsRegistry, publish_sim_metrics
from ..runtime.trace import (
    READ,
    SYNC,
    WRITE,
    StreamingTrace,
    Trace,
    TraceEvent,
    chunked_events,
)
from .hierarchy import Latencies, MemoryHierarchy
from .metadata import MetadataLayout
from .race_unit import RaceCheckUnit, RaceUnitStats

__all__ = ["SimConfig", "SimResult", "MulticoreSim", "simulate_trace"]

#: Base cost of a synchronization operation (lock round trip etc.).
SYNC_BASE_CYCLES = 40
#: Extra per-sync cost of maintaining vector clocks in software when
#: CLEAN detection is on.  The paper charges 100 cycles per sync
#: (Section 6.3.1); our scaled-down workloads synchronize roughly 25x
#: more often per instruction than the real benchmarks, so the charge is
#: scaled down proportionally to keep the sync-side overhead the same
#: *fraction* of execution time as in the paper.
SYNC_VC_CYCLES = 4


class _ChunkedStream:
    """One thread's events, consumed chunk-buffered instead of one
    ``next()`` at a time.

    The event loop still advances one event per heap pop — timing is
    bit-identical to the per-event iterator — but events arrive a whole
    trace chunk per refill: in-memory traces hand out list slices,
    streaming traces decode each stored chunk once, so the per-event
    cost drops to a list index.
    """

    __slots__ = ("_chunks", "_buf", "_pos")

    def __init__(self, trace: object, tid: int) -> None:
        self._chunks = chunked_events(trace, tid)
        self._buf: list = []
        self._pos = 0

    def next(self) -> Optional[TraceEvent]:
        while self._pos >= len(self._buf):
            batch = next(self._chunks, None)
            if batch is None:
                return None
            self._buf = batch
            self._pos = 0
        event = self._buf[self._pos]
        self._pos += 1
        return event


@dataclass(frozen=True)
class SimConfig:
    """Machine + detection configuration for one simulation.

    Default cache capacities are the paper's configuration scaled down
    8-16x (L1 8KB, L2 32KB, L3 1MB instead of 64KB/256KB/16MB), matching
    the scale-down of the workload footprints relative to the real
    simsmall inputs — the relative cache pressure, which drives Figures
    9 and 11, is thereby preserved.  Pass the paper's absolute sizes to
    model the unscaled machine.
    """

    n_cores: int = 8
    detection: bool = True
    metadata_mode: str = "clean"  # "clean" | "epoch1" | "epoch4"
    #: "clean" = the paper's WAW/RAW unit; "precise" = the ablation unit
    #: that also maintains read metadata for WAR detection (RADISH-class).
    check_unit: str = "clean"
    latencies: Latencies = Latencies()
    layout: EpochLayout = DEFAULT_LAYOUT
    l1_size: int = 8 * 1024
    l1_assoc: int = 8
    l2_size: int = 32 * 1024
    l2_assoc: int = 8
    l3_size: int = 1024 * 1024
    l3_assoc: int = 16


@dataclass
class SimResult:
    """Outcome of one simulated execution."""

    cycles: int
    per_core_cycles: Dict[int, int]
    instructions: int
    data_accesses: int
    check_stats: Optional[RaceUnitStats]
    hierarchy: MemoryHierarchy
    expansions: int = 0
    #: Snapshot of the simulator's shared metrics registry at the end of
    #: the measured replay (``sim.*`` names; see docs/observability.md).
    metrics: Dict[str, object] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        """Cycles per instruction (coarse health metric)."""
        return self.cycles / self.instructions if self.instructions else 0.0


class MulticoreSim:
    """One simulation instance; call :meth:`run` once."""

    def __init__(
        self,
        config: SimConfig = SimConfig(),
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        #: Shared metrics registry: every replay publishes the hierarchy,
        #: cache and race-unit counters here under ``sim.*`` names.
        self.registry = registry if registry is not None else MetricsRegistry()
        self.hierarchy = MemoryHierarchy(
            n_cores=config.n_cores,
            latencies=config.latencies,
            l1_size=config.l1_size,
            l1_assoc=config.l1_assoc,
            l2_size=config.l2_size,
            l2_assoc=config.l2_assoc,
            l3_size=config.l3_size,
            l3_assoc=config.l3_assoc,
        )
        self.metadata: Optional[MetadataLayout] = None
        self.race_unit = None
        if config.detection:
            self.metadata = MetadataLayout(config.metadata_mode)
            if config.check_unit == "clean":
                self.race_unit = RaceCheckUnit(
                    self.hierarchy, self.metadata, config.layout
                )
            elif config.check_unit == "precise":
                from .precise_unit import PreciseCheckUnit

                self.race_unit = PreciseCheckUnit(
                    self.hierarchy, self.metadata, config.layout,
                    n_threads=config.n_cores + 1,
                )
            else:
                raise ValueError(f"unknown check unit {config.check_unit!r}")

    def run(
        self, trace: Union[Trace, StreamingTrace], warmup: bool = True
    ) -> SimResult:
        """Replay ``trace`` and return the timing result.

        ``trace`` is anything exposing ``thread_ids()`` and re-iterable
        ``iter_events(tid)`` — an in-memory :class:`Trace` or a
        :class:`~repro.runtime.trace.StreamingTrace` replayed straight
        off disk, chunk by chunk, without ever materializing the full
        event lists.

        With ``warmup`` (the default) the trace is replayed twice and only
        the second pass is timed: caches, metadata lines and epoch state
        carry over, so the measurement reflects the steady state of an
        iterative program rather than compulsory misses — the standard
        trace-simulation methodology, needed because our traces are far
        shorter than the paper's simsmall runs.
        """
        tids = trace.thread_ids()
        # Threads map to cores round-robin; with 8 worker threads plus the
        # main thread, main shares core 0 (a context switch per event).
        core_of = {tid: i % self.config.n_cores for i, tid in enumerate(tids)}
        # Per-thread scalar clocks (the main VC element); installed into
        # the core's register before each check — a context switch when
        # two threads share a core.  Clocks start at 1: a zero clock is
        # reserved for virgin (never-written) memory.
        thread_clock: Dict[int, int] = {tid: 1 for tid in tids}
        if warmup:
            self._replay(trace, core_of, thread_clock)
            self._reset_counters()
        return self._replay(trace, core_of, thread_clock)

    def _reset_counters(self) -> None:
        """Zero timing statistics after the warmup pass (state persists)."""
        self.hierarchy.reset_stats()
        if self.race_unit is not None:
            self.race_unit.reset_stats()
        self.registry.reset()

    def _replay(
        self,
        trace: Union[Trace, StreamingTrace],
        core_of: Dict[int, int],
        thread_clock: Dict[int, int],
    ) -> SimResult:
        tids = trace.thread_ids()
        clocks: Dict[int, int] = {core: 0 for core in range(self.config.n_cores)}
        # One independent chunk-buffered stream per thread: streaming
        # traces decode a chunk at a time, so memory stays bounded
        # however long the trace, and the hot loop reads events by list
        # index instead of resuming a generator.
        streams: Dict[int, _ChunkedStream] = {
            tid: _ChunkedStream(trace, tid) for tid in tids
        }
        instructions = 0
        data_accesses = 0

        # Event loop keyed by (core cycle, tid): always advance the thread
        # whose core clock is smallest.
        heap = [(0, tid) for tid in tids]
        heapq.heapify(heap)
        while heap:
            _, tid = heapq.heappop(heap)
            core = core_of[tid]
            event = streams[tid].next()
            if event is None:
                continue
            cycles = event.gap  # 1 cycle per non-memory instruction
            instructions += event.gap
            if event.kind == SYNC:
                cycles += SYNC_BASE_CYCLES
                if self.config.detection:
                    cycles += SYNC_VC_CYCLES
                    thread_clock[tid] += 1
                    # Software updates the thread's in-memory vector
                    # clock: the write invalidates every remote cached
                    # copy, so other cores' VC loads miss realistically.
                    # The store itself drains through the store buffer
                    # (its latency is off the critical path; its
                    # coherence effects are fully modelled).
                    assert self.metadata is not None
                    vc_addr = self.metadata.vc_element_address(tid % 256)
                    self.hierarchy.access(core, vc_addr, 4, True)
                instructions += 1
            else:
                data_accesses += 1
                instructions += 1
                data_latency = self.hierarchy.access(
                    core, event.address, event.size, event.kind == WRITE
                )
                if self.race_unit is not None:
                    self.race_unit.set_thread(core, tid % 256, thread_clock[tid])
                    outcome = self.race_unit.check(
                        core,
                        event.address,
                        event.size,
                        event.kind == WRITE,
                        event.private,
                    )
                    # The check overlaps the access; only the excess shows.
                    cycles += data_latency + max(
                        0, outcome.check_latency - data_latency
                    )
                else:
                    cycles += data_latency
            clocks[core] += cycles
            heapq.heappush(heap, (clocks[core], tid))

        cycles_total = max(clocks.values()) if clocks else 0
        registry = self.registry
        registry.set_gauge("sim.cycles", cycles_total)
        registry.set_gauge("sim.instructions", instructions)
        registry.set_gauge("sim.data_accesses", data_accesses)
        registry.set_gauge(
            "sim.cpi", cycles_total / instructions if instructions else 0.0
        )
        publish_sim_metrics(self, registry)
        return SimResult(
            cycles=cycles_total,
            per_core_cycles=dict(clocks),
            instructions=instructions,
            data_accesses=data_accesses,
            check_stats=self.race_unit.stats if self.race_unit else None,
            hierarchy=self.hierarchy,
            expansions=self.metadata.expansions if self.metadata else 0,
            metrics=registry.snapshot(),
        )


def simulate_trace(
    trace: Union[Trace, StreamingTrace],
    config: SimConfig = SimConfig(),
    registry: Optional[MetricsRegistry] = None,
) -> SimResult:
    """Convenience wrapper: build a simulator and run ``trace``."""
    return MulticoreSim(config, registry=registry).run(trace)
