"""Hardware epoch-metadata organization (paper Section 5.3, Figure 5).

Three layouts are modelled, matching the designs of Figures 9-11:

* ``"clean"`` — the paper's design: 32-bit epochs with *line compaction*.
  A 64-byte data line starts *compact*: one epoch per 4-byte group, all
  sixteen fitting in a single metadata line in the compact region.  When
  a byte of a group needs an epoch different from the rest of its group,
  the line *expands*: one epoch per byte, spread over 4 metadata lines
  (the first of which reuses the compact slot, the other 3 live in the
  expanded region).  The highest epoch bit marks the state, and hardware
  always guesses the compact address first, paying a small penalty when
  the guess is wrong.
* ``"epoch1"`` — hypothetical 8-bit epochs, one per data byte, no
  compaction: metadata is 1:1 with data (the Figure-11 upper bound).
* ``"epoch4"`` — 32-bit epochs, one per data byte, no compaction:
  metadata is 4:1 with data (the Figure-11 pessimal design).

The module is *functional* (it tracks actual epoch values, so
sameThread/sameEpoch outcomes and expansions are real, not sampled) and
*spatial* (every epoch has a metadata address, so metadata traffic goes
through the simulated cache hierarchy like regular data — the paper's
key cache-pressure mechanism).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .cache import LINE_SIZE

__all__ = ["MetadataLayout", "MetadataAccess", "GROUP"]

#: A compact epoch covers a 4-byte group of data (Figure 5b).
GROUP = 4

#: Base of the metadata region in the simulated address space — far above
#: any data the bump allocator hands out.
EPOCHS_BASE = 1 << 40

#: Base of the expanded region (3 extra lines per data line).
EXPANDED_BASE = 1 << 42

#: Base of the per-thread vector-clock area (Section 5.3).
VC_BASE = 1 << 44


@dataclass
class MetadataAccess:
    """Metadata traffic of one race check.

    ``reads``/``writes`` are (address, size) pairs to issue through the
    cache hierarchy; ``expanded`` says the data line was in expanded
    state; ``expansion`` says this access *caused* a compact->expanded
    transition; ``miscalculated`` says the hardware's compact-address
    guess was wrong (Section 5.3's reload penalty).
    """

    reads: List[Tuple[int, int]]
    writes: List[Tuple[int, int]]
    expanded: bool = False
    expansion: bool = False
    miscalculated: bool = False


class MetadataLayout:
    """Functional + spatial model of one epoch-metadata organization."""

    def __init__(self, mode: str = "clean") -> None:
        if mode not in {"clean", "epoch1", "epoch4"}:
            raise ValueError(f"unknown metadata mode {mode!r}")
        self.mode = mode
        #: group address (aligned to 4) -> epoch, for compact lines.
        self._group_epochs: Dict[int, int] = {}
        #: byte address -> epoch, for expanded lines.
        self._byte_epochs: Dict[int, int] = {}
        #: data line -> True if expanded ("clean" mode only).
        self._expanded_lines: Dict[int, bool] = {}
        self.expansions = 0

    # -- address mapping ---------------------------------------------------------

    def epoch_bytes(self) -> int:
        """Size of one epoch in bytes."""
        return 1 if self.mode == "epoch1" else 4

    def compact_line_address(self, data_line: int) -> int:
        """Metadata line address hardware guesses first (compact region)."""
        return EPOCHS_BASE + (data_line // LINE_SIZE) * LINE_SIZE

    def expanded_address(self, byte_address: int) -> int:
        """Address of the per-byte epoch of ``byte_address`` (expanded)."""
        data_line = byte_address - (byte_address % LINE_SIZE)
        offset = byte_address % LINE_SIZE
        return EXPANDED_BASE + (data_line // LINE_SIZE) * (4 * LINE_SIZE) + 4 * offset

    def flat_address(self, byte_address: int) -> int:
        """Metadata address in the no-compaction designs."""
        return EPOCHS_BASE + byte_address * self.epoch_bytes()

    def vc_element_address(self, tid: int) -> int:
        """Address of thread ``tid``'s in-memory vector-clock element —
        one line per thread so VC traffic does not false-share."""
        return VC_BASE + tid * LINE_SIZE

    # -- functional epoch state --------------------------------------------------

    def is_expanded(self, data_line: int) -> bool:
        """Whether ``data_line`` is in the expanded metadata state."""
        return self._expanded_lines.get(data_line, False)

    def group_of(self, address: int) -> int:
        return address - (address % GROUP)

    def epochs_for(self, address: int, size: int) -> List[int]:
        """Current epoch of every byte of the access (functional view)."""
        out = []
        for a in range(address, address + size):
            data_line = a - (a % LINE_SIZE)
            if self.mode == "clean" and not self.is_expanded(data_line):
                out.append(self._group_epochs.get(self.group_of(a), 0))
            elif self.mode == "clean":
                out.append(self._byte_epochs.get(a, 0))
            else:
                out.append(self._byte_epochs.get(a, 0))
        return out

    # -- the check's metadata plan -------------------------------------------------

    def plan_read_check(self, address: int, size: int) -> MetadataAccess:
        """Metadata reads needed to check (not update) an access."""
        if self.mode == "clean":
            return self._plan_clean(address, size, writes=False)
        return MetadataAccess(
            reads=self._flat_ranges(address, size), writes=[]
        )

    def apply_write(self, address: int, size: int, epoch: int) -> MetadataAccess:
        """Update metadata for a write; returns the metadata traffic.

        In "clean" mode this is where compact lines expand: a write that
        covers only part of a 4-byte group with a new epoch forces the
        per-byte representation (Section 5.3).
        """
        if self.mode != "clean":
            plan = MetadataAccess(
                reads=self._flat_ranges(address, size),
                writes=self._flat_ranges(address, size),
            )
            for a in range(address, address + size):
                self._byte_epochs[a] = epoch
            return plan
        plan = self._plan_clean(address, size, writes=True)
        for line in _lines_spanned(address, size):
            lo = max(address, line)
            hi = min(address + size, line + LINE_SIZE)
            if self.is_expanded(line):
                for a in range(lo, hi):
                    self._byte_epochs[a] = epoch
                continue
            if self._write_expands(lo, hi - lo, epoch):
                self._expand_line(line)
                plan.expansion = True
                plan.expanded = True
                # Stretching writes the 4 expanded metadata lines.
                base = EXPANDED_BASE + (line // LINE_SIZE) * (4 * LINE_SIZE)
                plan.writes.extend(
                    (base + i * LINE_SIZE, LINE_SIZE) for i in range(4)
                )
                for a in range(lo, hi):
                    self._byte_epochs[a] = epoch
                continue
            # Stays compact: set whole-group epochs.
            group = self.group_of(lo)
            while group < hi:
                if lo <= group and group + GROUP <= hi:
                    self._group_epochs[group] = epoch
                # Partial coverage with the same epoch: nothing to change
                # (the expansion test above rejected differing epochs).
                group += GROUP
        return plan

    def _write_expands(self, address: int, size: int, epoch: int) -> bool:
        """Does this (still-compact) write require per-byte epochs?"""
        group = self.group_of(address)
        end = address + size
        while group < end:
            covers_whole = address <= group and group + GROUP <= end
            if not covers_whole and self._group_epochs.get(group, 0) != epoch:
                return True
            group += GROUP
        return False

    def _expand_line(self, data_line: int) -> None:
        self._expanded_lines[data_line] = True
        self.expansions += 1
        for group in range(data_line, data_line + LINE_SIZE, GROUP):
            epoch = self._group_epochs.get(group, 0)
            for a in range(group, group + GROUP):
                self._byte_epochs[a] = epoch

    # -- helpers -------------------------------------------------------------------

    def _plan_clean(self, address: int, size: int, writes: bool) -> MetadataAccess:
        reads: List[Tuple[int, int]] = []
        write_list: List[Tuple[int, int]] = []
        expanded_any = False
        miscalculated = False
        for line in _lines_spanned(address, size):
            lo = max(address, line)
            hi = min(address + size, line + LINE_SIZE)
            # Hardware always guesses the compact address first.
            compact_addr = self.compact_line_address(line) + (
                (lo % LINE_SIZE) // GROUP
            ) * 4
            n_groups = (self.group_of(hi - 1) - self.group_of(lo)) // GROUP + 1
            reads.append((compact_addr, n_groups * 4))
            if self.is_expanded(line):
                expanded_any = True
                miscalculated = True
                # Reload from the true expanded addresses: 4 bytes of
                # metadata per data byte.
                reads.append((self.expanded_address(lo), 4 * (hi - lo)))
                if writes:
                    write_list.append((self.expanded_address(lo), 4 * (hi - lo)))
            elif writes:
                write_list.append((compact_addr, n_groups * 4))
        return MetadataAccess(
            reads=reads,
            writes=write_list,
            expanded=expanded_any,
            miscalculated=miscalculated,
        )

    def _flat_ranges(self, address: int, size: int) -> List[Tuple[int, int]]:
        start = self.flat_address(address)
        return [(start, size * self.epoch_bytes())]


def _lines_spanned(address: int, size: int):
    first = address - (address % LINE_SIZE)
    last = (address + size - 1) - ((address + size - 1) % LINE_SIZE)
    line = first
    while line <= last:
        yield line
        line += LINE_SIZE
