"""The hardware race-check unit (paper Section 5.2, Figure 4).

For every potentially shared access the unit, in parallel with the data
access itself:

1. loads the epoch(s) of the accessed bytes (guessing the compact
   metadata address; wrong guesses pay the Section-5.3 reload penalty);
2. runs the fast-path comparison against the on-chip cached main element
   of the thread's vector clock: ``sameThread`` (no race possible) and
   ``sameEpoch`` (no update needed);
3. on the slow path, loads the needed vector-clock element from memory
   and compares; on writes with stale epochs, writes the new epoch back
   (possibly stretching a compact line into its expanded form).

The unit *classifies* each access the way Figure 10 reports them —
``private``, ``fast``, ``vc_load``, ``update``, ``vc_load_update``,
``expand`` — and accounts the check's latency.  Because the check runs
in parallel with the data access, only the excess over the data latency
is exposed (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from .hierarchy import MemoryHierarchy
from .metadata import MetadataLayout

__all__ = ["AccessClass", "RaceCheckUnit", "CheckOutcome"]


class AccessClass:
    """Access categories of the Figure-10 breakdown."""

    PRIVATE = "private"
    FAST = "fast"
    VC_LOAD = "vc_load"
    UPDATE = "update"
    VC_LOAD_UPDATE = "vc_load_update"
    EXPAND = "expand"

    ALL = (PRIVATE, FAST, VC_LOAD, UPDATE, VC_LOAD_UPDATE, EXPAND)


@dataclass
class CheckOutcome:
    """Result of one race check: its class and check latency in cycles."""

    access_class: str
    check_latency: int
    expanded_line: bool = False


@dataclass
class RaceUnitStats:
    """Counters for the Figure-10 breakdowns."""

    by_class: Dict[str, int] = field(
        default_factory=lambda: {c: 0 for c in AccessClass.ALL}
    )
    compact_accesses: int = 0
    expanded_accesses: int = 0
    private_accesses: int = 0

    def record(self, outcome: CheckOutcome) -> None:
        self.by_class[outcome.access_class] += 1
        if outcome.access_class == AccessClass.PRIVATE:
            self.private_accesses += 1
        elif outcome.expanded_line:
            self.expanded_accesses += 1
        else:
            self.compact_accesses += 1

    @property
    def total(self) -> int:
        return sum(self.by_class.values())

    def fraction(self, access_class: str) -> float:
        """Fraction of all accesses in ``access_class``."""
        return self.by_class[access_class] / self.total if self.total else 0.0

    @property
    def quick_fraction(self) -> float:
        """Accesses resolved without slow-path work: private + fast."""
        quick = self.by_class[AccessClass.PRIVATE] + self.by_class[AccessClass.FAST]
        return quick / self.total if self.total else 0.0

    @property
    def compact_or_private_fraction(self) -> float:
        """Paper's 94.3% figure: accesses needing no metadata or 1:1-sized
        metadata."""
        good = self.private_accesses + self.compact_accesses
        return good / self.total if self.total else 0.0


class RaceCheckUnit:
    """Per-machine race-check logic shared by all cores.

    The unit holds the per-core cached main vector-clock element (the
    32-bit register of Section 5.1); the simulator updates it via
    :meth:`set_thread` / :meth:`on_sync` on context switches and
    synchronization operations.
    """

    #: Cycles for the on-chip fast-path comparison (Figure 4b): simple
    #: combinational circuitry, folded into the epoch load's cycle.
    FAST_COMPARE = 0
    #: Minimum penalty for a wrong compact-address guess (Section 6.3.1).
    MISCALC_MIN_PENALTY = 1
    #: Extra cycles to start a line expansion, on top of the 4 line writes.
    EXPAND_BASE_PENALTY = 1

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        metadata: MetadataLayout,
        layout: EpochLayout = DEFAULT_LAYOUT,
    ) -> None:
        self.hierarchy = hierarchy
        self.metadata = metadata
        self.layout = layout
        self.stats = RaceUnitStats()
        #: per-core (tid, clock) of the running thread — the cached main
        #: VC element register.
        self._core_thread: Dict[int, tuple] = {}

    def reset_stats(self) -> None:
        """Zero the breakdown counters (used after a warmup replay)."""
        self.stats = RaceUnitStats()

    # -- thread/clock plumbing ---------------------------------------------------

    def set_thread(self, core: int, tid: int, clock: int = 0) -> None:
        """Context switch: install a thread's (tid, clock) on ``core``."""
        self._core_thread[core] = (tid, clock)

    def on_sync(self, core: int) -> None:
        """A synchronization operation advanced the thread's main element."""
        tid, clock = self._core_thread[core]
        self._core_thread[core] = (tid, clock + 1)

    def thread_of(self, core: int) -> tuple:
        return self._core_thread[core]

    # -- the check itself -----------------------------------------------------------

    def check(
        self, core: int, address: int, size: int, is_write: bool, private: bool
    ) -> CheckOutcome:
        """Race-check one access; returns its class and check latency."""
        if private:
            outcome = CheckOutcome(AccessClass.PRIVATE, 0)
            self.stats.record(outcome)
            return outcome
        tid, clock = self._core_thread[core]
        my_epoch = self.layout.pack(tid, clock % (self.layout.clock_max + 1))

        epochs = self.metadata.epochs_for(address, size)
        plan = self.metadata.plan_read_check(address, size)
        latency = 0
        for meta_addr, meta_size in plan.reads:
            latency += self.hierarchy.access(core, meta_addr, meta_size, False)
        if plan.miscalculated:
            latency += self.MISCALC_MIN_PENALTY
        latency += self.FAST_COMPARE

        same_thread = all(self.layout.tid(e) == tid for e in epochs)
        same_epoch = all(self.layout.clear_expanded(e) == my_epoch for e in epochs)
        # A zero-clock epoch (virgin memory) precedes every access in the
        # happens-before order, so no race is possible and no VC element
        # is needed — the comparison circuit resolves it like sameThread.
        virgin = all(self.layout.clock(e) == 0 for e in epochs)

        if (same_thread or (virgin and not is_write)) and (
            not is_write or same_epoch
        ):
            outcome = CheckOutcome(AccessClass.FAST, latency, plan.expanded)
            self.stats.record(outcome)
            return outcome

        needs_vc = not same_thread and not virgin
        if needs_vc:
            # Load the needed vector-clock element(s) from memory.
            foreign = {self.layout.tid(e) for e in epochs if self.layout.tid(e) != tid}
            for foreign_tid in foreign:
                vc_addr = self.metadata.vc_element_address(foreign_tid)
                latency += self.hierarchy.access(core, vc_addr, 4, False)

        if not is_write:
            outcome = CheckOutcome(AccessClass.VC_LOAD, latency, plan.expanded)
            self.stats.record(outcome)
            return outcome

        # Write needing an epoch update (same_epoch was false or foreign).
        # The update is *posted*: it drains through the store path while
        # the program continues (its coherence and cache-state effects
        # are fully modelled; only its latency is off the critical path).
        # A line expansion, by contrast, stalls until the 4 stretched
        # metadata lines are written (Section 5.3).
        update_plan = self.metadata.apply_write(address, size, my_epoch)
        posted = 0
        for meta_addr, meta_size in update_plan.writes:
            posted += self.hierarchy.access(core, meta_addr, meta_size, True)
        if update_plan.expansion:
            latency += posted + self.EXPAND_BASE_PENALTY
            access_class = AccessClass.EXPAND
        elif needs_vc:
            access_class = AccessClass.VC_LOAD_UPDATE
        else:
            access_class = AccessClass.UPDATE
        outcome = CheckOutcome(
            access_class,
            latency,
            plan.expanded or update_plan.expanded,
        )
        self.stats.record(outcome)
        return outcome
