"""The simulated memory hierarchy: private L1/L2, shared L3, MESI.

Configuration and latencies are the paper's (Section 6.3.1): 8 cores,
private 8-way 64KB L1 and 8-way 256KB L2, shared 16-way 16MB L3, 64-byte
lines, MESI coherence, and access latencies of 1 (L1 hit), 10 (local L2
hit), 15 (remote L2 hit), 35 (L3 hit) and 120 cycles (L3 miss).

Coherence is directory-style: the hierarchy knows which cores cache each
line, serves misses from a remote private cache when possible, and
invalidates sharers on writes.  As required by CLEAN's hardware (Section
5.1), invalidation messages carry the byte range being written so the
race-check unit can detect concurrent conflicting checks without falsely
flagging disjoint bytes of a shared line; the hierarchy exposes this via
an invalidation callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from .cache import LINE_SIZE, MESI_E, MESI_M, MESI_S, Cache

__all__ = ["Latencies", "MemoryHierarchy", "line_of"]


def line_of(address: int) -> int:
    """Line address (aligned) containing ``address``."""
    return address - (address % LINE_SIZE)


@dataclass(frozen=True)
class Latencies:
    """Access latencies in cycles (paper Section 6.3.1)."""

    l1_hit: int = 1
    l2_local: int = 10
    l2_remote: int = 15
    l3_hit: int = 35
    memory: int = 120


@dataclass
class HierarchyStats:
    """Aggregate hierarchy counters."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    remote_hits: int = 0
    l3_hits: int = 0
    memory_fetches: int = 0
    invalidations: int = 0
    upgrades: int = 0

    @property
    def llc_miss_rate(self) -> float:
        """Fraction of all accesses served from memory (the paper's LLC
        miss rate, the quantity that makes ocean/radix suffer under
        4-byte epochs)."""
        return self.memory_fetches / self.accesses if self.accesses else 0.0


class MemoryHierarchy:
    """8-core cache hierarchy with MESI coherence and fixed latencies."""

    def __init__(
        self,
        n_cores: int = 8,
        latencies: Latencies = Latencies(),
        l1_size: int = 64 * 1024,
        l1_assoc: int = 8,
        l2_size: int = 256 * 1024,
        l2_assoc: int = 8,
        l3_size: int = 16 * 1024 * 1024,
        l3_assoc: int = 16,
    ) -> None:
        self.n_cores = n_cores
        self.lat = latencies
        self.l1 = [Cache(f"L1-{i}", l1_size, l1_assoc) for i in range(n_cores)]
        self.l2 = [Cache(f"L2-{i}", l2_size, l2_assoc) for i in range(n_cores)]
        self.l3 = Cache("L3", l3_size, l3_assoc)
        #: directory: line -> set of cores with a private copy
        self._sharers: Dict[int, Set[int]] = {}
        self.stats = HierarchyStats()
        #: called as (core, line, lo, hi) when a write by `core` invalidates
        #: other cores' copies of `line`; lo/hi give the written byte range
        #: within the line (Section 5.1's augmented coherence messages).
        self.on_invalidate: Optional[Callable[[int, int, int, int], None]] = None

    def reset_stats(self) -> None:
        """Zero all timing counters; cache *contents* are untouched.

        Used by the simulator between its warmup and measured replays,
        so steady-state numbers exclude compulsory misses.
        """
        self.stats = HierarchyStats()
        for cache in [*self.l1, *self.l2, self.l3]:
            cache.hits = cache.misses = cache.evictions = 0

    # -- the single public operation ------------------------------------------

    def access(self, core: int, address: int, size: int, is_write: bool) -> int:
        """Perform a data access; returns its latency in cycles.

        Accesses spanning multiple lines pay each line's latency (the
        maximum would model banked parallelism; sequential is what the
        paper's simple cores would see and keeps the model conservative).
        """
        first = line_of(address)
        last = line_of(address + size - 1)
        latency = 0
        line = first
        while line <= last:
            lo = max(address, line) - line
            hi = min(address + size, line + LINE_SIZE) - line
            latency += self._access_line(core, line, is_write, lo, hi)
            line += LINE_SIZE
        return latency

    # -- line-level MESI -------------------------------------------------------

    def _access_line(self, core: int, line: int, is_write: bool,
                     lo: int, hi: int) -> int:
        self.stats.accesses += 1
        state = self.l1[core].lookup(line)
        if state is not None:
            if not is_write or state in (MESI_M, MESI_E):
                if is_write:
                    self.l1[core].set_state(line, MESI_M)
                    self.l2[core].set_state(line, MESI_M)
                self.stats.l1_hits += 1
                return self.lat.l1_hit
            # Write hit in Shared state: upgrade, invalidating other cores.
            self._invalidate_others(core, line, lo, hi)
            self.l1[core].set_state(line, MESI_M)
            self.l2[core].set_state(line, MESI_M)
            self.stats.upgrades += 1
            return self.lat.l2_local
        return self._l1_miss(core, line, is_write, lo, hi)

    def _l1_miss(self, core: int, line: int, is_write: bool,
                 lo: int, hi: int) -> int:
        state = self.l2[core].lookup(line)
        if state is not None:
            if is_write and state == MESI_S:
                self._invalidate_others(core, line, lo, hi)
                state = MESI_M
                self.stats.upgrades += 1
            elif is_write:
                state = MESI_M
            self.l2[core].set_state(line, state)
            self._fill_l1(core, line, state)
            self.stats.l2_hits += 1
            return self.lat.l2_local
        return self._l2_miss(core, line, is_write, lo, hi)

    def _l2_miss(self, core: int, line: int, is_write: bool,
                 lo: int, hi: int) -> int:
        sharers = self._sharers.get(line, set())
        remote = sharers - {core}
        if remote:
            # Served cache-to-cache from a remote private cache.
            if is_write:
                self._invalidate_others(core, line, lo, hi)
                new_state = MESI_M
            else:
                for other in remote:
                    self.l1[other].set_state(line, MESI_S)
                    self.l2[other].set_state(line, MESI_S)
                new_state = MESI_S
            self._fill_private(core, line, new_state)
            self.stats.remote_hits += 1
            return self.lat.l2_remote
        if self.l3.lookup(line) is not None:
            new_state = MESI_M if is_write else MESI_E
            self._fill_private(core, line, new_state)
            self.stats.l3_hits += 1
            return self.lat.l3_hit
        # Memory fetch; install in L3 and the private caches.
        self.l3.insert(line, MESI_S)
        new_state = MESI_M if is_write else MESI_E
        self._fill_private(core, line, new_state)
        self.stats.memory_fetches += 1
        return self.lat.memory

    # -- helpers --------------------------------------------------------------------

    def _fill_l1(self, core: int, line: int, state: str) -> None:
        self.l1[core].insert(line, state)
        self._sharers.setdefault(line, set()).add(core)

    def _fill_private(self, core: int, line: int, state: str) -> None:
        victim = self.l2[core].insert(line, state)
        if victim is not None:
            vline, _ = victim
            self.l1[core].invalidate(vline)
            self._drop_sharer(vline, core)
        self._fill_l1(core, line, state)

    def _invalidate_others(self, core: int, line: int, lo: int, hi: int) -> None:
        sharers = self._sharers.get(line)
        if not sharers:
            return
        for other in list(sharers):
            if other == core:
                continue
            self.l1[other].invalidate(line)
            self.l2[other].invalidate(line)
            sharers.discard(other)
            self.stats.invalidations += 1
            if self.on_invalidate is not None:
                self.on_invalidate(other, line, lo, hi)

    def _drop_sharer(self, line: int, core: int) -> None:
        sharers = self._sharers.get(line)
        if sharers is not None:
            sharers.discard(core)
            if not sharers:
                del self._sharers[line]
