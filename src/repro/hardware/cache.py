"""Set-associative cache arrays with LRU replacement.

Building block of the paper's simulated memory hierarchy (Section 6.3.1):
private L1 (8-way, 64 KB) and L2 (8-way, 256 KB), shared L3 (16-way,
16 MB), all with 64-byte lines.  The arrays track MESI states; protocol
decisions (who to invalidate, where a miss is served from) live in
:mod:`repro.hardware.hierarchy`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = ["Cache", "LINE_SIZE", "MESI_M", "MESI_E", "MESI_S", "MESI_I"]

LINE_SIZE = 64

MESI_M = "M"
MESI_E = "E"
MESI_S = "S"
MESI_I = "I"


class Cache:
    """One set-associative cache array, indexed by line address."""

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_size: int = LINE_SIZE) -> None:
        if size_bytes % (assoc * line_size):
            raise ValueError("cache size must be a multiple of assoc * line")
        self.name = name
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size_bytes // (assoc * line_size)
        self._sets: List["OrderedDict[int, str]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def _set_for(self, line: int) -> "OrderedDict[int, str]":
        return self._sets[(line // self.line_size) % self.n_sets]

    def lookup(self, line: int, touch: bool = True) -> Optional[str]:
        """MESI state of ``line`` if cached (counts hit/miss statistics)."""
        entry = self._set_for(line)
        state = entry.get(line)
        if state is None:
            self.misses += 1
            return None
        if touch:
            entry.move_to_end(line)
        self.hits += 1
        return state

    def probe(self, line: int) -> Optional[str]:
        """State of ``line`` without touching LRU or statistics."""
        return self._set_for(line).get(line)

    def insert(self, line: int, state: str) -> Optional[Tuple[int, str]]:
        """Install ``line``; returns the evicted ``(line, state)`` if any."""
        entry = self._set_for(line)
        victim: Optional[Tuple[int, str]] = None
        if line not in entry and len(entry) >= self.assoc:
            victim = entry.popitem(last=False)
            self.evictions += 1
        entry[line] = state
        entry.move_to_end(line)
        return victim

    def set_state(self, line: int, state: str) -> None:
        """Change the MESI state of a cached line (no LRU effect)."""
        entry = self._set_for(line)
        if line in entry:
            entry[line] = state

    def invalidate(self, line: int) -> bool:
        """Drop ``line``; returns whether it was present."""
        entry = self._set_for(line)
        return entry.pop(line, None) is not None

    @property
    def accesses(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed."""
        return self.misses / self.accesses if self.accesses else 0.0

    def resident_lines(self) -> Dict[int, str]:
        """All cached lines and their states (for tests)."""
        out: Dict[int, str] = {}
        for entry in self._sets:
            out.update(entry)
        return out
