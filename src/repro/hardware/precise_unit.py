"""A precise (FastTrack-complete) hardware race checker — the ablation.

CLEAN's hardware is cheap *because* it drops WAR detection (paper
Sections 3.2, 7): no read metadata to maintain, nothing to write on
reads, no O(threads) read vector clocks to scan on writes.  RADISH-class
designs that keep full precision pay for all three and reach up to 3x
slowdown.

This unit quantifies that difference inside our simulator.  It does what
CLEAN's unit does, *plus* the read side of FastTrack:

* every shared **read** also loads and *updates* per-group read metadata
  (a metadata store on every read — CLEAN writes metadata only on some
  writes);
* concurrent reads inflate a group's read metadata to a read vector
  clock occupying ``4 * n_threads`` bytes in a dedicated region, which
  every subsequent access must fetch;
* every shared **write** additionally fetches the read metadata and, if
  inflated, scans the full read VC before clearing it.

The state is *functional* (inflation happens exactly when reads of a
group are concurrent under the simulated thread clocks), so the cost
comes out of the workload's real sharing structure, not a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from ..core.epoch import DEFAULT_LAYOUT, EpochLayout
from .hierarchy import MemoryHierarchy
from .metadata import GROUP, MetadataLayout

__all__ = ["PreciseCheckUnit", "PreciseStats"]

#: Base of the read-metadata region (write epochs live in the normal
#: metadata region; read epochs/VCs get their own).
READ_META_BASE = 1 << 46
#: Base of the inflated read-vector-clock region.
READ_VC_BASE = 1 << 47


@dataclass
class PreciseStats:
    """Counters contrasting with CLEAN's RaceUnitStats."""

    accesses: int = 0
    private: int = 0
    read_meta_updates: int = 0
    inflations: int = 0
    read_vc_scans: int = 0

    @property
    def inflation_rate(self) -> float:
        return self.inflations / self.accesses if self.accesses else 0.0


@dataclass
class _ReadMeta:
    """Read metadata of one 4-byte group: an epoch or an inflated VC."""

    tid: int = -1
    clock: int = 0
    inflated: bool = False
    vc: Dict[int, int] = field(default_factory=dict)


class PreciseCheckUnit:
    """Drop-in alternative to :class:`RaceCheckUnit` with WAR precision.

    Exposes the same ``set_thread`` / ``check`` interface so the
    simulator can host either unit; ``check`` returns the exposed-latency
    outcome the simulator expects.
    """

    def __init__(
        self,
        hierarchy: MemoryHierarchy,
        metadata: MetadataLayout,
        layout: EpochLayout = DEFAULT_LAYOUT,
        n_threads: int = 9,
    ) -> None:
        from .race_unit import RaceCheckUnit

        self.hierarchy = hierarchy
        self.n_threads = n_threads
        #: reuse CLEAN's unit for the write-epoch side of the check.
        self.write_side = RaceCheckUnit(hierarchy, metadata, layout)
        self.stats = PreciseStats()
        self._read_meta: Dict[int, _ReadMeta] = {}
        self._core_thread: Dict[int, Tuple[int, int]] = {}

    def reset_stats(self) -> None:
        """Zero counters after a warmup replay (read metadata persists)."""
        self.stats = PreciseStats()
        self.write_side.reset_stats()

    # -- plumbing -----------------------------------------------------------

    def set_thread(self, core: int, tid: int, clock: int = 0) -> None:
        self._core_thread[core] = (tid, clock)
        self.write_side.set_thread(core, tid, clock)

    def _read_meta_address(self, group: int) -> int:
        return READ_META_BASE + group

    def _read_vc_address(self, group: int) -> int:
        return READ_VC_BASE + (group // GROUP) * 4 * self.n_threads

    # -- the check ------------------------------------------------------------

    def check(
        self, core: int, address: int, size: int, is_write: bool, private: bool
    ) -> "CheckOutcome":
        from .race_unit import CheckOutcome

        self.stats.accesses += 1
        if private:
            self.stats.private += 1
            return self.write_side.check(core, address, size, is_write, True)

        # CLEAN's side: write-epoch load/check/update.
        outcome = self.write_side.check(core, address, size, is_write, False)
        latency = outcome.check_latency
        tid, clock = self._core_thread[core]

        first_group = address - (address % GROUP)
        last_group = (address + size - 1) - ((address + size - 1) % GROUP)
        group = first_group
        while group <= last_group:
            latency += self._read_side(core, group, tid, clock, is_write)
            group += GROUP
        return CheckOutcome(outcome.access_class, latency, outcome.expanded_line)

    def _read_side(
        self, core: int, group: int, tid: int, clock: int, is_write: bool
    ) -> int:
        meta = self._read_meta.setdefault(group, _ReadMeta())
        latency = self.hierarchy.access(core, self._read_meta_address(group), 4, False)
        if meta.inflated:
            latency += self.hierarchy.access(
                core, self._read_vc_address(group), 4 * self.n_threads,
                not is_write,
            )
            if is_write:
                # WAR check: scan the full read VC, then clear it.
                self.stats.read_vc_scans += 1
                meta.inflated = False
                meta.vc.clear()
                meta.tid, meta.clock = -1, 0
            else:
                meta.vc[tid] = clock
                self.stats.read_meta_updates += 1
            return latency

        if is_write:
            # Epoch-shaped read metadata: one compare, then clear.
            meta.tid, meta.clock = -1, 0
            return latency
        # Read: update the read epoch; concurrent readers inflate.
        if meta.tid not in (-1, tid):
            # Another thread's read epoch is live: inflate to a VC.
            self.stats.inflations += 1
            meta.inflated = True
            meta.vc = {meta.tid: meta.clock, tid: clock}
            latency += self.hierarchy.access(
                core, self._read_vc_address(group), 4 * self.n_threads, True
            )
        else:
            meta.tid, meta.clock = tid, clock
            latency += self.hierarchy.access(
                core, self._read_meta_address(group), 4, True
            )
        self.stats.read_meta_updates += 1
        return latency
