"""Hardware-supported CLEAN: the trace-driven multicore simulator.

Reproduces the paper's Section-5 hardware design and Section-6.3
evaluation substrate: the exact cache hierarchy and latencies, MESI
coherence with byte-position-carrying invalidations, the Figure-4 race
check unit, and the Figure-5 compact/expanded metadata layout (plus the
1-byte and 4-byte no-compaction alternatives of Figure 11).
"""

from .cache import LINE_SIZE, Cache
from .hierarchy import Latencies, MemoryHierarchy, line_of
from .metadata import GROUP, MetadataAccess, MetadataLayout
from .race_unit import AccessClass, CheckOutcome, RaceCheckUnit, RaceUnitStats
from .simulator import (
    SYNC_BASE_CYCLES,
    SYNC_VC_CYCLES,
    MulticoreSim,
    SimConfig,
    SimResult,
    simulate_trace,
)

__all__ = [
    "Cache",
    "LINE_SIZE",
    "MemoryHierarchy",
    "Latencies",
    "line_of",
    "MetadataLayout",
    "MetadataAccess",
    "GROUP",
    "RaceCheckUnit",
    "RaceUnitStats",
    "AccessClass",
    "CheckOutcome",
    "MulticoreSim",
    "SimConfig",
    "SimResult",
    "simulate_trace",
    "SYNC_BASE_CYCLES",
    "SYNC_VC_CYCLES",
]
